//! Chaos-harness integration tests: fault injection is deterministic, the
//! control loops degrade gracefully under injected failures, and fault
//! events reach the telemetry stream.

use aequitas_experiments::chaos;
use aequitas_experiments::harness::Scale;
use aequitas_telemetry::{FlightRecorder, Telemetry, TelemetryConfig};
use aequitas_sim_core::SimDuration;

/// The whole point of the seeded fault layer: two runs of the same chaos
/// scenario are byte-identical, and the scenario's invariants hold — the
/// flapped channel is clamped and re-admitted, bystanders keep their SLO,
/// and no RPC is silently lost.
#[test]
fn link_flap_is_contained_and_deterministic() {
    let a = chaos::link_flap(Scale::quick());
    let b = chaos::link_flap(Scale::quick());
    assert_eq!(a.digest, b.digest, "fault injection must be deterministic");
    assert_eq!(a.flapped_done, b.flapped_done);
    assert_eq!(a.fault_drops, b.fault_drops);

    // Pre-flap the channel is healthy and fully admitted.
    assert!(a.p_admit[0] > 0.9, "pre-flap p_admit {:.2}", a.p_admit[0]);
    // The stale completions arriving after the flap slam it to the floor...
    assert!(
        a.p_admit[1] < 0.1,
        "post-flap minimum p_admit {:.2} should reflect the MD reaction",
        a.p_admit[1]
    );
    // ...and the floor probe stream re-admits it once RNL is healthy again.
    assert!(
        a.p_admit[2] > 0.5,
        "end-of-run p_admit {:.2} should show re-admission",
        a.p_admit[2]
    );

    // Blast radius: unaffected hosts keep their QoSh tail within the SLO.
    let others = a.others_p99_us.expect("bystander completions");
    assert!(
        others < a.slo_us,
        "bystander QoSh p99 {others:.1} us breached the {} us SLO",
        a.slo_us
    );

    // Loss recovery: frames were dropped, yet every issued RPC either
    // completed or is still in flight — none failed, none vanished.
    assert!(a.fault_drops > 0, "the loss rule should have fired");
    assert_eq!(a.flapped_failures, 0, "no RPC should exhaust its budget");
    assert_eq!(
        a.flapped_done + a.flapped_outstanding,
        a.flapped_issued as usize,
        "RPCs lost without a trace"
    );
}

/// Quota-server outage: the guaranteed tenant keeps at least its decayed
/// floor share through the outage and snaps back to the full guarantee
/// after recovery.
#[test]
fn quota_outage_degrades_gracefully_and_recovers() {
    let r = chaos::quota_outage(Scale::quick());
    let [pre, during, post] = r.tenant0_gbps;

    // Before the outage the guarantee (plus its share of the remainder) is
    // honored.
    assert!(
        pre > r.guarantee_gbps,
        "pre-outage goodput {pre:.1} below the {} Gbps guarantee",
        r.guarantee_gbps
    );
    // During the outage grants decay toward the floor, never below it.
    assert!(
        during > pre * r.floor_frac * 0.8,
        "outage goodput {during:.1} fell below the floored share \
         ({pre:.1} x {:.2})",
        r.floor_frac
    );
    // After the server returns, the first real grant snaps back.
    assert!(
        post > pre * 0.8,
        "post-outage goodput {post:.1} did not recover toward {pre:.1}"
    );
    // The control loop saw exactly one down and one up transition.
    assert_eq!(r.transitions, 2, "expected one outage window");
}

/// Fault lifecycle events are part of the structured trace stream: a
/// recorded link-flap run carries link-down/up and fault-drop events, and a
/// recorded quota-outage run carries the outage transitions.
#[test]
fn fault_events_reach_the_flight_recorder() {
    let recorder = FlightRecorder::new(4_000_000);
    let tel = Telemetry::with_sink(
        recorder.clone(),
        TelemetryConfig {
            sample_every: SimDuration::from_ms(1),
        },
    );
    chaos::link_flap_traced(Scale::quick(), tel);
    let lines = recorder.dump();
    assert!(!lines.is_empty(), "no trace lines recorded");
    for required in ["\"fault_link_down\"", "\"fault_link_up\"", "\"fault_pkt_drop\""] {
        assert!(
            lines.iter().any(|l| l.contains(required)),
            "no {required} event in {} trace lines",
            lines.len()
        );
    }

    let recorder = FlightRecorder::new(4_000_000);
    let tel = Telemetry::with_sink(
        recorder.clone(),
        TelemetryConfig {
            sample_every: SimDuration::from_ms(1),
        },
    );
    chaos::quota_outage_traced(Scale::quick(), tel);
    let lines = recorder.dump();
    let outages: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"fault_quota_outage\""))
        .collect();
    assert!(
        outages.iter().any(|l| l.contains("\"down\":true"))
            && outages.iter().any(|l| l.contains("\"down\":false")),
        "expected both outage transitions in the trace, got {outages:?}"
    );
}

/// The chaos containment matrix: Aequitas and all five baselines run under
/// one identical seeded fault schedule (spine-switch outage + gray receiver
/// downlink), and the time-to-SLO-restore metric tells them apart. Aequitas
/// must recover in finite time, and the recovery must be attributable to
/// the fault — it happens after repair, not before.
#[test]
fn containment_matrix_restores_aequitas_slo_in_finite_time() {
    let r = chaos::containment(Scale::quick());
    assert_eq!(r.rows.len(), 6, "Aequitas + five baselines");
    let names: Vec<&str> = r.rows.iter().map(|s| s.name).collect();
    assert_eq!(names, ["Aequitas", "pFabric", "QJump", "D3", "PDQ", "Homa"]);

    for row in &r.rows {
        assert!(row.completed > 0, "{} completed nothing at all", row.name);
        // Every scheme was hurt: its worst post-onset window breaches the
        // 250 us SLO (the schedule blackholes a spine and strangles the
        // receiver downlink — no scheme rides through untouched).
        let worst = row.worst_p99_us.unwrap_or(f64::INFINITY);
        assert!(
            worst > 250.0,
            "{}: worst windowed p99 {worst:.1} us should breach the SLO",
            row.name
        );
    }

    let aq = &r.rows[0];
    let restore_ms = aq
        .restore_ms
        .expect("Aequitas must re-meet its SLO in finite time");
    // The fault lasts 4 ms (onset 4 ms, repair 8 ms) and queues need drain
    // time, so restore is positive; the horizon ends 12 ms after onset.
    assert!(
        restore_ms > 0.0 && restore_ms < 12.0,
        "Aequitas restore {restore_ms:.1} ms out of range"
    );
    // Pre-fault, Aequitas was meeting the SLO — recovery is a return to a
    // previously healthy state, not a vacuous bound.
    let pre = aq.pre_fault_p99_us.expect("pre-fault completions");
    assert!(pre <= 250.0, "Aequitas pre-fault p99 {pre:.1} us over SLO");
}

/// The containment matrix is itself deterministic: the fault layer's
/// verdicts are pure functions of (seed, time, entity), so two runs agree
/// on every row, including the recovery times.
#[test]
fn containment_matrix_is_deterministic() {
    let a = chaos::containment(Scale::quick());
    let b = chaos::containment(Scale::quick());
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.completed, y.completed, "{} diverged", x.name);
        assert_eq!(x.restore_ms, y.restore_ms, "{} diverged", x.name);
        assert_eq!(x.worst_p99_us, y.worst_p99_us, "{} diverged", x.name);
    }
}
