//! Cross-crate integration tests: the full stack (analysis ↔ qdisc ↔
//! netsim ↔ transport ↔ rpc ↔ aequitas) agreeing with itself.

use aequitas::{AequitasConfig, SloTarget};
use aequitas_analysis::{delay_h, fluid_delays, FluidSpec, TwoQosParams};
use aequitas_experiments::harness::{build_engine, run_macro, MacroSetup, PolicyChoice};
use aequitas_experiments::slo::{admitted_mix, p999_rnl_us};
use aequitas_netsim::{EngineConfig, HostId, SwitchId};
use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::{SimDuration, SimTime};
use aequitas_workloads::{QosClass, QosMapping, SizeDist};

fn overload_workload(pc_share: f64, dst: usize) -> WorkloadSpec {
    WorkloadSpec {
        arrival: ArrivalProcess::Uniform { load: 1.0 },
        pattern: TrafficPattern::ManyToOne { dst },
        classes: vec![
            PrioritySpec {
                priority: Priority::PerformanceCritical,
                byte_share: pc_share,
                sizes: SizeDist::Fixed(32_768),
            },
            PrioritySpec {
                priority: Priority::BestEffort,
                byte_share: 1.0 - pc_share,
                sizes: SizeDist::Fixed(32_768),
            },
        ],
        stop: None,
    }
}

/// The headline behaviour: under 2x overload, admitted QoSh traffic meets a
/// 15 us 99.9p SLO that is blown by an order of magnitude without admission
/// control.
#[test]
fn aequitas_turns_slo_misses_into_downgrades() {
    let run = |policy: PolicyChoice, seed: u64| {
        let mut setup = MacroSetup::star_3qos(3);
        setup.engine = EngineConfig::default_2qos();
        setup.mapping = QosMapping::two_level();
        setup.policy = policy;
        setup.duration = SimDuration::from_ms(30);
        setup.warmup = SimDuration::from_ms(10);
        setup.seed = seed;
        setup.workloads[0] = Some(overload_workload(0.7, 2));
        setup.workloads[1] = Some(overload_workload(0.7, 2));
        run_macro(setup)
    };
    let slo = SloTarget::absolute(SimDuration::from_us(15), 8, 99.9);
    let with = run(
        PolicyChoice::Aequitas(AequitasConfig::two_qos(slo)),
        1,
    );
    let without = run(PolicyChoice::Static, 2);

    let with_h = p999_rnl_us(&with.completions, QosClass::HIGH).unwrap();
    let without_h = p999_rnl_us(&without.completions, QosClass::HIGH).unwrap();
    assert!(
        with_h < 15.0 * 1.35,
        "admitted QoSh p99.9 {with_h} us should track the 15 us SLO"
    );
    assert!(
        without_h > 100.0,
        "without Aequitas the tail should blow up, got {without_h} us"
    );
    // Downgrades happened, and plenty of them.
    let downgraded = with.completions.iter().filter(|c| c.downgraded).count();
    assert!(downgraded * 3 > with.completions.len(), "{downgraded}");
}

/// The admitted QoSh share under Aequitas approximates the analytical
/// admissible share: the closed-form delay bound evaluated at the admitted
/// share must be small, while at the offered share it is large.
#[test]
fn admitted_share_lands_in_the_admissible_region() {
    let slo = SloTarget::absolute(SimDuration::from_us(15), 8, 99.9);
    let mut setup = MacroSetup::star_3qos(3);
    setup.engine = EngineConfig::default_2qos();
    setup.mapping = QosMapping::two_level();
    setup.policy = PolicyChoice::Aequitas(AequitasConfig::two_qos(slo));
    setup.duration = SimDuration::from_ms(30);
    setup.warmup = SimDuration::from_ms(10);
    setup.workloads[0] = Some(overload_workload(0.7, 2));
    setup.workloads[1] = Some(overload_workload(0.7, 2));
    let r = run_macro(setup);
    let admitted = admitted_mix(&r.completions, 2)[0];

    // Offered: 2x line rate total, 70% QoSh -> QoSh alone ~1.4x the link.
    // The admitted share must be far below the offered share.
    assert!(admitted < 0.45, "admitted QoSh share {admitted}");
    // And the theory agrees the admitted point is benign: delay bound at
    // the admitted share, for the effective overload (total demand 2x),
    // stays below the bound at the offered mix.
    let p = TwoQosParams {
        phi: 4.0,
        mu: 0.8,
        rho: 2.0,
    };
    assert!(delay_h(p, admitted.min(0.99)) < delay_h(p, 0.7));
}

/// The fluid model, the closed form, and the admissible-region check all
/// tell one consistent story for the default 3-QoS configuration.
#[test]
fn analysis_stack_is_self_consistent() {
    let weights = vec![8.0, 4.0, 1.0];
    let spec = |x: f64| FluidSpec {
        weights: weights.clone(),
        shares: vec![x, (1.0 - x) * 2.0 / 3.0, (1.0 - x) / 3.0],
        mu: 0.8,
        rho: 1.4,
    };
    // Below the inversion boundary delays are ordered.
    let d = fluid_delays(&spec(0.3));
    assert!(d[0] <= d[1] + 1e-9 && d[1] <= d[2] + 1e-9, "{d:?}");
    // Far above it, the order breaks.
    let d = fluid_delays(&spec(0.9));
    assert!(d[0] > d[2], "{d:?}");
}

/// Determinism across the whole stack: same seeds, same story.
#[test]
fn full_stack_is_deterministic() {
    let run = || {
        let slo = SloTarget::absolute(SimDuration::from_us(20), 8, 99.9);
        let mut setup = MacroSetup::star_3qos(3);
        setup.engine = EngineConfig::default_2qos();
        setup.mapping = QosMapping::two_level();
        setup.policy = PolicyChoice::Aequitas(AequitasConfig::two_qos(slo));
        setup.duration = SimDuration::from_ms(8);
        setup.warmup = SimDuration::from_ms(2);
        setup.workloads[0] = Some(overload_workload(0.5, 2));
        setup.workloads[1] = Some(overload_workload(0.5, 2));
        let r = run_macro(setup);
        (
            r.completions.len(),
            r.events,
            r.completions
                .iter()
                .map(|c| c.rnl().as_ps())
                .sum::<u64>(),
        )
    };
    assert_eq!(run(), run());
}

/// Packet conservation at the fabric: once the run quiesces, every packet
/// the host NICs put on the wire is accounted for at the switch as either
/// transmitted, dropped, or still queued — the port counters (and the new
/// high-water marks) must balance the offered load exactly.
#[test]
fn port_counters_conserve_offered_load() {
    let mut setup = MacroSetup::star_3qos(3);
    setup.engine = EngineConfig::default_2qos();
    // A shallow port buffer so the 2x overload actually overflows (the
    // transport's windows keep the default 2 MB buffer drop-free).
    setup.engine.switch_buffer_bytes = Some(96 << 10);
    setup.mapping = QosMapping::two_level();
    let mut spec = overload_workload(0.7, 2);
    // Stop the workload, then drain: with no arrivals past the stop time
    // the transport retires its backlog and the event queue empties, so
    // nothing is in flight when we read the counters.
    spec.stop = Some(SimTime::from_ms(4));
    setup.workloads[0] = Some(spec.clone());
    setup.workloads[1] = Some(spec);
    let mut engine = build_engine(setup);
    engine.run_until(SimTime::MAX);

    let classes = engine.classes();
    let host_tx: u64 = (0..3)
        .map(|h| engine.host_nic_stats(HostId(h)).tx_packets.iter().sum::<u64>())
        .sum();
    let mut switch_accounted = 0u64;
    let mut total_drops = 0u64;
    for port in 0..3 {
        let st = engine.switch_port_stats(SwitchId(0), port);
        switch_accounted += st.tx_packets.iter().sum::<u64>() + st.total_drops();
        total_drops += st.total_drops();
        for class in 0..classes {
            switch_accounted +=
                engine.switch_port_class_packets(SwitchId(0), port, class) as u64;
        }
    }
    assert_eq!(
        host_tx,
        switch_accounted + engine.injected_losses(),
        "offered {host_tx} packets but the switch accounts for {switch_accounted}"
    );
    assert!(total_drops > 0, "a 2x overload must overflow the hot port");

    // High-water marks: the congested egress port (toward host 2) must have
    // seen real queueing, and a high-water mark can never sit below the
    // instantaneous backlog.
    for port in 0..3 {
        let st = engine.switch_port_stats(SwitchId(0), port);
        assert!(
            st.max_backlog_bytes >= engine.switch_port_backlog(SwitchId(0), port),
            "port {port} high-water mark below current backlog"
        );
    }
    let hot = engine.switch_port_stats(SwitchId(0), 2);
    assert!(hot.max_backlog_bytes > 0, "no queueing recorded at the hot port");
    assert!(
        hot.max_class_depth_pkts.iter().any(|&d| d > 0),
        "no per-class depth recorded at the hot port: {:?}",
        hot.max_class_depth_pkts
    );
}

/// DWRR and virtual-time WFQ are interchangeable fabric implementations:
/// Aequitas converges to similar admitted shares on both.
///
/// Two requirements for the comparison to be well-posed:
/// * The DWRR quantum must cover a full *wire* packet (payload MTU plus
///   `HEADER_BYTES`). Shreedhar & Varghese require quantum >= max packet
///   size for every backlogged class to send each round; a runt quantum
///   makes the weight-1 class skip rotations, which distorts the 99.9p
///   tail enough to flip the admission controller onto a different
///   trajectory.
/// * Both schedulers must run the *same seed*. The admitted share under
///   2x overload is metastable (one 99.9p SLO miss collapses p_admit
///   multiplicatively and recovery is additive), so the share varies far
///   more across seeds than the implementations differ at any one seed.
#[test]
fn wfq_implementations_agree() {
    let run = |dwrr: bool, seed: u64| {
        let slo = SloTarget::absolute(SimDuration::from_us(15), 8, 99.9);
        let mut setup = MacroSetup::star_3qos(3);
        setup.engine = EngineConfig::default_2qos();
        if dwrr {
            setup.engine.switch_scheduler = aequitas_netsim::SchedulerKind::Dwrr {
                weights: vec![4.0, 1.0],
                quantum: 4096 + aequitas_netsim::packet::HEADER_BYTES,
            };
        }
        setup.mapping = QosMapping::two_level();
        setup.policy = PolicyChoice::Aequitas(AequitasConfig::two_qos(slo));
        setup.duration = SimDuration::from_ms(25);
        setup.warmup = SimDuration::from_ms(8);
        setup.seed = seed;
        setup.workloads[0] = Some(overload_workload(0.7, 2));
        setup.workloads[1] = Some(overload_workload(0.7, 2));
        let r = run_macro(setup);
        admitted_mix(&r.completions, 2)[0]
    };
    for seed in [5u64, 6] {
        let wfq_share = run(false, seed);
        let dwrr_share = run(true, seed);
        assert!(
            (wfq_share - dwrr_share).abs() < 0.10,
            "seed {seed}: WFQ {wfq_share} vs DWRR {dwrr_share}"
        );
    }
}
