//! Determinism under the performance knobs.
//!
//! The parallel sweep harness and the calendar event queue are pure
//! optimizations: neither the sweep worker count (`AEQUITAS_THREADS`) nor
//! the event-queue backend may change a single figure value. This runs the
//! Fig. 11 sweep — a real multi-point experiment through the full stack —
//! under each knob and requires bit-identical results.

use aequitas_experiments::slo::{fig11_configured, fig11_invariance_probe, Fig11Result};
use aequitas_experiments::Scale;
use aequitas_netsim::QueueKind;
use aequitas_telemetry::{FlightRecorder, Telemetry, TelemetryConfig};

fn fingerprint(r: &Fig11Result) -> Vec<(u64, u64, u64)> {
    r.points
        .iter()
        .map(|p| {
            (
                p.slo_us.to_bits(),
                p.p999_us.unwrap_or(f64::NAN).to_bits(),
                p.qosh_share.to_bits(),
            )
        })
        .collect()
}

/// The CI-speed variant: a truncated two-point Fig. 11 sweep (5% duration)
/// through the same full stack. Far from equilibrium, but determinism does
/// not care — any knob-dependence shows up here just as it would at full
/// length.
#[test]
fn fig11_smoke_is_invariant_under_threads_and_queue_backend() {
    let baseline = fingerprint(&fig11_invariance_probe(1, QueueKind::Calendar));
    let threaded = fingerprint(&fig11_invariance_probe(4, QueueKind::Calendar));
    assert_eq!(
        baseline, threaded,
        "sweep results must not depend on the worker count"
    );
    let heap = fingerprint(&fig11_invariance_probe(4, QueueKind::Heap));
    assert_eq!(
        baseline, heap,
        "calendar and heap event queues must order events identically"
    );
}

/// The full-length sweep (minutes of wall clock): superseded in CI by
/// [`fig11_smoke_is_invariant_under_threads_and_queue_backend`]; run
/// explicitly with `cargo test -- --ignored` before releases.
#[test]
#[ignore = "full-length fig11 sweep; the smoke variant covers CI"]
fn fig11_is_invariant_under_threads_and_queue_backend() {
    let scale = Scale::quick();
    let baseline = fingerprint(&fig11_configured(scale, 1, QueueKind::Calendar));
    let threaded = fingerprint(&fig11_configured(scale, 4, QueueKind::Calendar));
    assert_eq!(
        baseline, threaded,
        "sweep results must not depend on the worker count"
    );
    let heap = fingerprint(&fig11_configured(scale, 4, QueueKind::Heap));
    assert_eq!(
        baseline, heap,
        "calendar and heap event queues must order events identically"
    );
}

/// Telemetry is an observer, never a participant: running the same
/// experiment with tracing + metrics enabled must produce bit-identical
/// simulation results to a run with telemetry disabled.
#[test]
fn telemetry_does_not_perturb_the_simulation() {
    use aequitas::{AequitasConfig, SloTarget};
    use aequitas_experiments::harness::{run_macro, MacroSetup, PolicyChoice};
    use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
    use aequitas_sim_core::SimDuration;
    use aequitas_workloads::{QosMapping, SizeDist};

    let run = |tel: Telemetry| {
        let slo = SloTarget::absolute(SimDuration::from_us(15), 8, 99.9);
        let mut setup = MacroSetup::star_3qos(3);
        setup.mapping = QosMapping::two_level();
        setup.engine = aequitas_netsim::EngineConfig::default_2qos();
        setup.policy = PolicyChoice::Aequitas(AequitasConfig::two_qos(slo));
        setup.duration = SimDuration::from_ms(5);
        setup.warmup = SimDuration::from_ms(1);
        setup.telemetry = tel;
        for h in 0..2 {
            setup.workloads[h] = Some(WorkloadSpec {
                arrival: ArrivalProcess::Poisson { load: 0.9 },
                pattern: TrafficPattern::ManyToOne { dst: 2 },
                classes: vec![PrioritySpec {
                    priority: Priority::PerformanceCritical,
                    byte_share: 1.0,
                    sizes: SizeDist::Fixed(32_768),
                }],
                stop: None,
            });
        }
        let r = run_macro(setup);
        (
            r.completions.len(),
            r.issued,
            r.events,
            r.completions.iter().map(|c| c.rnl().as_ps()).sum::<u64>(),
        )
    };
    let disabled = run(Telemetry::disabled());
    let recorder = FlightRecorder::new(1024);
    let enabled = run(Telemetry::with_sink(
        recorder.clone(),
        TelemetryConfig::default(),
    ));
    assert_eq!(
        disabled, enabled,
        "enabling telemetry changed the simulation"
    );
    // And the traced run did actually record something.
    assert!(!recorder.is_empty());
}
