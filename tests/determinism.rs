//! Determinism under the performance knobs.
//!
//! The parallel sweep harness and the calendar event queue are pure
//! optimizations: neither the sweep worker count (`AEQUITAS_THREADS`) nor
//! the event-queue backend may change a single figure value. This runs the
//! Fig. 11 sweep — a real multi-point experiment through the full stack —
//! under each knob and requires bit-identical results.

use aequitas_experiments::slo::{fig11_configured, Fig11Result};
use aequitas_experiments::Scale;
use aequitas_netsim::QueueKind;

fn fingerprint(r: &Fig11Result) -> Vec<(u64, u64, u64)> {
    r.points
        .iter()
        .map(|p| {
            (
                p.slo_us.to_bits(),
                p.p999_us.unwrap_or(f64::NAN).to_bits(),
                p.qosh_share.to_bits(),
            )
        })
        .collect()
}

#[test]
fn fig11_is_invariant_under_threads_and_queue_backend() {
    let scale = Scale::quick();
    let baseline = fingerprint(&fig11_configured(scale, 1, QueueKind::Calendar));
    let threaded = fingerprint(&fig11_configured(scale, 4, QueueKind::Calendar));
    assert_eq!(
        baseline, threaded,
        "sweep results must not depend on the worker count"
    );
    let heap = fingerprint(&fig11_configured(scale, 4, QueueKind::Heap));
    assert_eq!(
        baseline, heap,
        "calendar and heap event queues must order events identically"
    );
}
