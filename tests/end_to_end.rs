//! End-to-end property checks spanning the whole reproduction.

use aequitas::{AequitasConfig, Fleet, FleetConfig, SloTarget};
use aequitas_experiments::harness::{run_macro, MacroSetup, PolicyChoice};
use aequitas_experiments::slo::{admitted_mix, node33_workload, p999_rnl_us};
use aequitas_sim_core::SimDuration;
use aequitas_workloads::QosClass;
use proptest::prelude::*;

/// Scavenger traffic is never downgraded and always admitted, whatever the
/// SLO pressure — the floor of the downgrade mechanism.
#[test]
fn scavenger_class_is_never_downgraded() {
    let mut setup = MacroSetup::star_3qos(5);
    setup.policy = PolicyChoice::Aequitas(AequitasConfig::three_qos(
        // Impossible SLOs: everything SLO-carrying gets hammered.
        SloTarget::per_mtu(SimDuration::from_ns(1), 99.0),
        SloTarget::per_mtu(SimDuration::from_ns(1), 99.0),
    ));
    setup.duration = SimDuration::from_ms(6);
    setup.warmup = SimDuration::from_ms(1);
    for h in 0..5 {
        setup.workloads[h] = Some(node33_workload([0.3, 0.3, 0.4], None));
    }
    let r = run_macro(setup);
    assert!(!r.completions.is_empty());
    for c in &r.completions {
        if c.priority == aequitas_rpc::Priority::BestEffort {
            assert!(!c.downgraded);
            assert_eq!(c.qos_run, QosClass::LOW);
        }
        if c.downgraded {
            assert_eq!(c.qos_run, QosClass::LOW);
        }
    }
}

/// With absurdly tight SLOs the controller drives admission to its floor
/// but never to zero: the probe stream keeps flowing (starvation
/// avoidance, §5.1).
#[test]
fn floor_prevents_starvation() {
    let mut setup = MacroSetup::star_3qos(3);
    setup.policy = PolicyChoice::Aequitas(AequitasConfig::three_qos(
        SloTarget::per_mtu(SimDuration::from_ns(1), 99.0),
        SloTarget::per_mtu(SimDuration::from_ns(1), 99.0),
    ));
    setup.duration = SimDuration::from_ms(20);
    setup.warmup = SimDuration::from_ms(10);
    for h in 0..2 {
        setup.workloads[h] = Some(node33_workload([0.5, 0.3, 0.2], None));
    }
    let r = run_macro(setup);
    let on_high = r
        .completions
        .iter()
        .filter(|c| c.qos_run == QosClass::HIGH)
        .count();
    assert!(
        on_high > 0,
        "the admit-probability floor must keep a probe stream alive"
    );
    // But the vast majority is downgraded.
    let downgraded = r.completions.iter().filter(|c| c.downgraded).count();
    assert!(downgraded > r.completions.len() / 3);
}

/// Phase 1 + Phase 2 together: an aligned fleet mix fed through the
/// simulator meets SLOs that the misaligned mix misses.
#[test]
fn phase1_alignment_composes_with_phase2() {
    let mut fleet = Fleet::synthetic(FleetConfig {
        apps: 300,
        seed: 99,
    });
    let misaligned = fleet.qos_mix();
    fleet.align_cohort(1.0);
    let aligned = fleet.qos_mix();
    // The aligned mix carries less QoSh traffic (over-marking removed).
    assert!(aligned[0] < misaligned[0]);

    let run = |mix: [f64; 3], seed: u64| {
        let mut setup = MacroSetup::star_3qos(9);
        setup.duration = SimDuration::from_ms(10);
        setup.warmup = SimDuration::from_ms(3);
        setup.seed = seed;
        for h in 0..9 {
            setup.workloads[h] = Some(node33_workload(mix, None));
        }
        let r = run_macro(setup);
        p999_rnl_us(&r.completions, QosClass::HIGH).unwrap()
    };
    let tail_misaligned = run(misaligned, 1);
    let tail_aligned = run(aligned, 2);
    assert!(
        tail_aligned < tail_misaligned,
        "alignment alone should already improve the QoSh tail: {tail_misaligned} -> {tail_aligned}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// For any input mix, the admitted QoSh share never exceeds the input
    /// share, and all shares remain a valid distribution.
    #[test]
    fn prop_admitted_mix_is_sane(h in 2u32..7, m in 1u32..5) {
        let hf = h as f64 / 10.0;
        let mf = (m as f64 / 10.0).min(0.9 - hf);
        let mix = [hf, mf, 1.0 - hf - mf];
        let mut setup = MacroSetup::star_3qos(5);
        setup.policy = PolicyChoice::Aequitas(aequitas_experiments::slo::slo_config_33());
        setup.duration = SimDuration::from_ms(8);
        setup.warmup = SimDuration::from_ms(2);
        setup.seed = 7000 + h as u64 * 10 + m as u64;
        for host in 0..5 {
            setup.workloads[host] = Some(node33_workload(mix, None));
        }
        let r = run_macro(setup);
        let adm = admitted_mix(&r.completions, 3);
        let total: f64 = adm.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(adm[0] <= mix[0] + 0.05, "admitted {adm:?} vs input {mix:?}");
    }
}
