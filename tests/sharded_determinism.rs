//! The sharded engine's headline guarantee: the worker-thread count is a
//! pure wall-clock knob. `AEQUITAS_THREADS=1` and `=N` must produce
//! byte-identical results — same completions at the same picosecond, same
//! event count — on a multi-domain Clos fabric, with and without an active
//! chaos fault plan.
//!
//! (This is deliberately stronger than `tests/determinism.rs`'s sweep
//! invariance: there the parallelism is *between* independent runs; here
//! the domains of a single simulation run concurrently and exchange
//! boundary packets.)

use aequitas_experiments::harness::{run_macro_sharded, MacroResult, MacroSetup, PolicyChoice};
use aequitas_experiments::slo;
use aequitas_netsim::faults::{
    FaultPlan, GrayDegrade, LinkFlap, LinkSel, LossRule, PodLayout, PodOutage, SwitchOutage,
    Window,
};
use aequitas_netsim::{LinkSpec, ShardSpec, Topology};
use aequitas_sim_core::{BitRate, SimDuration, SimTime};
use std::sync::Arc;

/// A 2-pod Clos (2 spines, 2 leaves × 2 hosts per pod, 2 cores = 8 hosts,
/// 3 shard domains) under the 33-node bursty all-to-all workload with
/// Aequitas admission on every host.
fn clos_setup(faults: Option<Arc<FaultPlan>>) -> (MacroSetup, ShardSpec) {
    let core = LinkSpec {
        rate: BitRate::from_gbps(100),
        propagation: SimDuration::from_us(2),
    };
    let topo = Topology::clos(
        2,
        2,
        2,
        2,
        2,
        LinkSpec::default_100g(),
        LinkSpec::default_100g(),
        core,
    );
    let spec = ShardSpec::clos_pods(&topo, 2, 2, 2);
    let n = topo.num_hosts();
    let mut setup = MacroSetup::star_3qos(n);
    setup.topo = topo;
    setup.policy = PolicyChoice::Aequitas(slo::slo_config_33());
    setup.duration = SimDuration::from_ms(3);
    setup.warmup = SimDuration::from_us(500);
    setup.seed = 777;
    setup.engine.faults = faults;
    for h in 0..n {
        setup.workloads[h] = Some(slo::node33_workload([0.6, 0.3, 0.1], None));
    }
    (setup, spec)
}

/// (issued_at, completed_at, rnl) per completion, in picoseconds.
type CompletionLog = Vec<(u64, u64, u64)>;

/// Every observable of the run, at picosecond resolution. Two fingerprints
/// are equal iff the simulations were byte-identical.
fn fingerprint(r: &MacroResult) -> (u64, u64, CompletionLog, CompletionLog) {
    let enc = |cs: &[aequitas_rpc::RpcCompletion]| {
        cs.iter()
            .map(|c| {
                (
                    c.issued_at.as_ps(),
                    c.completed_at.as_ps(),
                    c.rnl().as_ps(),
                )
            })
            .collect::<Vec<_>>()
    };
    (r.issued, r.events, enc(&r.completions), enc(&r.warmup_completions))
}

fn run(threads: usize, faults: Option<Arc<FaultPlan>>) -> (u64, u64, CompletionLog, CompletionLog) {
    let (setup, spec) = clos_setup(faults);
    fingerprint(&run_macro_sharded(setup, spec, threads))
}

#[test]
fn thread_count_is_a_pure_wall_clock_knob() {
    let serial = run(1, None);
    let threaded = run(4, None);
    assert!(
        serial.2.len() > 100,
        "run too small to be meaningful: {} completions",
        serial.2.len()
    );
    assert_eq!(
        serial, threaded,
        "THREADS=1 and THREADS=4 diverged on a fault-free Clos run"
    );
}

/// The fault layer's verdicts are pure functions of (seed, time, entity),
/// so an active chaos plan — loss everywhere, a host-uplink flap, and a
/// flap on a *cross-domain* spine→core port — must not break the guarantee.
#[test]
fn thread_count_is_invisible_under_chaos() {
    let plan = Arc::new(
        FaultPlan {
            seed: 99,
            flaps: vec![
                LinkFlap {
                    link: LinkSel::HostUp(1),
                    first_down: SimTime::from_us(800),
                    down: SimDuration::from_us(300),
                    period: SimDuration::from_secs_f64(1.0),
                    count: 1,
                },
                // Spine 4's port 2 is its first core-facing uplink: this
                // flap severs a domain boundary mid-run.
                LinkFlap {
                    link: LinkSel::SwitchPort { switch: 4, port: 2 },
                    first_down: SimTime::from_us(1200),
                    down: SimDuration::from_us(400),
                    period: SimDuration::from_secs_f64(1.0),
                    count: 1,
                },
            ],
            loss: vec![LossRule {
                link: LinkSel::Any,
                prob: 1e-3,
                burst: None,
            }],
            ..FaultPlan::default()
        }
        .validated()
        .expect("chaos plan is well-formed"),
    );
    let serial = run(1, Some(plan.clone()));
    let threaded = run(4, Some(plan));
    assert_eq!(
        serial, threaded,
        "THREADS=1 and THREADS=4 diverged under an active fault plan"
    );
    // The plan did something: a chaos run differs from a fault-free one.
    let clean = run(1, None);
    assert_ne!(
        serial, clean,
        "the fault plan should have perturbed the simulation"
    );
}

/// The correlated/gray fault kinds (switch outage, pod outage, gray degrade
/// with a jitter ramp) are likewise pure functions of (seed, time, entity) —
/// a whole-switch blackhole on a domain-boundary spine plus a degraded core
/// path must stay byte-identical across thread counts.
#[test]
fn thread_count_is_invisible_under_correlated_and_gray_faults() {
    // Clos(2,2,2,...): leaves 0-3, spines 4-7 (spine 4/5 in pod 0), cores 8-9.
    let plan = Arc::new(
        FaultPlan {
            seed: 4242,
            // Spine 4 dies entirely mid-run — all ports at once, including
            // its core-facing uplinks, severing a shard boundary.
            switch_outages: vec![SwitchOutage {
                switch: 4,
                window: Window {
                    start: SimTime::from_us(900),
                    end: SimTime::from_us(1500),
                },
            }],
            // Pod 1's leaves and spines all blackhole for a short window.
            pod_outages: vec![PodOutage {
                pod: 1,
                window: Window {
                    start: SimTime::from_us(1800),
                    end: SimTime::from_us(2000),
                },
            }],
            // Spine 5 runs gray at 40% capacity with a creeping jitter ramp
            // for most of the run: slow, not down.
            gray: vec![GrayDegrade {
                link: LinkSel::Switch(5),
                window: Window {
                    start: SimTime::from_us(500),
                    end: SimTime::from_us(2500),
                },
                rate_frac: 0.4,
                jitter_ramp: SimDuration::from_ns(400),
            }],
            pod_layout: Some(PodLayout {
                pods: 2,
                leaves_per_pod: 2,
                spines_per_pod: 2,
            }),
            ..FaultPlan::default()
        }
        .validated()
        .expect("correlated-fault chaos plan is well-formed"),
    );
    let serial = run(1, Some(plan.clone()));
    let threaded = run(4, Some(plan));
    assert_eq!(
        serial, threaded,
        "THREADS=1 and THREADS=4 diverged under switch/pod outages + gray degrade"
    );
    let clean = run(1, None);
    assert_ne!(
        serial, clean,
        "the correlated fault plan should have perturbed the simulation"
    );
}
