//! End-to-end validation of `aequitas-replay`: a traced run must replay
//! into state that matches what the engine measured, audit PASS against
//! the paper's bounds, flip to FAIL when the trace is corrupted, replay
//! deterministically, and reject unknown schema versions.

use aequitas::{AequitasConfig, SloTarget};
use aequitas_experiments::harness::{run_macro, MacroSetup, PolicyChoice};
use aequitas_experiments::theory;
use aequitas_netsim::EngineConfig;
use aequitas_replay::audit::audit;
use aequitas_replay::report::report_json;
use aequitas_replay::{audit_file, AuditOptions, CheckStatus, Reconstruction};
use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::SimDuration;
use aequitas_stats::Percentiles;
use aequitas_telemetry::{Telemetry, TelemetryConfig};
use aequitas_workloads::{QosMapping, SizeDist};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aequitas-replay-e2e-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write a fig-10 validation point (fig-8 parameters, x = 0.7) as a trace.
fn traced_fig10(path: &std::path::Path) -> theory::ValidationPoint {
    let tel = Telemetry::to_file(path, TelemetryConfig::default()).unwrap();
    let point = theory::fig10_point(0.7, aequitas_experiments::harness::Scale::quick(), &tel);
    tel.flush();
    point
}

/// The acceptance check for the audit layer: a fresh fig-8-parameter run
/// must come back verdict PASS with the measured worst-case delays inside
/// the Eq. 1/Eq. 8 bounds, and corrupting a single dequeue timestamp in
/// the trace must flip the verdict to FAIL.
#[test]
fn fig10_audit_passes_and_corruption_flips_verdict() {
    let dir = tmpdir("audit");
    let path = dir.join("fig10.jsonl");
    traced_fig10(&path);

    let (_, report) = audit_file(&path, &AuditOptions::default()).unwrap();
    assert_eq!(report.verdict, CheckStatus::Pass, "{:#?}", report.checks);
    for name in ["bound_delay_h", "bound_delay_l"] {
        let c = report.checks.iter().find(|c| c.name == name).unwrap();
        assert_eq!(c.status, CheckStatus::Pass, "{c:?}");
        assert!(
            c.measured.unwrap() <= c.limit.unwrap(),
            "measured {:?} over limit {:?}",
            c.measured,
            c.limit
        );
    }

    // Corrupt one delay: push the last pkt_dequeue 5 burst periods (500 us)
    // into the future. The replayed worst-case delay must now blow the
    // bound and fail the audit.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let victim = lines
        .iter()
        .rposition(|l| l.contains("\"type\":\"pkt_dequeue\""))
        .expect("trace has dequeues");
    let line = &lines[victim];
    let (pre, rest) = line.split_once("\"t_ps\":").unwrap();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    let t: u64 = digits.parse().unwrap();
    lines[victim] = format!(
        "{pre}\"t_ps\":{}{}",
        t + 500_000_000,
        &rest[digits.len()..]
    );
    let corrupt = dir.join("fig10-corrupt.jsonl");
    std::fs::write(&corrupt, lines.join("\n") + "\n").unwrap();

    let (_, report) = audit_file(&corrupt, &AuditOptions::default()).unwrap();
    assert_eq!(report.verdict, CheckStatus::Fail, "{:#?}", report.checks);
    assert!(
        report
            .checks
            .iter()
            .any(|c| c.name.starts_with("bound_delay") && c.status == CheckStatus::Fail),
        "corruption must surface as a delay-bound failure: {:#?}",
        report.checks
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Round-trip: the per-class worst-case queuing delay replayed from packet
/// events at the bottleneck port must agree with what the fig-10 receiver
/// measured in-engine (the replayed figure is switch-side, the receiver's
/// includes host serialization — a fraction of a percent of the period).
#[test]
fn replayed_queue_delays_match_engine_measurement() {
    let dir = tmpdir("roundtrip");
    let path = dir.join("fig10.jsonl");
    let point = traced_fig10(&path);

    let mut recon = Reconstruction::from_file(&path).unwrap();
    assert_eq!(recon.epochs, 1);
    let key = recon.bottleneck_port().cloned().expect("packet events");
    let port = &recon.ports[&key];
    let period = 100f64 * 1e6; // 100 us in ps
    for class in 0..2u64 {
        let replayed = port.classes[&class].max_delay_ps as f64 / period;
        let engine = point.sim[class as usize];
        assert!(
            (replayed - engine).abs() < 0.03,
            "class {class}: replayed {replayed:.4} vs engine {engine:.4} periods"
        );
    }
    // And the audit agrees with the fig-10 theory columns it was built on.
    let report = audit(&mut recon, &AuditOptions::default());
    assert_eq!(report.verdict, CheckStatus::Pass, "{:#?}", report.checks);

    let _ = std::fs::remove_dir_all(&dir);
}

/// An overloaded Aequitas run whose RPC layer emits completions on both
/// QoS levels (mirrors tests/telemetry.rs).
fn traced_rpc_setup(tel: Telemetry) -> MacroSetup {
    let slo = SloTarget::absolute(SimDuration::from_us(15), 8, 99.9);
    let mut setup = MacroSetup::star_3qos(3);
    setup.name = "replay-roundtrip";
    setup.engine = EngineConfig::default_2qos();
    setup.mapping = QosMapping::two_level();
    setup.policy = PolicyChoice::Aequitas(AequitasConfig::two_qos(slo));
    setup.duration = SimDuration::from_ms(4);
    setup.warmup = SimDuration::from_ms(1);
    setup.telemetry = tel;
    for h in 0..2 {
        setup.workloads[h] = Some(WorkloadSpec {
            arrival: ArrivalProcess::Uniform { load: 1.0 },
            pattern: TrafficPattern::ManyToOne { dst: 2 },
            classes: vec![
                PrioritySpec {
                    priority: Priority::PerformanceCritical,
                    byte_share: 0.7,
                    sizes: SizeDist::Fixed(32_768),
                },
                PrioritySpec {
                    priority: Priority::BestEffort,
                    byte_share: 0.3,
                    sizes: SizeDist::Fixed(32_768),
                },
            ],
            stop: None,
        });
    }
    setup
}

/// Round-trip: per-QoS RNL percentiles reconstructed from `rpc_complete`
/// events must match the engine's own completion records (same warmup
/// filter, same sketch) — and the run's `run_info` must carry the setup.
#[test]
fn replayed_rnl_percentiles_match_completions() {
    let dir = tmpdir("rnl");
    let path = dir.join("run.jsonl");
    let tel = Telemetry::to_file(&path, TelemetryConfig::default()).unwrap();
    let result = run_macro(traced_rpc_setup(tel.clone()));
    tel.flush();
    assert!(result.completions.len() > 100, "{}", result.completions.len());

    let mut recon = Reconstruction::from_file(&path).unwrap();
    let info = recon.run_info.clone().expect("run_info in trace");
    assert_eq!(info.experiment, "replay-roundtrip");
    assert_eq!(info.hosts, 3);
    assert_eq!(info.senders, 2);
    assert!((info.mu - 2.0).abs() < 1e-9, "aggregate load {}", info.mu);

    // Engine-side per-QoS sketches over the same post-warmup completions.
    let mut engine: std::collections::BTreeMap<u64, Percentiles> = Default::default();
    for c in &result.completions {
        engine
            .entry(c.qos_run.0 as u64)
            .or_default()
            .record(c.rnl_per_mtu().as_ps() as f64);
    }
    for (qos, mine) in engine.iter_mut() {
        let theirs = recon.qos.get_mut(qos).unwrap_or_else(|| {
            panic!("replay lost QoS {qos}");
        });
        assert_eq!(
            theirs.rnl_per_mtu_ps.count(),
            mine.count(),
            "QoS {qos} completion count"
        );
        for pct in [50.0, 99.0, 99.9] {
            let a = theirs.rnl_per_mtu_ps.percentile(pct).unwrap();
            let b = mine.percentile(pct).unwrap();
            assert!(
                (a - b).abs() <= 1e-6 * b.max(1.0),
                "QoS {qos} p{pct}: replay {a} vs engine {b}"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Replaying the same trace twice must produce byte-identical JSON reports.
#[test]
fn replay_is_deterministic() {
    let dir = tmpdir("determinism");
    let path = dir.join("fig10.jsonl");
    traced_fig10(&path);

    let render = || {
        let mut recon = Reconstruction::from_file(&path).unwrap();
        let report = audit(&mut recon, &AuditOptions::default());
        report_json(&mut recon, &report)
    };
    let a = render();
    let b = render();
    assert!(a.len() > 500, "thin report: {a}");
    assert_eq!(a, b, "replay reports diverged across runs");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Replay must refuse trace schema versions it does not understand, with
/// an error naming the version, instead of silently misparsing.
#[test]
fn unknown_schema_version_is_rejected() {
    let dir = tmpdir("schema");
    let path = dir.join("future.jsonl");
    std::fs::write(
        &path,
        "{\"seq\":0,\"t_ps\":0,\"type\":\"trace_header\",\"format\":\"aequitas-trace\",\
         \"schema_version\":99}\n",
    )
    .unwrap();
    let err = Reconstruction::from_file(&path).unwrap_err();
    assert!(
        err.contains("schema") && err.contains("99"),
        "unhelpful error: {err}"
    );

    // And a pre-header (v1) stream is named as such.
    let v1 = dir.join("v1.jsonl");
    std::fs::write(&v1, "{\"seq\":0,\"t_ps\":0,\"type\":\"rpc_issue\"}\n").unwrap();
    let err = Reconstruction::from_file(&v1).unwrap_err();
    assert!(err.contains("pre-v2"), "unhelpful error: {err}");

    let _ = std::fs::remove_dir_all(&dir);
}
