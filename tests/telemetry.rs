//! End-to-end telemetry validation: a real overloaded run with tracing
//! enabled must produce a parseable, monotonically timestamped JSONL stream
//! covering packet, RPC, transport, and admission-controller lifecycle
//! events, plus a sampled metrics CSV.

use aequitas::{AequitasConfig, SloTarget};
use aequitas_experiments::harness::{run_macro, MacroSetup, PolicyChoice};
use aequitas_netsim::EngineConfig;
use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::SimDuration;
use aequitas_telemetry::{FlightRecorder, Telemetry, TelemetryConfig};
use aequitas_workloads::{QosMapping, SizeDist};
use std::collections::BTreeSet;

/// Minimal flat-JSON-object parser (the repo deliberately has no serde):
/// accepts `{"key":value,...}` with string / number / bool values and
/// returns the fields in order. `None` means the line is not valid JSON of
/// that shape.
fn parse_flat_json(line: &str) -> Option<Vec<(String, String)>> {
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Key.
        if chars.next()? != '"' {
            return None;
        }
        let mut key = String::new();
        loop {
            match chars.next()? {
                '"' => break,
                '\\' => {
                    key.push('\\');
                    key.push(chars.next()?);
                }
                c => key.push(c),
            }
        }
        if chars.next()? != ':' {
            return None;
        }
        // Value: string, array of bare tokens (run_info's weights/SLOs), or
        // a bare token up to ',' at top level.
        let mut value = String::new();
        if chars.peek() == Some(&'[') {
            value.push(chars.next()?);
            loop {
                let c = chars.next()?;
                value.push(c);
                if c == ']' {
                    break;
                }
            }
            let body = &value[1..value.len() - 1];
            let ok = body.is_empty() || body.split(',').all(|v| v.parse::<f64>().is_ok());
            if !ok {
                return None;
            }
        } else if chars.peek() == Some(&'"') {
            chars.next();
            loop {
                match chars.next()? {
                    '"' => break,
                    '\\' => {
                        let esc = chars.next()?;
                        if !matches!(esc, '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' | 'u') {
                            return None;
                        }
                        value.push(esc);
                    }
                    c if (c as u32) < 0x20 => return None, // raw control char
                    c => value.push(c),
                }
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c == ',' {
                    break;
                }
                value.push(c);
                chars.next();
            }
            let ok = value.parse::<f64>().is_ok() || value == "true" || value == "false";
            if !ok {
                return None;
            }
        }
        fields.push((key, value));
        match chars.next() {
            None => return Some(fields),
            Some(',') => continue,
            Some(_) => return None,
        }
    }
}

fn field<'a>(fields: &'a [(String, String)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// An overloaded Aequitas run: enough pressure that every event family
/// (enqueue/dequeue/drop, issue/complete/downgrade, cwnd, admit-prob
/// updates) actually fires.
fn traced_setup(tel: Telemetry) -> MacroSetup {
    let slo = SloTarget::absolute(SimDuration::from_us(15), 8, 99.9);
    let mut setup = MacroSetup::star_3qos(3);
    setup.engine = EngineConfig::default_2qos();
    setup.mapping = QosMapping::two_level();
    setup.policy = PolicyChoice::Aequitas(AequitasConfig::two_qos(slo));
    setup.duration = SimDuration::from_ms(6);
    setup.warmup = SimDuration::from_ms(1);
    setup.telemetry = tel;
    for h in 0..2 {
        setup.workloads[h] = Some(WorkloadSpec {
            arrival: ArrivalProcess::Uniform { load: 1.0 },
            pattern: TrafficPattern::ManyToOne { dst: 2 },
            classes: vec![
                PrioritySpec {
                    priority: Priority::PerformanceCritical,
                    byte_share: 0.7,
                    sizes: SizeDist::Fixed(32_768),
                },
                PrioritySpec {
                    priority: Priority::BestEffort,
                    byte_share: 0.3,
                    sizes: SizeDist::Fixed(32_768),
                },
            ],
            stop: None,
        });
    }
    setup
}

#[test]
fn traced_run_emits_valid_monotone_jsonl_and_metrics() {
    let recorder = FlightRecorder::new(4_000_000);
    let tel = Telemetry::with_sink(
        recorder.clone(),
        TelemetryConfig {
            sample_every: SimDuration::from_us(100),
        },
    );
    let result = run_macro(traced_setup(tel.clone()));
    assert!(result.completions.len() > 100, "{}", result.completions.len());

    let lines = recorder.dump();
    assert_eq!(recorder.dropped(), 0, "ring buffer sized for the whole run");
    assert!(lines.len() > 1000, "only {} trace lines", lines.len());

    let mut last_seq: Option<u64> = None;
    let mut last_t: u64 = 0;
    let mut types = BTreeSet::new();
    for line in &lines {
        let fields = parse_flat_json(line).unwrap_or_else(|| panic!("bad JSON: {line}"));
        // Stable leading fields.
        assert_eq!(fields[0].0, "seq", "{line}");
        assert_eq!(fields[1].0, "t_ps", "{line}");
        assert_eq!(fields[2].0, "type", "{line}");
        let seq: u64 = fields[0].1.parse().unwrap();
        let t_ps: u64 = fields[1].1.parse().unwrap();
        if let Some(prev) = last_seq {
            assert_eq!(seq, prev + 1, "seq gap at {line}");
        }
        last_seq = Some(seq);
        assert!(
            t_ps >= last_t,
            "timestamps went backwards: {t_ps} < {last_t} at {line}"
        );
        last_t = t_ps;
        types.insert(field(&fields, "type").unwrap().to_string());
    }
    // Packet, RPC, transport, and controller families are all present.
    for required in [
        "pkt_enqueue",
        "pkt_dequeue",
        "rpc_issue",
        "rpc_complete",
        "cwnd_update",
        "admit_prob",
    ] {
        assert!(types.contains(required), "missing {required}: {types:?}");
    }

    // The sampled metrics export: header + plenty of rows, exactly 4 CSV
    // fields each (multi-pair labels embed commas, so the labels field is
    // quoted), and the counters the run must have bumped are present.
    let split_csv = |row: &str| -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = String::new();
        let mut in_quotes = false;
        for ch in row.chars() {
            match ch {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => out.push(std::mem::take(&mut cur)),
                _ => cur.push(ch),
            }
        }
        assert!(!in_quotes, "unbalanced quotes in {row}");
        out.push(cur);
        out
    };
    let mut csv = Vec::new();
    tel.write_metrics_csv(&mut csv).unwrap();
    let csv = String::from_utf8(csv).unwrap();
    let mut rows = csv.lines();
    assert_eq!(rows.next(), Some("t_us,metric,labels,value"));
    let mut metrics_seen = BTreeSet::new();
    let mut nrows = 0;
    for row in rows {
        let cols = split_csv(row);
        assert_eq!(cols.len(), 4, "row is not 4 fields: {row}");
        cols[0].parse::<f64>().unwrap_or_else(|_| panic!("bad t_us in {row}"));
        cols[3]
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad value in {row}"));
        metrics_seen.insert(cols[1].to_string());
        nrows += 1;
    }
    assert!(nrows > 100, "only {nrows} metric samples");
    for required in [
        "rpc.issued",
        "rpc.completed",
        "rpc.rnl_per_mtu_ns.p99",
        "engine.events_processed",
        "switch.port.backlog_bytes",
    ] {
        assert!(
            metrics_seen.contains(required),
            "missing metric {required}: {metrics_seen:?}"
        );
    }
}

/// The interned-handle fast path (MetricId tables in the engine, RPC stack,
/// and transport; scratch-buffer trace serialization) must not perturb
/// output: two identical traced runs produce byte-identical JSONL streams
/// and metrics CSVs. Registration order, label strings, and sampling
/// cadence all feed the exported bytes, so any divergence from the
/// string-keyed semantics shows up here.
#[test]
fn traced_run_output_is_byte_identical_across_runs() {
    let run_once = || {
        let recorder = FlightRecorder::new(4_000_000);
        let tel = Telemetry::with_sink(
            recorder.clone(),
            TelemetryConfig {
                sample_every: SimDuration::from_us(100),
            },
        );
        let mut setup = traced_setup(tel.clone());
        setup.duration = SimDuration::from_ms(2);
        run_macro(setup);
        let mut csv = Vec::new();
        tel.write_metrics_csv(&mut csv).unwrap();
        (recorder.dump(), String::from_utf8(csv).unwrap())
    };
    let (trace_a, csv_a) = run_once();
    let (trace_b, csv_b) = run_once();
    assert!(trace_a.len() > 100, "only {} trace lines", trace_a.len());
    assert_eq!(trace_a, trace_b, "trace streams diverged");
    assert!(csv_a.lines().count() > 50, "thin CSV: {}", csv_a.len());
    assert_eq!(csv_a, csv_b, "metrics CSVs diverged");
}

#[test]
fn jsonl_writer_produces_a_readable_file() {
    let dir = std::env::temp_dir().join("aequitas-telemetry-test");
    let path = dir.join("trace.jsonl");
    let tel = Telemetry::to_file(&path, TelemetryConfig::default()).unwrap();
    let mut setup = traced_setup(tel.clone());
    setup.duration = SimDuration::from_ms(2);
    run_macro(setup);
    tel.flush();
    let text = std::fs::read_to_string(&path).unwrap();
    let mut n = 0;
    for line in text.lines() {
        assert!(parse_flat_json(line).is_some(), "bad JSON line: {line}");
        n += 1;
    }
    assert!(n > 100, "only {n} lines in {}", path.display());
    let _ = std::fs::remove_dir_all(&dir);
}
