//! Deterministic future-event list.
//!
//! A thin wrapper around a binary heap keyed by `(time, sequence)`. The
//! monotonically increasing sequence number guarantees FIFO ordering among
//! events scheduled for the same instant, which makes simulations fully
//! deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event pulled out of the queue: when it fires and its payload.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Instant at which the event fires.
    pub time: SimTime,
    /// Tie-break sequence number (insertion order).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Future-event list with deterministic same-instant ordering.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at the absolute instant `at`.
    ///
    /// Panics (in debug builds) when scheduling into the past; the kernel
    /// cannot rewind time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry {
            time: at,
            seq,
            event,
        });
    }

    /// Pop the next event and advance the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|entry| {
            self.now = entry.time;
            ScheduledEvent {
                time: entry.time,
                seq: entry.seq,
                event: entry.event,
            }
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(1), ());
        q.schedule(SimTime::from_us(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_us(1));
        q.pop();
        assert_eq!(q.now(), SimTime::from_us(2));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::from_us(2));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_us(7)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    proptest! {
        /// Events always come out sorted by (time, insertion order).
        #[test]
        fn prop_total_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ps(t), i);
            }
            let mut prev: Option<(SimTime, u64)> = None;
            while let Some(e) = q.pop() {
                if let Some((pt, ps)) = prev {
                    prop_assert!(e.time > pt || (e.time == pt && e.seq > ps));
                }
                prev = Some((e.time, e.seq));
            }
        }
    }
}
