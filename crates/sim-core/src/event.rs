//! Deterministic future-event list.
//!
//! Two interchangeable backends behind one [`EventQueue`] type, both keyed
//! by `(time, sequence)`. The monotonically increasing sequence number
//! guarantees FIFO ordering among events scheduled for the same instant,
//! which makes simulations fully deterministic regardless of backend
//! internals:
//!
//! * [`QueueKind::Calendar`] (the default) — a calendar queue / timing
//!   wheel: a ring of `NUM_BUCKETS` buckets, each `2^BUCKET_BITS` ps wide,
//!   holding the near future, plus a binary-heap overflow for events beyond
//!   the ring horizon. Scheduling into the ring is O(1); popping scans one
//!   (typically tiny) bucket. Discrete-event network simulations schedule
//!   almost everything within a few link serialization times of `now`, so
//!   the ring absorbs nearly all traffic and the queue runs ahead of a
//!   binary heap, whose every operation is O(log n) with cache-hostile
//!   sibling jumps.
//! * [`QueueKind::Heap`] — the classic `BinaryHeap` future-event list,
//!   kept as the reference implementation; the property tests assert the
//!   two backends produce byte-identical pop sequences.
//!
//! Ordering contract of the calendar backend: distinct buckets cover
//! disjoint, increasing time ranges, so cross-bucket order needs no
//! comparisons; same-instant events always land in the same bucket, where
//! the pop scan breaks ties on `seq`. Overflow events sit at bucket indices
//! at or beyond the ring horizon and are migrated into the ring as the
//! clock advances, before the horizon reaches them — hence they can never
//! be due before anything already in the ring.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event pulled out of the queue: when it fires and its payload.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Instant at which the event fires.
    pub time: SimTime,
    /// Tie-break sequence number (insertion order).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

/// Which future-event list backend an [`EventQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Bucketed calendar queue with heap overflow (the default).
    #[default]
    Calendar,
    /// Plain binary-heap future-event list (reference implementation).
    Heap,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// log2 of the bucket width in picoseconds: 2^14 ps ≈ 16 ns. Popping
/// re-scans the current bucket once per resident event, so the width is
/// sized for ~1 event per bucket at the busiest observed churn (an 8-host
/// fan-in runs ~150 events/µs through the queue); wider buckets make every
/// pop pay a multi-entry min-scan.
const BUCKET_BITS: u32 = 14;
/// Ring size (power of two): 16384 buckets ≈ 268 µs of horizon, comfortably
/// past RTT-scale scheduling; only RTO-scale timers overflow to the heap.
const NUM_BUCKETS: usize = 16384;
const WORDS: usize = NUM_BUCKETS / 64;

#[inline]
fn bucket_of(t: SimTime) -> u64 {
    t.as_ps() >> BUCKET_BITS
}

struct Calendar<E> {
    /// Ring of buckets; slot for absolute bucket `b` is `b % NUM_BUCKETS`.
    buckets: Vec<Vec<(SimTime, u64, E)>>,
    /// Bitmap of non-empty slots, for skipping runs of empty buckets.
    occupied: [u64; WORDS],
    /// Absolute bucket index the clock is in; only ever advances.
    base: u64,
    /// Events resident in the ring.
    ring_len: usize,
    /// Events at bucket >= base + NUM_BUCKETS.
    overflow: BinaryHeap<HeapEntry<E>>,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            // alloc: ring construction, once per queue; buckets keep
            // their capacity across laps.
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            base: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    #[inline]
    fn set_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn clear_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
    }

    #[inline]
    fn push_ring(&mut self, time: SimTime, seq: u64, event: E) {
        let slot = (bucket_of(time) as usize) & (NUM_BUCKETS - 1);
        if self.buckets[slot].is_empty() {
            self.set_bit(slot);
        }
        self.buckets[slot].push((time, seq, event));
        self.ring_len += 1;
    }

    fn schedule(&mut self, time: SimTime, seq: u64, event: E) {
        let b = bucket_of(time);
        debug_assert!(b >= self.base, "schedule below base bucket");
        if b < self.base + NUM_BUCKETS as u64 {
            self.push_ring(time, seq, event);
        } else {
            self.overflow.push(HeapEntry { time, seq, event });
        }
    }

    /// Move overflow events that now fall inside the ring horizon into it.
    fn migrate(&mut self) {
        let horizon = self.base + NUM_BUCKETS as u64;
        while let Some(top) = self.overflow.peek() {
            if bucket_of(top.time) >= horizon {
                break;
            }
            let e = self.overflow.pop().expect("peek above proved non-empty");
            self.push_ring(e.time, e.seq, e.event);
        }
    }

    /// Advance `base` to the first bucket holding an event. Requires the
    /// queue to be non-empty.
    fn advance(&mut self) {
        if self.ring_len == 0 {
            // Ring empty: jump straight to the earliest overflow event.
            let next = bucket_of(self.overflow.peek().expect("queue not empty").time);
            debug_assert!(next >= self.base);
            self.base = next;
            self.migrate();
            debug_assert!(self.ring_len > 0);
            return;
        }
        let slot = self.first_occupied_slot();
        let start = (self.base as usize) & (NUM_BUCKETS - 1);
        let dist = (slot + NUM_BUCKETS - start) % NUM_BUCKETS;
        if dist > 0 {
            self.base += dist as u64;
            self.migrate();
        }
    }

    /// Bitmap scan from the current slot, in ring order, for the first
    /// non-empty bucket. Requires `ring_len > 0` (guarantees a set bit
    /// within `NUM_BUCKETS` positions). Read-only: does not move `base`.
    fn first_occupied_slot(&self) -> usize {
        let start = (self.base as usize) & (NUM_BUCKETS - 1);
        let mut word = start / 64;
        let mut bits = self.occupied[word] & (!0u64 << (start % 64));
        let mut scanned = 0usize;
        loop {
            if bits != 0 {
                break word * 64 + bits.trailing_zeros() as usize;
            }
            scanned += 64;
            debug_assert!(scanned <= NUM_BUCKETS + 64, "occupied bitmap empty");
            word = (word + 1) % WORDS;
            bits = self.occupied[word];
        }
    }

    /// Index of the min `(time, seq)` entry in the current bucket.
    fn min_index_in_current(&self) -> usize {
        let slot = (self.base as usize) & (NUM_BUCKETS - 1);
        let bucket = &self.buckets[slot];
        debug_assert!(!bucket.is_empty());
        let mut best = 0;
        for (i, entry) in bucket.iter().enumerate().skip(1) {
            if (entry.0, entry.1) < (bucket[best].0, bucket[best].1) {
                best = i;
            }
        }
        best
    }

    /// Timestamp of the next event, without committing `base`. Keeping the
    /// peek read-only matters for the sharded engine: it peeks every domain
    /// to pick a window, then *injects* boundary arrivals that may be
    /// earlier than this domain's next native event — advancing `base` on
    /// peek would put those injections below the ring cursor.
    fn peek_time(&self) -> Option<SimTime> {
        if self.ring_len == 0 {
            return self.overflow.peek().map(|e| e.time);
        }
        // The first occupied slot at or after `base` holds the lowest
        // absolute bucket in the ring window; ring events always precede
        // overflow events (bucket >= base + NUM_BUCKETS).
        let bucket = &self.buckets[self.first_occupied_slot()];
        debug_assert!(!bucket.is_empty());
        Some(bucket.iter().map(|e| e.0).min().expect("non-empty bucket"))
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if self.len() == 0 {
            return None;
        }
        self.advance();
        let slot = (self.base as usize) & (NUM_BUCKETS - 1);
        let i = self.min_index_in_current();
        let entry = self.buckets[slot].swap_remove(i);
        if self.buckets[slot].is_empty() {
            self.clear_bit(slot);
        }
        self.ring_len -= 1;
        Some(entry)
    }

    /// Bounded pop: at most one bitmap scan and one bucket scan, instead of
    /// the two of each a `peek_time` + `pop` pair costs. `base` is committed
    /// only when an event is actually returned — on the `None` path this is
    /// as read-only as a peek, which the sharded engine's window protocol
    /// relies on (it may inject arrivals earlier than the peeked event).
    fn pop_if_at_or_before(&mut self, end: SimTime) -> Option<(SimTime, u64, E)> {
        if self.ring_len == 0 {
            let t = self.overflow.peek()?.time;
            if t > end {
                return None;
            }
            // The pop below is now certain: jump the cursor straight to the
            // earliest overflow event and pull it (plus any peers inside the
            // new horizon) into the ring.
            debug_assert!(bucket_of(t) >= self.base);
            self.base = bucket_of(t);
            self.migrate();
            debug_assert!(self.ring_len > 0);
        }
        let slot = self.first_occupied_slot();
        let bucket = &self.buckets[slot];
        let mut best = 0;
        for (i, entry) in bucket.iter().enumerate().skip(1) {
            if (entry.0, entry.1) < (bucket[best].0, bucket[best].1) {
                best = i;
            }
        }
        if bucket[best].0 > end {
            return None;
        }
        let start = (self.base as usize) & (NUM_BUCKETS - 1);
        let dist = (slot + NUM_BUCKETS - start) % NUM_BUCKETS;
        if dist > 0 {
            self.base += dist as u64;
            // Migration may append entries to this very slot (buckets that
            // alias it modulo the ring size); appends leave index `best`
            // pointing at the same entry, and every migrated event lives in
            // a strictly later bucket, so `best` is still the minimum.
            self.migrate();
        }
        let entry = self.buckets[slot].swap_remove(best);
        if self.buckets[slot].is_empty() {
            self.clear_bit(slot);
        }
        self.ring_len -= 1;
        Some(entry)
    }
}

// One Backend lives per EventQueue (one per simulation), so the inline
// Calendar ring header is fine — boxing it would only add a pointer chase
// to the hot schedule/pop path.
#[allow(clippy::large_enum_variant)]
enum Backend<E> {
    Heap(BinaryHeap<HeapEntry<E>>),
    Calendar(Calendar<E>),
}

/// Future-event list with deterministic same-instant ordering.
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero, using the default
    /// (calendar) backend.
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Calendar)
    }

    /// Create an empty queue with the chosen backend.
    pub fn with_kind(kind: QueueKind) -> Self {
        let backend = match kind {
            QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
            QueueKind::Calendar => Backend::Calendar(Calendar::new()),
        };
        EventQueue {
            backend,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.backend {
            Backend::Heap(_) => QueueKind::Heap,
            Backend::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at the absolute instant `at`.
    ///
    /// Panics when scheduling into the past; the kernel cannot rewind time.
    /// (Always-on: a rewound clock silently corrupts every downstream
    /// measurement, and the branch is trivially predicted.)
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(HeapEntry {
                time: at,
                seq,
                event,
            }),
            Backend::Calendar(cal) => cal.schedule(at, seq, event),
        }
    }

    /// Pop the next event and advance the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let popped = match &mut self.backend {
            Backend::Heap(heap) => heap.pop().map(|e| (e.time, e.seq, e.event)),
            Backend::Calendar(cal) => cal.pop(),
        };
        popped.map(|(time, seq, event)| {
            self.advance_clock(time);
            ScheduledEvent { time, seq, event }
        })
    }

    /// Advance the clock to the timestamp of a popped event. Under
    /// `simsan` this asserts pop-order monotonicity — the property both
    /// backends (heap ordering, calendar bucket binning) must deliver and
    /// that `schedule`'s not-into-the-past check alone cannot guarantee.
    #[inline]
    fn advance_clock(&mut self, t: SimTime) {
        #[cfg(feature = "simsan")]
        assert!(
            t >= self.now,
            "simsan[event-queue]: popped event at {t} behind the clock {} ({:?} backend)",
            self.now,
            self.kind(),
        );
        self.now = t;
    }

    /// Force the clock without popping — a corruption hook for the simsan
    /// fixture tests (proves the monotonicity check actually fires).
    #[cfg(any(test, feature = "simsan"))]
    #[doc(hidden)]
    pub fn simsan_force_now(&mut self, t: SimTime) {
        self.now = t;
    }

    /// Pop the next event only if it fires at or before `end`; advances the
    /// clock on success. One bucket/heap probe instead of a separate
    /// `peek_time` + `pop` pair — the shape of a bounded `run_until` loop.
    pub fn pop_if_at_or_before(&mut self, end: SimTime) -> Option<ScheduledEvent<E>> {
        let popped = match &mut self.backend {
            Backend::Heap(heap) => {
                if heap.peek().map(|e| e.time > end).unwrap_or(true) {
                    return None;
                }
                let entry = heap.pop().expect("peek above proved non-empty");
                (entry.time, entry.seq, entry.event)
            }
            Backend::Calendar(cal) => cal.pop_if_at_or_before(end)?,
        };
        let (time, seq, event) = popped;
        self.advance_clock(time);
        Some(ScheduledEvent { time, seq, event })
    }

    /// Timestamp of the next event without popping it. Read-only: peeking
    /// never restricts what may still be scheduled (the sharded engine
    /// peeks all domains, then injects cross-domain arrivals that can be
    /// earlier than the peeked native event).
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|e| e.time),
            Backend::Calendar(cal) => cal.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Calendar(cal) => cal.len(),
        }
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn both_kinds() -> [QueueKind; 2] {
        [QueueKind::Calendar, QueueKind::Heap]
    }

    #[test]
    fn pops_in_time_order() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_ns(30), "c");
            q.schedule(SimTime::from_ns(10), "a");
            q.schedule(SimTime::from_ns(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            assert_eq!(order, vec!["a", "b", "c"]);
        }
    }

    #[test]
    fn same_instant_is_fifo() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_ns(5);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_us(1), ());
            q.schedule(SimTime::from_us(2), ());
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_us(1));
            q.pop();
            assert_eq!(q.now(), SimTime::from_us(2));
            assert!(q.pop().is_none());
            assert_eq!(q.now(), SimTime::from_us(2));
        }
    }

    #[test]
    fn peek_does_not_advance() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_us(7), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_us(7)));
            assert_eq!(q.now(), SimTime::ZERO);
        }
    }

    #[test]
    fn pop_if_at_or_before_respects_bound() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_us(1), 1u32);
            q.schedule(SimTime::from_us(3), 3u32);
            let e = q.pop_if_at_or_before(SimTime::from_us(2)).unwrap();
            assert_eq!(e.event, 1);
            assert_eq!(q.now(), SimTime::from_us(1));
            // Next event is past the bound: no pop, clock untouched.
            assert!(q.pop_if_at_or_before(SimTime::from_us(2)).is_none());
            assert_eq!(q.now(), SimTime::from_us(1));
            assert_eq!(q.len(), 1);
            // Exact boundary is inclusive.
            let e = q.pop_if_at_or_before(SimTime::from_us(3)).unwrap();
            assert_eq!(e.event, 3);
            assert!(q.pop_if_at_or_before(SimTime::MAX).is_none());
        }
    }

    #[test]
    fn peek_does_not_restrict_later_schedules() {
        // Regression for the sharded engine's window protocol: peek a
        // domain whose next native event is far away, then inject a nearer
        // boundary arrival. The peek must not have committed the calendar
        // cursor past the injection's bucket.
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_ms(10), "far");
            assert_eq!(q.peek_time(), Some(SimTime::from_ms(10)));
            q.schedule(SimTime::from_us(3), "near");
            assert_eq!(q.peek_time(), Some(SimTime::from_us(3)));
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            assert_eq!(order, vec!["near", "far"]);
        }
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(5), ());
        q.pop();
        q.schedule(SimTime::from_us(4), ());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics_heap_backend() {
        let mut q = EventQueue::with_kind(QueueKind::Heap);
        q.schedule(SimTime::from_us(5), ());
        q.pop();
        q.schedule(SimTime::from_us(4), ());
    }

    #[test]
    fn calendar_crosses_ring_horizon() {
        // Events far beyond the ring horizon (4096 buckets of 2^17 ps each)
        // must overflow to the heap and come back in order.
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        let horizon_ps = (NUM_BUCKETS as u64) << BUCKET_BITS;
        q.schedule(SimTime::from_ps(3 * horizon_ps), "far");
        q.schedule(SimTime::from_ps(10), "near");
        q.schedule(SimTime::from_ps(3 * horizon_ps), "far2");
        q.schedule(SimTime::from_ps(7 * horizon_ps + 123), "farther");
        assert_eq!(q.len(), 4);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["near", "far", "far2", "farther"]);
    }

    #[test]
    fn calendar_interleaves_schedule_and_pop_across_horizon() {
        // Schedule-as-you-pop, the engine's actual usage pattern, with gaps
        // chosen to force base jumps and overflow migration.
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        let mut expect = Vec::new();
        q.schedule(SimTime::ZERO, 0u64);
        let mut i = 0u64;
        while let Some(e) = q.pop() {
            expect.push(e.event);
            i += 1;
            if i < 200 {
                // Alternate short hops and horizon-crossing leaps.
                let gap = if i.is_multiple_of(3) { 1u64 << 31 } else { 1000 * i };
                q.schedule(SimTime::from_ps(e.time.as_ps() + gap), i);
            }
        }
        assert_eq!(expect, (0..200).collect::<Vec<_>>());
    }

    proptest! {
        /// Events always come out sorted by (time, insertion order).
        #[test]
        fn prop_total_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            for kind in [QueueKind::Calendar, QueueKind::Heap] {
                let mut q = EventQueue::with_kind(kind);
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_ps(t), i);
                }
                let mut prev: Option<(SimTime, u64)> = None;
                while let Some(e) = q.pop() {
                    if let Some((pt, ps)) = prev {
                        prop_assert!(e.time > pt || (e.time == pt && e.seq > ps));
                    }
                    prev = Some((e.time, e.seq));
                }
            }
        }

        /// The calendar backend's pop sequence is byte-identical to the
        /// binary heap's for random interleaved schedules, including spans
        /// that overflow the ring horizon.
        #[test]
        fn prop_calendar_matches_heap(
            ops in proptest::collection::vec((0u64..2_000_000_000_000, 0u32..4), 1..300)
        ) {
            let mut cal = EventQueue::with_kind(QueueKind::Calendar);
            let mut heap = EventQueue::with_kind(QueueKind::Heap);
            for (payload, &(dt, pops)) in ops.iter().enumerate() {
                // Schedule relative to `now` so both clocks stay in step.
                let at = SimTime::from_ps(cal.now().as_ps().saturating_add(dt));
                cal.schedule(at, payload as u64);
                heap.schedule(at, payload as u64);
                for _ in 0..pops {
                    let a = cal.pop().map(|e| (e.time, e.seq, e.event));
                    let b = heap.pop().map(|e| (e.time, e.seq, e.event));
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(cal.now(), heap.now());
                }
            }
            // Drain both to the end.
            loop {
                let a = cal.pop().map(|e| (e.time, e.seq, e.event));
                let b = heap.pop().map(|e| (e.time, e.seq, e.event));
                prop_assert_eq!(a.clone(), b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
        }

        /// The calendar's native bounded pop is byte-identical to the heap's
        /// peek-then-pop, including bounded probes that return `None` (which
        /// must not commit the calendar cursor: later schedules may still
        /// land before the probed event — the sharded-injection pattern).
        #[test]
        fn prop_bounded_pop_matches_heap(
            ops in proptest::collection::vec(
                (0u64..2_000_000_000_000, 0u64..600_000_000_000, 0u32..4),
                1..300,
            )
        ) {
            let mut cal = EventQueue::with_kind(QueueKind::Calendar);
            let mut heap = EventQueue::with_kind(QueueKind::Heap);
            for (payload, &(dt, bound_dt, pops)) in ops.iter().enumerate() {
                let at = SimTime::from_ps(cal.now().as_ps().saturating_add(dt));
                cal.schedule(at, payload as u64);
                heap.schedule(at, payload as u64);
                let end = SimTime::from_ps(cal.now().as_ps().saturating_add(bound_dt));
                for _ in 0..pops {
                    let a = cal.pop_if_at_or_before(end).map(|e| (e.time, e.seq, e.event));
                    let b = heap.pop_if_at_or_before(end).map(|e| (e.time, e.seq, e.event));
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(cal.now(), heap.now());
                }
            }
            loop {
                let a = cal.pop_if_at_or_before(SimTime::MAX).map(|e| (e.time, e.seq, e.event));
                let b = heap.pop_if_at_or_before(SimTime::MAX).map(|e| (e.time, e.seq, e.event));
                prop_assert_eq!(a.clone(), b);
                if a.is_none() {
                    break;
                }
            }
        }
    }

    // --- simsan fixture tests -------------------------------------------
    // The corruption hook plants a clock ahead of queued events; popping
    // must panic under the sanitizer and stay silent without it, proving
    // the check (a) fires and (b) costs nothing when off.

    fn corrupted_clock_queue(kind: QueueKind) -> EventQueue<u32> {
        let mut q = EventQueue::with_kind(kind);
        q.schedule(SimTime::from_us(1), 7);
        q.simsan_force_now(SimTime::from_us(5));
        q
    }

    #[cfg(feature = "simsan")]
    #[test]
    #[should_panic(expected = "simsan[event-queue]")]
    fn simsan_catches_non_monotonic_pop_heap() {
        corrupted_clock_queue(QueueKind::Heap).pop();
    }

    #[cfg(feature = "simsan")]
    #[test]
    #[should_panic(expected = "simsan[event-queue]")]
    fn simsan_catches_non_monotonic_pop_calendar() {
        corrupted_clock_queue(QueueKind::Calendar).pop();
    }

    #[cfg(not(feature = "simsan"))]
    #[test]
    fn without_simsan_non_monotonic_pop_is_silent() {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let ev = corrupted_clock_queue(kind).pop();
            assert_eq!(ev.map(|e| e.event), Some(7));
        }
    }
}
