//! Slab arenas: freelist-recycled object pools for the simulation hot path.
//!
//! A discrete-event run at fleet scale churns through hundreds of millions
//! of events and packets. Allocating each one on the heap would put the
//! allocator on the hot path and scatter queue entries across the address
//! space; instead, engines park payloads in a [`Slab`] and move only a
//! 4-byte [`SlotId`] through the future-event list. The slab's backing
//! vector grows to the high-water mark of *outstanding* objects (a few
//! thousand even for multi-thousand-host fabrics) and is then recycled
//! forever via an intrusive freelist — steady-state scheduling performs
//! zero heap allocation.
//!
//! Determinism: slot assignment is a pure function of the insert/remove
//! sequence (LIFO freelist), so two runs dispatching the same events assign
//! identical ids. Nothing downstream may depend on id *values* anyway —
//! they are handles, not ordering keys.

/// Handle to an object resident in a [`Slab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(u32);

impl SlotId {
    /// The raw slot index (stable until the slot is removed).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

enum Slot<T> {
    /// Slot holds a live object.
    Full(T),
    /// Slot is free; value is the next free slot (`u32::MAX` = end of list).
    Free(u32),
}

/// A freelist-recycled arena: O(1) insert and remove, stable ids, zero
/// steady-state allocation once warm.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Head of the intrusive freelist (`u32::MAX` = empty).
    free_head: u32,
    len: usize,
}

const NIL: u32 = u32::MAX;

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            // alloc: the arena's own backing store; grows amortized, and
            // slot recycling keeps it from growing at steady state.
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// An empty slab with room for `cap` objects before the first growth.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            len: 0,
        }
    }

    /// Live objects resident in the slab.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of slots ever allocated (backing-store size).
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    /// Park `value` and return its handle. Recycles a freed slot when one
    /// exists; grows the backing vector only at the high-water mark.
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            match self.slots[idx as usize] {
                Slot::Free(next) => self.free_head = next,
                Slot::Full(_) => unreachable!("freelist points at a live slot"),
            }
            self.slots[idx as usize] = Slot::Full(value);
            SlotId(idx)
        } else {
            let idx = self.slots.len();
            assert!(idx < NIL as usize, "slab overflow: 2^32-1 live objects");
            self.slots.push(Slot::Full(value));
            SlotId(idx as u32)
        }
    }

    /// Take the object out of `id`'s slot and put the slot on the freelist.
    ///
    /// Panics if the slot is already free — a double-remove is always an
    /// engine bug and silently returning garbage would corrupt the run.
    pub fn remove(&mut self, id: SlotId) -> T {
        let slot = std::mem::replace(&mut self.slots[id.index()], Slot::Free(self.free_head));
        match slot {
            Slot::Full(value) => {
                self.free_head = id.0;
                self.len -= 1;
                value
            }
            Slot::Free(next) => {
                // Restore the freelist before panicking so a caught panic
                // (tests) leaves the slab coherent.
                self.slots[id.index()] = Slot::Free(next);
                panic!("slab: remove of free slot {}", id.0);
            }
        }
    }

    /// Borrow the object in `id`'s slot.
    pub fn get(&self, id: SlotId) -> Option<&T> {
        match self.slots.get(id.index()) {
            Some(Slot::Full(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutably borrow the object in `id`'s slot.
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        match self.slots.get_mut(id.index()) {
            Some(Slot::Full(v)) => Some(v),
            _ => None,
        }
    }
}

/// A recycling buffer pool for scratch `Vec<T>`s (boundary-packet outboxes,
/// drained action lists): `take` hands out an empty vector with warm
/// capacity, `put` returns it after use. Steady-state loops allocate only
/// until the pool learns the working-set size.
pub struct VecPool<T> {
    spares: Vec<Vec<T>>,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> VecPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        // alloc: the pool's own registry, created once.
        VecPool { spares: Vec::new() }
    }

    /// Hand out an empty vector, reusing a recycled one's capacity when
    /// available.
    pub fn take(&mut self) -> Vec<T> {
        self.spares.pop().unwrap_or_default()
    }

    /// Return a vector to the pool. Contents are cleared; capacity is kept.
    pub fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        self.spares.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), "a");
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(b), "b");
        assert!(slab.is_empty());
    }

    #[test]
    fn slots_are_recycled_lifo_and_deterministic() {
        let mut slab = Slab::new();
        let ids: Vec<SlotId> = (0..4).map(|i| slab.insert(i)).collect();
        slab.remove(ids[1]);
        slab.remove(ids[3]);
        // LIFO: slot 3 first, then slot 1, then growth.
        assert_eq!(slab.insert(10), ids[3]);
        assert_eq!(slab.insert(11), ids[1]);
        assert_eq!(slab.insert(12).index(), 4);
        assert_eq!(slab.capacity_slots(), 5);
    }

    #[test]
    fn steady_state_never_grows() {
        let mut slab = Slab::new();
        // Warm to a working set of 8.
        let mut live: Vec<SlotId> = (0..8).map(|i| slab.insert(i)).collect();
        let cap = slab.capacity_slots();
        for round in 0..1000u64 {
            let id = live.remove((round % 7) as usize);
            slab.remove(id);
            live.push(slab.insert(round));
        }
        assert_eq!(slab.capacity_slots(), cap, "steady state must not grow");
        assert_eq!(slab.len(), 8);
    }

    #[test]
    #[should_panic(expected = "remove of free slot")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let id = slab.insert(1u8);
        slab.remove(id);
        slab.remove(id);
    }

    #[test]
    fn vec_pool_recycles_capacity() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut v = pool.take();
        v.extend(0..100);
        let cap = v.capacity();
        pool.put(v);
        let v2 = pool.take();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= cap, "capacity must be recycled");
    }
}
