//! Simulated time in integer picoseconds.
//!
//! At 100 Gbps one byte takes exactly 80 ps to serialize, so picosecond
//! resolution makes every serialization delay an exact integer. A `u64`
//! picosecond clock wraps after ~213 days of simulated time — far beyond any
//! experiment in this repository.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An instant in simulated time, measured in picoseconds since simulation
/// start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, measured in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" timeout sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Construct from whole nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    /// Construct from whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    /// Construct from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }
    /// Construct from seconds expressed as a float (convenience for
    /// experiment configuration; rounds to the nearest picosecond).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs * PS_PER_SEC as f64).round() as u64)
    }

    /// This instant as picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// This instant as fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// This instant as fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Panics (in debug) if `earlier` is
    /// later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Snap down to the start of the period containing `self` (periods
    /// tile the timeline from t=0). Panics if `period` is zero.
    pub fn align_down(self, period: SimDuration) -> SimTime {
        SimTime(self.0 / period.0 * period.0)
    }

    /// Offset of `self` within its period (`self - self.align_down(period)`).
    pub fn phase_in(self, period: SimDuration) -> SimDuration {
        SimDuration(self.0 % period.0)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }
    /// Construct from whole nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }
    /// Construct from whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }
    /// Construct from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_SEC)
    }
    /// Construct from seconds expressed as a float (rounds to nearest ps).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs * PS_PER_SEC as f64).round() as u64)
    }
    /// Construct from microseconds expressed as a float (rounds to nearest ps).
    pub fn from_us_f64(us: f64) -> Self {
        SimDuration((us * PS_PER_US as f64).round() as u64)
    }

    /// This duration as picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// This duration as fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// This duration as fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// This duration as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Multiply by a float factor, rounding to the nearest picosecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0);
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// This duration as whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Number of whole `period`s contained in `self` (integer division,
    /// exact — no float rounding). Panics if `period` is zero.
    pub const fn div_duration(self, period: SimDuration) -> u64 {
        self.0 / period.0
    }

    /// The dimensionless ratio `self / denom`. Panics (in debug) on a
    /// zero denominator.
    pub fn ratio(self, denom: SimDuration) -> f64 {
        debug_assert!(denom.0 != 0, "ratio() with zero denominator");
        self.0 as f64 / denom.0 as f64
    }

    /// Exponentially weighted moving average step toward `sample`:
    /// `(1 - alpha)·self + alpha·sample`. Computed as a single float
    /// expression and truncated, so smoothing loops (e.g. an RTT EWMA)
    /// stay bit-stable across refactors of the call site.
    pub fn ewma_toward(self, sample: SimDuration, alpha: f64) -> SimDuration {
        debug_assert!((0.0..=1.0).contains(&alpha));
        SimDuration((self.0 as f64 * (1.0 - alpha) + sample.0 as f64 * alpha) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

/// Bit rate of a link, stored in bits per second.
///
/// Provides exact serialization times in picoseconds for common datacenter
/// rates (any rate that divides 10^12 bit-ps evenly; 100 Gbps gives 10 ps per
/// bit, 80 ps per byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitRate(pub u64);

impl BitRate {
    /// Construct from gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        BitRate(gbps * 1_000_000_000)
    }
    /// This rate in bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }
    /// This rate in gigabits per second.
    pub fn gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Time to serialize `bytes` at this rate.
    ///
    /// Computed as `bits * ps_per_sec / rate` with 128-bit intermediate so
    /// there is no overflow and the rounding error is below one picosecond.
    pub fn serialize_time(self, bytes: u64) -> SimDuration {
        let bits = bytes as u128 * 8;
        let ps = bits * PS_PER_SEC as u128 / self.0 as u128;
        SimDuration(ps as u64)
    }
    /// Exact picoseconds per bit, when this rate divides the picosecond
    /// grid evenly (all common datacenter rates do: 100 Gbps → 10 ps/bit).
    ///
    /// Callers cache the value next to per-port state so the per-packet
    /// [`BitRate::serialize_time`] becomes a single multiply instead of a
    /// 128-bit division. `None` when the division is inexact or the rate is
    /// so low that `bytes * 8 * ps_per_bit` could overflow; fall back to
    /// [`BitRate::serialize_time`] then.
    pub fn ps_per_bit_exact(self) -> Option<u64> {
        if self.0 == 0 || !PS_PER_SEC.is_multiple_of(self.0) {
            return None;
        }
        let ppb = PS_PER_SEC / self.0;
        // u32::MAX bytes * 8 bits * ppb must fit in u64.
        (ppb <= 1 << 28).then_some(ppb)
    }

    /// How many whole bytes this rate delivers in `dur`.
    pub fn bytes_in(self, dur: SimDuration) -> u64 {
        (dur.0 as u128 * self.0 as u128 / (8 * PS_PER_SEC as u128)) as u64
    }
    /// Scale the rate by a float factor (e.g. to express a fractional load).
    pub fn mul_f64(self, factor: f64) -> BitRate {
        BitRate((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}Gbps", self.gbps_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_exact_at_100gbps() {
        let r = BitRate::from_gbps(100);
        // One byte = 8 bits at 10 ps/bit = 80 ps.
        assert_eq!(r.serialize_time(1), SimDuration::from_ps(80));
        // A 4096-byte MTU = 327,680 ps.
        assert_eq!(r.serialize_time(4096), SimDuration::from_ps(327_680));
        // 32 KB = 8 MTUs.
        assert_eq!(r.serialize_time(32_768), SimDuration::from_ps(2_621_440));
    }

    #[test]
    fn ps_per_bit_exact_matches_serialize_time() {
        for gbps in [1u64, 10, 25, 40, 100, 200] {
            let r = BitRate::from_gbps(gbps);
            let ppb = r.ps_per_bit_exact().expect("datacenter rates are exact");
            for bytes in [1u64, 64, 1500, 4096, 65536, u32::MAX as u64] {
                assert_eq!(
                    SimDuration::from_ps(bytes * 8 * ppb),
                    r.serialize_time(bytes),
                    "{gbps} Gbps x {bytes} B"
                );
            }
        }
        // 400 Gbps is 2.5 ps/bit: not on the integer picosecond grid.
        assert_eq!(BitRate::from_gbps(400).ps_per_bit_exact(), None);
        // 3 bps does not divide the picosecond grid either.
        assert_eq!(BitRate(3).ps_per_bit_exact(), None);
        assert_eq!(BitRate(0).ps_per_bit_exact(), None);
        // 1 bps divides evenly but would overflow the multiply.
        assert_eq!(BitRate(1).ps_per_bit_exact(), None);
    }

    #[test]
    fn bytes_in_roundtrips_serialize_time() {
        let r = BitRate::from_gbps(100);
        for bytes in [1u64, 64, 1500, 4096, 65536, 1 << 20] {
            let t = r.serialize_time(bytes);
            assert_eq!(r.bytes_in(t), bytes);
        }
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_us(10);
        let t1 = t0 + SimDuration::from_ns(500);
        assert_eq!(t1.as_ps(), 10_500_000);
        assert_eq!((t1 - t0).as_ns_f64(), 500.0);
        assert_eq!(t1.since(t0), SimDuration::from_ns(500));
    }

    #[test]
    fn saturating_since_clamps() {
        let t0 = SimTime::from_us(10);
        let t1 = SimTime::from_us(5);
        assert_eq!(t1.saturating_since(t0), SimDuration::ZERO);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_us(15).as_us_f64(), 15.0);
        assert_eq!(SimDuration::from_ms(2).as_secs_f64(), 0.002);
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_ms(500));
        assert_eq!(SimDuration::from_us_f64(1.5), SimDuration::from_ns(1500));
    }

    #[test]
    fn rate_display_and_scale() {
        let r = BitRate::from_gbps(100);
        assert_eq!(format!("{r}"), "100.0Gbps");
        assert_eq!(r.mul_f64(0.8), BitRate::from_gbps(80));
    }
}
