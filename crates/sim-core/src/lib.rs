#![warn(missing_docs)]

//! Discrete-event simulation kernel used by the Aequitas reproduction.
//!
//! This crate provides the three primitives every simulation layer builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — simulated time in integer picoseconds, so
//!   that per-byte serialization times at datacenter link rates are exact and
//!   the event queue never suffers floating-point drift.
//! * [`EventQueue`] — a deterministic future-event list with stable FIFO
//!   tie-breaking for events scheduled at the same instant.
//! * [`SimRng`] — a seedable random number generator with the distribution
//!   helpers the workload generators need (exponential inter-arrivals,
//!   Bernoulli trials, log-normal samples).
//!
//! Everything is deterministic: running the same experiment with the same
//! seed produces bit-identical results.

pub mod arena;
pub mod event;
pub mod rng;
pub mod time;

pub use arena::{Slab, SlotId, VecPool};
pub use event::{EventQueue, QueueKind, ScheduledEvent};
pub use rng::SimRng;
pub use time::{BitRate, SimDuration, SimTime};
