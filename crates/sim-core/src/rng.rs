//! Deterministic random number generation for simulations.
//!
//! Implements the generator in-crate (xoshiro256** seeded via splitmix64)
//! so the workspace has no external RNG dependency and the stream is fully
//! specified by this file: the same seed always yields the same stream, on
//! every platform and toolchain. Log-normal and exponential sampling are
//! implemented directly (inverse transform / Box-Muller).

use crate::time::SimDuration;

/// A deterministic, seedable RNG with simulation-oriented helpers.
///
/// The core generator is xoshiro256** (Blackman & Vigna), whose 256-bit
/// state is expanded from the 64-bit seed with splitmix64 — the standard
/// seeding recipe, which guarantees a non-zero state and decorrelates
/// consecutive seeds.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a 64-bit seed. The same seed always yields the same
    /// stream.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Derive an independent child generator; useful for giving each host its
    /// own stream so that adding hosts does not perturb existing ones.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64();
        SimRng::new(s ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform_range needs lo < hi");
        let span = hi - lo;
        // Widening-multiply range reduction (Lemire); the modulo bias is
        // below 2^-64 per draw, far under anything the simulations resolve.
        lo + (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.uniform() < p
    }

    /// Exponentially distributed value with the given `mean` (inverse
    /// transform sampling).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Avoid ln(0): u in (0, 1].
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// Exponentially distributed duration with the given mean; the Poisson
    /// inter-arrival primitive.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        let v = self.exponential(mean.as_ps() as f64);
        SimDuration::from_ps(v.max(0.0).round() as u64)
    }

    /// Standard normal sample via Box-Muller.
    pub fn std_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.uniform(); // (0, 1]
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal sample with the given parameters of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.std_normal()).exp()
    }

    /// Pick an index in `0..weights.len()` proportionally to `weights`.
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index needs a positive total weight");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn zero_seed_is_usable() {
        // splitmix64 expansion guarantees a non-degenerate state even for
        // seed 0 (all-zero state would be a xoshiro fixed point).
        let mut rng = SimRng::new(0);
        assert_ne!(rng.s, [0; 4]);
        let distinct: std::collections::HashSet<u64> = (0..64).map(|_| rng.next_u64()).collect();
        assert!(distinct.len() > 60);
    }

    #[test]
    fn uniform_range_stays_in_bounds() {
        let mut rng = SimRng::new(17);
        for _ in 0..10_000 {
            let v = rng.uniform_range(10, 17);
            assert!((10..17).contains(&v));
        }
        // Degenerate one-wide range.
        assert_eq!(rng.uniform_range(5, 6), 5);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(7);
        let n = 200_000;
        let mean = 5_000.0;
        let total: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let emp = total / n as f64;
        assert!(
            (emp - mean).abs() / mean < 0.02,
            "empirical mean {emp} too far from {mean}"
        );
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::new(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let f = hits as f64 / n as f64;
        assert!((f - 0.3).abs() < 0.01, "frequency {f}");
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(0.0));
    }

    #[test]
    fn log_normal_median() {
        let mut rng = SimRng::new(11);
        let n = 100_001;
        let mut v: Vec<f64> = (0..n).map(|_| rng.log_normal(2.0, 1.0)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[n / 2];
        // Median of lognormal(mu, sigma) is e^mu.
        let expect = 2.0f64.exp();
        assert!(
            (median - expect).abs() / expect < 0.05,
            "median {median} vs {expect}"
        );
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(13);
        let w = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        let f1 = counts[1] as f64 / 100_000.0;
        let f2 = counts[2] as f64 / 100_000.0;
        assert!((f1 - 0.3).abs() < 0.02);
        assert!((f2 - 0.6).abs() < 0.02);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(5);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let matches = (0..64).filter(|_| a.uniform() == b.uniform()).count();
        assert!(matches < 4);
    }

    #[test]
    fn exp_duration_rounds_to_ps() {
        let mut rng = SimRng::new(3);
        let d = rng.exp_duration(SimDuration::from_us(10));
        // Must be a valid nonzero-ish duration most of the time; just check it
        // stays in a plausible range.
        assert!(d.as_ps() < SimDuration::from_ms(10).as_ps());
    }
}
