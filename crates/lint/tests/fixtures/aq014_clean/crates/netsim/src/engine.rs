//! AQ014 clean golden: the same call shape as the true-positive fixture,
//! but every step is deterministic — no finding may be reported.

pub struct Engine {
    host: Host,
}

impl Engine {
    /// Same chain as the TP fixture, but the callee iterates a BTreeMap.
    pub fn dispatch(&mut self) {
        self.host.deliver();
    }

    /// Pure arithmetic on an explicit timestamp: no ambient clock.
    pub fn stamp(&mut self, now_ps: u64) -> u64 {
        now_ps + 1
    }
}
