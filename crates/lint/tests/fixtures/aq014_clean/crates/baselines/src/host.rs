//! AQ014 clean golden: ordered-map iteration is deterministic.

use std::collections::BTreeMap;

pub struct Host {
    flows: BTreeMap<u64, u64>,
}

impl Host {
    pub fn deliver(&mut self) {
        self.pick_next();
    }

    /// BTreeMap iteration order is the key order: deterministic.
    fn pick_next(&mut self) -> Option<u64> {
        self.flows.iter().next().map(|(&k, _)| k)
    }
}
