//! AQ016 clean golden: domain code on ordered single-threaded state, plus
//! an *unreachable* function whose lock usage must not be reported —
//! the pass is reachability-based, not a per-line grep.

use std::collections::BTreeMap;

/// Reachable from `Engine::run_until`; touches only its own state.
pub fn step_domain() {
    let mut q: BTreeMap<u64, u64> = BTreeMap::new();
    q.insert(1, 2);
}

/// Never called from the window: lock usage here is out of scope.
pub fn offline_tool() {
    let m = std::sync::Mutex::new(0u64);
    let _ = m.lock();
}
