//! AQ016 clean golden: the same entry point, deterministic window body.

pub struct Engine;

impl Engine {
    pub fn run_until(&mut self) {
        step_domain();
    }
}
