//! AQ017 clean golden: the CLI entry point may panic on bad invocations.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let first = args.first().unwrap();
    drop(first);
}
