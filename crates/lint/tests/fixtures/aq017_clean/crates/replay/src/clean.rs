//! AQ017 clean golden: library code that propagates instead of panicking,
//! and a test module where unwrap is sanctioned.

pub fn first_event(v: &[u64]) -> Option<u64> {
    v.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first_event(&[1]).unwrap(), 1);
    }
}
