//! AQ015 true-positive golden: cross-function unit mixing — the caller
//! passes bytes into a parameter that expects bits.

/// Expects a length in bits.
pub fn record_len(len_bits: u64) -> u64 {
    len_bits * 2
}

/// Passes bytes where bits are expected.
pub fn caller() -> u64 {
    let frame_bytes = 128u64;
    record_len(frame_bytes)
}
