//! AQ015 true-positive golden: intra-function unit mixing.

/// Adds picoseconds to nanoseconds without converting.
pub fn total_delay(queue_ps: u64, budget_ns: u64) -> u64 {
    queue_ps + budget_ns
}
