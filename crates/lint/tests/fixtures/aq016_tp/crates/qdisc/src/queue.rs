//! AQ016 true-positive golden: domain code touching shared state.

use std::sync::Mutex;

/// Reachable from `Engine::run_until`, but holds a lock: two violations
/// (the `Mutex` primitive and the `.lock()` call).
pub fn step_domain() {
    let shared = Mutex::new(0u64);
    let guard = shared.lock();
    drop(guard);
}
