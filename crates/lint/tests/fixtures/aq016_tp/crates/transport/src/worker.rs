//! AQ016 true-positive golden: domain code spawning a thread.

/// Reachable from `Engine::run_until`, but creates a thread.
pub fn sync_ports() {
    std::thread::spawn(|| {});
}
