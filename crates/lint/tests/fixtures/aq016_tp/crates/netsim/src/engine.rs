//! AQ016 true-positive golden: the domain window entry point.

pub struct Engine;

impl Engine {
    /// Everything reachable from here runs inside a domain window.
    pub fn run_until(&mut self) {
        step_domain();
        sync_ports();
    }
}
