//! AQ017 true-positive golden: unwrap in replay library code.

/// Library code must not panic on malformed traces.
pub fn first_event(v: &[u64]) -> u64 {
    *v.first().unwrap()
}
