//! AQ017 true-positive golden: expect in replay library code.

/// `.expect()` is a panic too.
pub fn qos_share(total: u64, part: u64) -> f64 {
    u32::try_from(part).expect("fits") as f64 / total as f64
}
