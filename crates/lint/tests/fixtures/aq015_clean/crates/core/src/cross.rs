//! AQ015 clean golden: the caller passes bits into a bits parameter.

/// Expects a length in bits.
pub fn record_len(len_bits: u64) -> u64 {
    len_bits * 2
}

/// Passes bits where bits are expected.
pub fn caller() -> u64 {
    let frame_bits = 128u64;
    record_len(frame_bits)
}
