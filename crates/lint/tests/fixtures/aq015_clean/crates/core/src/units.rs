//! AQ015 clean golden: consistent units on both sides of every operator.

/// Same unit on both sides: fine.
pub fn total_delay(queue_ps: u64, budget_ps: u64) -> u64 {
    queue_ps + budget_ps
}

/// Bytes plus bytes: fine.
pub fn frame_total(len_bytes: u64, pad_bytes: u64) -> u64 {
    len_bytes + pad_bytes
}

/// A conversion function names both units; its identifier is unit-opaque
/// by design, so dividing by a plain literal is fine.
pub fn ps_to_ns(stamp_ps: u64) -> u64 {
    stamp_ps / 1000
}
