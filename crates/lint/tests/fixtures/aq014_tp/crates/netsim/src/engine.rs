//! AQ014 true-positive golden: hot engine code reaching nondeterminism.
//!
//! `dispatch` is the cross-function case: the source is two hops away in
//! a non-hot crate (dispatch -> deliver -> pick_next). `stamp` is the
//! local case: the source sits directly in hot code.

use std::time::Instant;

pub struct Engine {
    host: Host,
}

impl Engine {
    /// Hot sink: taint enters from a non-hot callee two hops away.
    pub fn dispatch(&mut self) {
        self.host.deliver();
    }

    /// Hot sink with a local nondeterminism source.
    pub fn stamp(&mut self) -> u128 {
        Instant::now().elapsed().as_nanos()
    }
}
