//! AQ014 true-positive golden: the nondeterminism source lives here, in a
//! non-hot crate; only the hot caller in netsim should be reported.

use std::collections::HashMap;

pub struct Host {
    flows: HashMap<u64, u64>,
}

impl Host {
    /// Mid hop: no source of its own, just forwards the taint.
    pub fn deliver(&mut self) {
        self.pick_next();
    }

    /// The source: map iteration order decides which flow is served.
    fn pick_next(&mut self) -> Option<u64> {
        self.flows.iter().next().map(|(&k, _)| k)
    }
}
