//! Fixture-corpus tests for the dataflow passes (AQ014–AQ016) and the
//! replay panic rule (AQ017), plus a self-lint test over the real
//! workspace.
//!
//! Each fixture directory under `tests/fixtures/` is a miniature
//! workspace mirroring the real crate layout (the passes scope sinks and
//! domains by path). True-positive goldens must produce exactly the
//! expected findings; clean goldens must produce none. Fixtures are
//! excluded from first-party linting by the `fixtures` directory skip in
//! [`aequitas_lint::collect_rs_files`].

use aequitas_lint::config::Config;
use aequitas_lint::rules::{Finding, RULES};
use aequitas_lint::run_analysis;
use std::path::{Path, PathBuf};

/// Config with every rule except `rule` disabled, so a fixture exercises
/// exactly the pass under test (TP fixtures for the dataflow rules would
/// otherwise also trip the per-line token rules, e.g. AQ001/AQ008).
fn only(rule: &str) -> Config {
    let mut toml = String::new();
    for r in RULES {
        if r.id != rule {
            toml.push_str(&format!("[{}]\nenabled = false\n", r.id));
        }
    }
    Config::parse(&toml).expect("generated config parses")
}

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str, rule: &str) -> Vec<Finding> {
    let findings = run_analysis(&fixture_root(name), &only(rule)).expect("analysis runs");
    for f in &findings {
        assert_eq!(f.rule, rule, "unexpected rule in {name}: {f:?}");
    }
    findings
}

#[test]
fn aq014_detects_cross_function_taint_chain() {
    let f = run("aq014_tp", "AQ014");
    assert_eq!(f.len(), 2, "{f:#?}");
    // The cross-function case: sink in the hot caller, source two hops
    // down in a non-hot crate. Reported at the hot boundary with the
    // full chain in the message.
    let cross = f
        .iter()
        .find(|f| f.message.contains("deliver"))
        .expect("cross-function finding");
    assert_eq!(cross.path, "crates/netsim/src/engine.rs");
    assert!(
        cross.message.contains("pick_next")
            && cross.message.contains("crates/baselines/src/host.rs"),
        "chain should name the source hop: {}",
        cross.message
    );
    // The local case: Instant::now directly in hot code.
    let local = f
        .iter()
        .find(|f| f.message.contains("Instant"))
        .expect("local-source finding");
    assert_eq!(local.path, "crates/netsim/src/engine.rs");
}

#[test]
fn aq014_clean_golden_has_no_findings() {
    assert!(run("aq014_clean", "AQ014").is_empty());
}

#[test]
fn aq015_detects_unit_mixing() {
    let f = run("aq015_tp", "AQ015");
    assert_eq!(f.len(), 2, "{f:#?}");
    // Intra-function: ps + ns.
    assert!(
        f.iter()
            .any(|f| f.path == "crates/core/src/units.rs" && f.message.contains("ps")),
        "{f:#?}"
    );
    // Cross-function: bytes passed to a bits parameter.
    assert!(
        f.iter().any(|f| f.path == "crates/core/src/cross.rs"
            && f.message.contains("bytes")
            && f.message.contains("bits")),
        "{f:#?}"
    );
}

#[test]
fn aq015_clean_golden_has_no_findings() {
    assert!(run("aq015_clean", "AQ015").is_empty());
}

#[test]
fn aq016_detects_shared_state_in_domain_window() {
    let f = run("aq016_tp", "AQ016");
    assert_eq!(f.len(), 3, "{f:#?}");
    // Mutex primitive + .lock() call in qdisc.
    assert_eq!(
        f.iter()
            .filter(|f| f.path == "crates/qdisc/src/queue.rs")
            .count(),
        2,
        "{f:#?}"
    );
    // thread::spawn in transport.
    assert!(
        f.iter()
            .any(|f| f.path == "crates/transport/src/worker.rs" && f.message.contains("spawn")),
        "{f:#?}"
    );
    // All findings mention the reachability entry point.
    assert!(f.iter().all(|f| f.message.contains("run_until")));
}

#[test]
fn aq016_clean_golden_has_no_findings() {
    // Includes an unreachable function holding a lock: the pass is
    // reachability-based, so it must stay silent.
    assert!(run("aq016_clean", "AQ016").is_empty());
}

#[test]
fn aq017_detects_panics_in_replay_library_code() {
    let f = run("aq017_tp", "AQ017");
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(f.iter().any(|f| f.path == "crates/replay/src/parse.rs"));
    assert!(f.iter().any(|f| f.path == "crates/replay/src/report.rs"));
}

#[test]
fn aq017_clean_golden_has_no_findings() {
    // main.rs and #[cfg(test)] code may unwrap.
    assert!(run("aq017_clean", "AQ017").is_empty());
}

/// Self-lint: the real workspace, under its committed `lint.toml`, must
/// be finding-free — and the full analysis must stay well under the 10 s
/// budget the CI gate assumes.
#[test]
fn real_workspace_is_finding_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let cfg = Config::parse(
        &std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists"),
    )
    .expect("lint.toml parses");
    let (elapsed, findings) = criterion::time_once(|| run_analysis(&root, &cfg));
    let findings = findings.expect("analysis runs");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{findings:#?}"
    );
    assert!(
        elapsed.as_secs() < 10,
        "full-workspace lint took {elapsed:?}, budget is 10s"
    );
}
