//! `aequitas-lint` — first-party static analysis for the Aequitas workspace.
//!
//! Usage:
//! ```text
//! cargo run -p aequitas-lint            # human output, exit 1 on findings
//! cargo run -p aequitas-lint -- --json  # machine output (stable ordering)
//! cargo run -p aequitas-lint -- --rules # list rule IDs and rationale
//! ```
//!
//! Configuration lives in `lint.toml` at the workspace root; see the
//! "Correctness tooling" section of DESIGN.md for the rule catalogue.

mod config;
mod lexer;
mod rules;

use config::Config;
use rules::Finding;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--rules" => list_rules = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "aequitas-lint [--json] [--rules] [--root DIR] [--config FILE]\n\
                     Domain static analysis for the Aequitas workspace (rules AQ001..AQ012)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("aequitas-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for r in rules::RULES {
            println!("{}  {:<28} {}", r.id, r.name, r.desc);
        }
        return ExitCode::SUCCESS;
    }

    // Default root: the workspace this binary was compiled in.
    let root = root.unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/lint always sits two levels under the workspace root")
            .to_path_buf()
    });
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));

    let cfg = match std::fs::read_to_string(&config_path) {
        Ok(src) => match Config::parse(&src) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("aequitas-lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!(
                "aequitas-lint: cannot read {}: {e}",
                config_path.display()
            );
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    collect_rs_files(&root, &root, &mut files);
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    for rel in &files {
        let abs = root.join(rel);
        let src = match std::fs::read_to_string(&abs) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("aequitas-lint: cannot read {}: {e}", abs.display());
                return ExitCode::from(2);
            }
        };
        let toks = lexer::tokenize(&src);
        rules::check_file(&cfg, rel, &toks, &mut findings);
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });

    if json {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{} {}:{}:{} {}", f.rule, f.path, f.line, f.col, f.message);
        }
        if findings.is_empty() {
            eprintln!(
                "aequitas-lint: clean ({} files, {} rules)",
                files.len(),
                rules::RULES.len()
            );
        } else {
            eprintln!("aequitas-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Recursively collect workspace-relative `/`-separated paths of `.rs`
/// files, skipping build output and VCS metadata.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
}

/// Serialize findings as a JSON array. Hand-rolled: the workspace is
/// registry-free, and the schema is four scalars and a string.
fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            f.rule,
            esc(&f.path),
            f.line,
            f.col,
            esc(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_snapshot() {
        let findings = vec![
            Finding {
                rule: "AQ001",
                path: "crates/netsim/src/engine.rs".into(),
                line: 12,
                col: 9,
                message: "wall-clock type `Instant` on a simulation path".into(),
            },
            Finding {
                rule: "AQ004",
                path: "crates/core/src/controller.rs".into(),
                line: 266,
                col: 20,
                message: "exact float comparison; say \"why\"".into(),
            },
        ];
        let got = to_json(&findings);
        let want = r#"[
  {"rule":"AQ001","path":"crates/netsim/src/engine.rs","line":12,"col":9,"message":"wall-clock type `Instant` on a simulation path"},
  {"rule":"AQ004","path":"crates/core/src/controller.rs","line":266,"col":20,"message":"exact float comparison; say \"why\""}
]"#;
        assert_eq!(got, want);
    }

    #[test]
    fn json_empty_is_bare_brackets() {
        assert_eq!(to_json(&[]), "[]");
    }

    #[test]
    fn rule_ids_are_stable_and_sorted() {
        let ids: Vec<&str> = rules::RULES.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "rule IDs must stay in order");
        assert!(ids.len() >= 8, "the lint must keep at least 8 active rules");
        assert!(ids.iter().all(|i| i.starts_with("AQ") && i.len() == 5));
    }
}
