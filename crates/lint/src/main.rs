//! `aequitas-lint` — first-party static analysis for the Aequitas workspace.
//!
//! Usage:
//! ```text
//! cargo run -p aequitas-lint                    # human output, exit 1 on findings
//! cargo run -p aequitas-lint -- --json          # machine output (stable ordering)
//! cargo run -p aequitas-lint -- --sarif         # SARIF 2.1.0 log
//! cargo run -p aequitas-lint -- --rules         # list rule IDs and rationale
//! cargo run -p aequitas-lint -- --debt          # suppression-debt report
//! cargo run -p aequitas-lint -- --debt-gate     # fail if debt exceeds lint-debt.toml
//! cargo run -p aequitas-lint -- --debt-baseline # rewrite lint-debt.toml
//! ```
//!
//! Configuration lives in `lint.toml` at the workspace root; see the
//! "Correctness tooling" section of DESIGN.md for the rule catalogue and
//! the dataflow model behind AQ014–AQ016. All analysis logic lives in the
//! library (`aequitas_lint`); this binary is argument parsing and I/O.

use aequitas_lint::config::Config;
use aequitas_lint::debt::Debt;
use aequitas_lint::{load_workspace_files, run_analysis, rules, sarif};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

enum Output {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut output = Output::Human;
    let mut list_rules = false;
    let mut debt_report = false;
    let mut debt_gate = false;
    let mut debt_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => output = Output::Json,
            "--sarif" => output = Output::Sarif,
            "--rules" => list_rules = true,
            "--debt" => debt_report = true,
            "--debt-gate" => debt_gate = true,
            "--debt-baseline" => debt_baseline = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "aequitas-lint [--json|--sarif] [--rules] [--debt|--debt-gate|--debt-baseline] [--root DIR] [--config FILE]\n\
                     Domain static analysis for the Aequitas workspace: token rules\n\
                     (AQ001..AQ013, AQ017) plus call-graph dataflow passes (AQ014..AQ016)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("aequitas-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for r in rules::RULES {
            println!("{}  {:<28} {}", r.id, r.name, r.desc);
        }
        return ExitCode::SUCCESS;
    }

    // Default root: the workspace this binary was compiled in.
    let root = root.unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/lint always sits two levels under the workspace root")
            .to_path_buf()
    });
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));

    let cfg = match std::fs::read_to_string(&config_path) {
        Ok(src) => match Config::parse(&src) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("aequitas-lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("aequitas-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    if debt_report || debt_gate || debt_baseline {
        let files = match load_workspace_files(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("aequitas-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let debt = Debt::collect(&files, &cfg);
        let baseline_path = root.join("lint-debt.toml");
        if debt_baseline {
            if let Err(e) = std::fs::write(&baseline_path, debt.to_toml()) {
                eprintln!("aequitas-lint: cannot write {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            eprintln!("aequitas-lint: wrote {}", baseline_path.display());
            return ExitCode::SUCCESS;
        }
        if debt_report {
            print!("{}", debt.report());
        }
        if debt_gate {
            let baseline = match std::fs::read_to_string(&baseline_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!(
                        "aequitas-lint: cannot read {} (run --debt-baseline once): {e}",
                        baseline_path.display()
                    );
                    return ExitCode::from(2);
                }
            };
            match debt.gate(&baseline) {
                Ok(msg) => eprintln!("aequitas-lint: {msg}"),
                Err(msg) => {
                    eprintln!("aequitas-lint: {msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let findings = match run_analysis(&root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("aequitas-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match output {
        Output::Json => println!("{}", sarif::to_json(&findings)),
        Output::Sarif => println!("{}", sarif::to_sarif(&findings)),
        Output::Human => {
            for f in &findings {
                println!("{} {}:{}:{} {}", f.rule, f.path, f.line, f.col, f.message);
            }
            if findings.is_empty() {
                eprintln!("aequitas-lint: clean ({} rules)", rules::RULES.len());
            } else {
                eprintln!("aequitas-lint: {} finding(s)", findings.len());
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_stable_and_sorted() {
        let ids: Vec<&str> = rules::RULES.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "rule IDs must stay in order");
        assert!(ids.len() >= 8, "the lint must keep at least 8 active rules");
        assert!(ids.iter().all(|i| i.starts_with("AQ") && i.len() == 5));
    }
}
