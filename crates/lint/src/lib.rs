//! `aequitas-lint` as a library: lexer, parser, workspace index, and the
//! AQ rule set (token rules plus cross-function dataflow passes).
//!
//! The binary in `main.rs` is a thin CLI over [`run_analysis`]; the
//! fixture-corpus tests under `tests/` drive the same entry point against
//! miniature workspaces, and the self-lint test points it at the real
//! workspace root.
//!
//! Analysis happens in two layers:
//!
//! 1. **Token rules** (AQ001–AQ013, AQ017): per-file pattern checks over
//!    the lexer's token stream ([`rules`]).
//! 2. **Dataflow passes** (AQ014–AQ016): a lightweight AST ([`ast`]) is
//!    parsed for every file, a workspace-wide symbol table and call graph
//!    is assembled ([`workspace`]), and taint/unit/isolation facts are
//!    propagated across function boundaries ([`dataflow`]).

pub mod ast;
pub mod config;
pub mod dataflow;
pub mod debt;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod workspace;

use config::{glob_match, Config};
use rules::Finding;
use std::path::{Path, PathBuf};

/// Recursively collect workspace-relative `/`-separated paths of `.rs`
/// files, skipping build output, VCS metadata, and the lint fixture corpus
/// (deliberately-broken golden files that must never be linted as
/// first-party code).
pub fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
}

/// One parsed source file, shared between the token rules and the
/// workspace index so each file is read and lexed exactly once.
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// The full token stream (comments included).
    pub toks: Vec<lexer::Tok>,
}

/// Load every `.rs` file under `root` (minus `target/`, dotdirs, and
/// fixture corpora), sorted by path for deterministic output.
pub fn load_workspace_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut rels = Vec::new();
    collect_rs_files(root, root, &mut rels);
    rels.sort();
    let mut files = Vec::with_capacity(rels.len());
    for rel in rels {
        let abs: PathBuf = root.join(&rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let toks = lexer::tokenize(&src);
        files.push(SourceFile { rel, toks });
    }
    Ok(files)
}

/// Run the full analysis (token rules + dataflow passes) over `root`,
/// returning findings sorted by (path, line, col, rule).
pub fn run_analysis(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    let files = load_workspace_files(root)?;
    let mut findings: Vec<Finding> = Vec::new();

    // Layer 1: per-file token rules.
    for f in &files {
        if cfg.global_allow.iter().any(|g| glob_match(g, &f.rel)) {
            continue;
        }
        rules::check_file(cfg, &f.rel, &f.toks, &mut findings);
    }

    // Layer 2: workspace dataflow passes over the parsed AST.
    let ws = workspace::Workspace::build(&files, cfg);
    dataflow::run_passes(&ws, cfg, &mut findings);

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(findings)
}
