//! Output serializers: plain `--json` and SARIF 2.1.0 (`--sarif`).
//!
//! SARIF is the interchange format code-scanning UIs ingest; emitting it
//! directly means CI can upload findings without a converter. Hand-rolled
//! like everything else here — the workspace is registry-free.

use crate::rules::{Finding, RULES};

/// Escape a string for a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Findings as a plain JSON array (the pre-existing `--json` format).
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            f.rule,
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

/// Findings as a single-run SARIF 2.1.0 log.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"aequitas-lint\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        s.push_str(&format!(
            "            {{\"id\": \"{}\", \"name\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            r.id,
            json_escape(r.name),
            json_escape(r.desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}{}\n",
            f.rule,
            json_escape(&f.message),
            json_escape(&f.path),
            f.line,
            f.col,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    s.push_str("      ]\n    }\n  ]\n}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "AQ014",
            path: "crates/netsim/src/engine.rs".into(),
            line: 7,
            col: 3,
            message: "taint \"chain\"".into(),
        }]
    }

    #[test]
    fn json_snapshot() {
        let findings = vec![
            Finding {
                rule: "AQ001",
                path: "crates/netsim/src/engine.rs".into(),
                line: 12,
                col: 9,
                message: "wall-clock type `Instant` on a simulation path".into(),
            },
            Finding {
                rule: "AQ004",
                path: "crates/core/src/controller.rs".into(),
                line: 266,
                col: 20,
                message: "exact float comparison; say \"why\"".into(),
            },
        ];
        let want = r#"[
  {"rule":"AQ001","path":"crates/netsim/src/engine.rs","line":12,"col":9,"message":"wall-clock type `Instant` on a simulation path"},
  {"rule":"AQ004","path":"crates/core/src/controller.rs","line":266,"col":20,"message":"exact float comparison; say \"why\""}
]"#;
        assert_eq!(to_json(&findings), want);
        assert_eq!(to_json(&[]), "[]");
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let s = to_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"id\": \"AQ001\""));
        assert!(s.contains("\"id\": \"AQ017\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("\"uri\": \"crates/netsim/src/engine.rs\""));
    }
}
