//! `lint.toml` loading.
//!
//! The workspace is registry-free, so we cannot pull in a TOML crate; we
//! parse the small subset the config actually uses: `[section]` headers,
//! `key = "string"`, `key = true|false`, and `key = ["a", "b"]` arrays
//! (single-line), with `#` comments. Anything else is a hard error — a
//! config typo must fail loudly, not silently disable a rule.

use std::collections::BTreeMap;

/// Per-rule configuration.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// `false` disables the rule entirely.
    pub enabled: bool,
    /// Path globs (relative to workspace root, `/`-separated) the rule
    /// skips. `*` matches within a component, `**` matches across them.
    pub allow: Vec<String>,
}

/// The whole lint configuration: rule id -> config.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Globs skipped by every rule (e.g. generated code).
    pub global_allow: Vec<String>,
    rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Look up a rule; unknown rules default to enabled with no allowlist,
    /// so a new rule is live before `lint.toml` mentions it.
    pub fn rule(&self, id: &str) -> RuleConfig {
        self.rules.get(id).cloned().unwrap_or(RuleConfig {
            enabled: true,
            allow: Vec::new(),
        })
    }

    /// All explicitly-configured rules (for the suppression-debt report).
    pub fn configured_rules(&self) -> impl Iterator<Item = (&str, &RuleConfig)> {
        self.rules.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Parse the TOML subset described in the module docs.
    pub fn parse(src: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section: Option<String> = None;
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("lint.toml:{lineno}: unterminated section header"))?
                    .trim()
                    .to_string();
                if name.is_empty() {
                    return Err(format!("lint.toml:{lineno}: empty section name"));
                }
                if name != "global" {
                    cfg.rules.entry(name.clone()).or_insert(RuleConfig {
                        enabled: true,
                        allow: Vec::new(),
                    });
                }
                section = Some(name);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{lineno}: expected `key = value`"))?;
            let key = key.trim();
            let value = value.trim();
            let sec = section
                .as_deref()
                .ok_or_else(|| format!("lint.toml:{lineno}: key outside any [section]"))?;
            match (sec, key) {
                ("global", "allow") => {
                    cfg.global_allow = parse_string_array(value)
                        .map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
                }
                (_, "enabled") => {
                    let v = match value {
                        "true" => true,
                        "false" => false,
                        _ => {
                            return Err(format!(
                                "lint.toml:{lineno}: `enabled` must be true or false"
                            ))
                        }
                    };
                    cfg.rules
                        .get_mut(sec)
                        .ok_or_else(|| format!("lint.toml:{lineno}: key in [global]?"))?
                        .enabled = v;
                }
                (_, "allow") => {
                    let v = parse_string_array(value)
                        .map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
                    cfg.rules
                        .get_mut(sec)
                        .ok_or_else(|| format!("lint.toml:{lineno}: key in [global]?"))?
                        .allow = v;
                }
                _ => {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown key `{key}` in [{sec}]"
                    ));
                }
            }
        }
        Ok(cfg)
    }
}

/// Strip a `#` comment, respecting `"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Parse `["a", "b"]` (or a bare `"a"` for a one-element list).
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(s) = parse_string(value) {
        return Ok(vec![s]);
    }
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected string or [array], got `{value}`"))?;
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part).ok_or_else(|| format!("expected string, got `{part}`"))?);
    }
    Ok(out)
}

fn parse_string(value: &str) -> Option<String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|v| v.to_string())
}

fn split_top_level(s: &str) -> Vec<&str> {
    // Commas inside strings do not split.
    let mut parts = Vec::new();
    let b = s.as_bytes();
    let (mut start, mut in_str, mut i) = (0usize, false, 0usize);
    while i < b.len() {
        match b[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&s[start..]);
    parts
}

/// Match `path` (workspace-relative, `/`-separated) against `pat`.
/// `**` crosses `/`; `*` stays within one component.
pub fn glob_match(pat: &str, path: &str) -> bool {
    fn comps(s: &str) -> Vec<&str> {
        s.split('/').filter(|c| !c.is_empty()).collect()
    }
    fn comp_match(pat: &str, s: &str) -> bool {
        // Within-component `*` wildcard.
        let parts: Vec<&str> = pat.split('*').collect();
        if parts.len() == 1 {
            return pat == s;
        }
        let mut rest = s;
        for (i, part) in parts.iter().enumerate() {
            if i == 0 {
                match rest.strip_prefix(part) {
                    Some(r) => rest = r,
                    None => return false,
                }
            } else if i == parts.len() - 1 {
                return rest.ends_with(part);
            } else if let Some(pos) = rest.find(part) {
                rest = &rest[pos + part.len()..];
            } else {
                return false;
            }
        }
        true
    }
    fn rec(pat: &[&str], path: &[&str]) -> bool {
        match (pat.first(), path.first()) {
            (None, None) => true,
            (Some(&"**"), _) => {
                // `**` eats zero or more leading components.
                rec(&pat[1..], path) || (!path.is_empty() && rec(pat, &path[1..]))
            }
            (Some(p), Some(c)) => comp_match(p, c) && rec(&pat[1..], &path[1..]),
            _ => false,
        }
    }
    rec(&comps(pat), &comps(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            r#"
# top comment
[global]
allow = ["vendor/**"]

[AQ001]
enabled = true
allow = ["crates/bench/**", "tests/wall.rs"] # trailing comment

[AQ009]
enabled = false
"#,
        )
        .unwrap();
        assert_eq!(cfg.global_allow, vec!["vendor/**"]);
        let r = cfg.rule("AQ001");
        assert!(r.enabled);
        assert_eq!(r.allow, vec!["crates/bench/**", "tests/wall.rs"]);
        assert!(!cfg.rule("AQ009").enabled);
        // Unknown rules default to enabled.
        assert!(cfg.rule("AQ999").enabled);
    }

    #[test]
    fn rejects_typos() {
        assert!(Config::parse("[AQ001]\nenable = true").is_err());
        assert!(Config::parse("allow = [\"x\"]").is_err());
        assert!(Config::parse("[AQ001]\nenabled = yes").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let cfg = Config::parse("[AQ001]\nallow = [\"a#b/**\"]").unwrap();
        assert_eq!(cfg.rule("AQ001").allow, vec!["a#b/**"]);
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("vendor/**", "vendor/proptest/src/lib.rs"));
        assert!(glob_match("**/*.rs", "crates/core/src/lib.rs"));
        assert!(glob_match("crates/*/src/lib.rs", "crates/core/src/lib.rs"));
        assert!(!glob_match("crates/*/lib.rs", "crates/core/src/lib.rs"));
        assert!(glob_match("tests/wall.rs", "tests/wall.rs"));
        assert!(!glob_match("vendor/**", "crates/vendorish/lib.rs"));
        assert!(glob_match("**", "anything/at/all.rs"));
    }
}
