//! Cross-function dataflow passes (AQ014–AQ016).
//!
//! These run over the [`crate::workspace::Workspace`] call graph rather
//! than single token streams, so a nondeterminism source three calls below
//! a hot loop, or a `_ns` value handed to a `_ps` parameter in another
//! crate, is still a finding.
//!
//! - **AQ014 determinism taint** — sources (wall clock, ambient RNG,
//!   `HashMap`/`HashSet` iteration, pointer-address casts,
//!   `thread::current`) taint their containing function; taint propagates
//!   caller-ward over the reverse call graph; any tainted function in the
//!   engine/shard/quota hot region is reported with the full call chain.
//!   Findings are reported at the *boundary*: the hot function whose taint
//!   enters from outside the region (or holds the source itself), so one
//!   deep source yields one finding, not one per transitive hot caller.
//! - **AQ015 unit safety** — units (ps/ns/us time, bytes/bits data,
//!   raw-vs-per-MTU RNL) are inferred from identifier suffixes and
//!   conversion-accessor names; additive/comparison operators mixing units
//!   and call sites passing a value of one unit to a parameter named for
//!   another are findings. Identifiers naming *rates* (a time token and a
//!   data token together, e.g. `ps_per_bit`) and conversion helpers (two
//!   units of the same kind, e.g. `us_to_ps`) carry no single unit and are
//!   skipped.
//! - **AQ016 shard isolation** — everything reachable from
//!   `Engine::run_until` executes inside a sharded domain window
//!   concurrently with its siblings; such code must not touch shared-state
//!   primitives, spawn threads, or call the coordinator-only boundary API
//!   (`inject_arrival` / `take_outbox` / `domain_mut`). `ShardedEngine`
//!   itself *is* the sanctioned merge layer and is structurally exempt, as
//!   is `crates/telemetry` (per-domain handles; determinism is enforced by
//!   `tests/sharded_determinism.rs` and the PR 2 perturbation guard).
//!
//! Escapes mirror the token rules: a `det:` / `unit:` / `shard:`
//! justification comment on the finding line (or the comment block above)
//! suppresses it. Test functions are never reported.

use crate::ast::{CallKind, CallSite, FnDef, Operand};
use crate::config::{glob_match, Config};
use crate::rules::Finding;
use crate::workspace::Workspace;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Run AQ014–AQ016 over the workspace graph.
pub fn run_passes(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    let enabled = |id: &str, rel: &str| -> bool {
        let r = cfg.rule(id);
        r.enabled && !r.allow.iter().any(|g| glob_match(g, rel))
    };
    aq014_determinism_taint(ws, &enabled, out);
    aq015_unit_safety(ws, &enabled, out);
    aq016_shard_isolation(ws, &enabled, out);
}

// AQ014 — determinism taint ------------------------------------------------

/// Map-iteration methods whose order is the hash order.
const MAP_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Ambient-RNG constructors/helpers.
const RNG_SOURCES: &[&str] = &["thread_rng", "from_entropy", "os_rng", "getrandom", "random"];

/// The hot region AQ014 protects: the per-packet simulation path plus the
/// admission-control decision makers whose outputs feed every figure.
fn aq014_hot_sink(rel: &str) -> bool {
    rel.starts_with("crates/sim-core/src/")
        || rel.starts_with("crates/netsim/src/")
        || rel.starts_with("crates/qdisc/src/")
        || rel.starts_with("crates/transport/src/")
        || rel == "crates/core/src/quota.rs"
        || rel == "crates/core/src/controller.rs"
}

/// Why a function is tainted.
enum Taint {
    /// The function itself contains a source.
    Source { line: u32, col: u32, desc: String },
    /// A call in its body may invoke a tainted callee.
    ViaCall {
        callee: usize,
        line: u32,
        col: u32,
        callee_name: String,
    },
}

/// Nondeterminism sources syntactically present in `def`'s body, minus
/// `det:`-justified ones. `file` indexes `ws.files` for comment lookups.
fn taint_sources(ws: &Workspace, file: usize, id: usize, def: &FnDef) -> Vec<(u32, u32, String)> {
    let mut srcs: Vec<(u32, u32, String)> = Vec::new();
    // A receiver chain names a map when it is a local/param bound to one,
    // or `self.<field>` where the surrounding impl's struct declares that
    // field as a map. Deeper chains are unresolvable and assumed clean —
    // struct-qualification beats the global-name over-approximation that
    // misfired on every `Vec` field that shares a name with some map.
    let hashy = |chain: &[String]| -> bool {
        match chain {
            [name] => ws.fns[id].hashy_locals.contains(name),
            [head, field] if head == "self" => def
                .impl_ty
                .as_ref()
                .map(|ty| ws.hashy_fields.contains(&(ty.clone(), field.clone())))
                .unwrap_or(false),
            _ => false,
        }
    };
    for c in &def.body.calls {
        match &c.kind {
            CallKind::Qualified(q) if (q == "Instant" || q == "SystemTime") && c.name == "now" => {
                srcs.push((c.line, c.col, format!("wall-clock read `{q}::now()`")));
            }
            CallKind::Qualified(q) if q == "thread" && c.name == "current" => {
                srcs.push((c.line, c.col, "`thread::current()` identity read".into()));
            }
            _ if RNG_SOURCES.contains(&c.name.as_str()) => {
                srcs.push((c.line, c.col, format!("ambient RNG `{}()`", c.name)));
            }
            _ if c.name == "available_parallelism" => {
                srcs.push((
                    c.line,
                    c.col,
                    "`available_parallelism()` is host-dependent".into(),
                ));
            }
            CallKind::Method(recv)
                if MAP_ITER_METHODS.contains(&c.name.as_str()) && hashy(recv) =>
            {
                srcs.push((
                    c.line,
                    c.col,
                    format!(
                        "HashMap/HashSet iteration order (`{}.{}()`)",
                        recv.join("."),
                        c.name
                    ),
                ));
            }
            _ => {}
        }
    }
    for f in &def.body.for_iters {
        if !f.iter.last_is_call && hashy(&f.iter.chain) {
            srcs.push((
                f.line,
                f.col,
                format!(
                    "HashMap/HashSet iteration order (`for .. in {}`)",
                    f.iter.chain.join(".")
                ),
            ));
        }
    }
    for &(line, col) in &def.body.ptr_casts {
        srcs.push((line, col, "pointer-address cast (allocation-dependent)".into()));
    }
    for w in &def.body.watched {
        if w.name == "RandomState" {
            srcs.push((w.line, w.col, "`RandomState` seeds per-process hashing".into()));
        }
    }
    srcs.retain(|&(line, _, _)| !ws.justified(file, line, "det:"));
    srcs
}

fn aq014_determinism_taint(
    ws: &Workspace,
    enabled: &dyn Fn(&str, &str) -> bool,
    out: &mut Vec<Finding>,
) {
    // Seed: every function containing an unjustified source.
    let mut taint: BTreeMap<usize, Taint> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for id in 0..ws.fns.len() {
        let node = &ws.fns[id];
        if let Some(&(line, col, ref desc)) =
            taint_sources(ws, node.file, id, &node.def).first()
        {
            taint.insert(
                id,
                Taint::Source {
                    line,
                    col,
                    desc: desc.clone(),
                },
            );
            queue.push_back(id);
        }
    }

    // Propagate caller-ward to a fixed point (BFS; deterministic because
    // seeds and caller lists are in function-id order).
    while let Some(t) = queue.pop_front() {
        for &(caller, call_idx) in &ws.callers[t] {
            if taint.contains_key(&caller) {
                continue;
            }
            let site: &CallSite = &ws.fns[caller].def.body.calls[call_idx];
            taint.insert(
                caller,
                Taint::ViaCall {
                    callee: t,
                    line: site.line,
                    col: site.col,
                    callee_name: site.name.clone(),
                },
            );
            queue.push_back(caller);
        }
    }

    // Report at the boundary: hot functions whose taint is local or enters
    // from a non-hot callee. A hot fn tainted only via another hot fn is
    // covered by that fn's finding.
    for (&id, cause) in &taint {
        let node = &ws.fns[id];
        let rel = ws.path(id);
        if node.def.is_test || !aq014_hot_sink(rel) || !enabled("AQ014", rel) {
            continue;
        }
        match cause {
            Taint::Source { line, col, desc } => out.push(Finding {
                rule: "AQ014",
                path: rel.to_string(),
                line: *line,
                col: *col,
                message: format!(
                    "nondeterminism source in hot function `{}`: {desc}; fix it or justify with a `det:` comment",
                    ws.display(id)
                ),
            }),
            Taint::ViaCall {
                callee,
                line,
                col,
                callee_name,
            } => {
                if aq014_hot_sink(ws.path(*callee)) {
                    continue; // boundary finding lands on the callee
                }
                if ws.justified(node.file, *line, "det:") {
                    continue;
                }
                out.push(Finding {
                    rule: "AQ014",
                    path: rel.to_string(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "hot function `{}` calls `{callee_name}` which transitively reaches a nondeterminism source ({}); fix the source or justify with a `det:` comment",
                        ws.display(id),
                        taint_chain(ws, &taint, *callee),
                    ),
                });
            }
        }
    }
}

/// Render the taint chain from `start` down to its source, capped.
fn taint_chain(ws: &Workspace, taint: &BTreeMap<usize, Taint>, start: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut cur = start;
    for _ in 0..8 {
        parts.push(ws.display(cur));
        match taint.get(&cur) {
            Some(Taint::ViaCall { callee, .. }) => cur = *callee,
            Some(Taint::Source { line, desc, .. }) => {
                parts.push(format!("{desc} at {}:{line}", ws.path(cur)));
                return parts.join(" -> ");
            }
            None => break,
        }
    }
    parts.push("...".into());
    parts.join(" -> ")
}

// AQ015 — unit safety ------------------------------------------------------

/// A quantity's inferred dimension signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct UnitSig {
    /// `ps` / `ns` / `us`.
    time: Option<&'static str>,
    /// `bytes` / `bits`.
    data: Option<&'static str>,
    /// The name mentions RNL.
    rnl: bool,
    /// Normalized per MTU.
    per_mtu: bool,
}

/// Infer the unit of an identifier (or accessor-method name) from its
/// `_`-separated tokens. Returns `None` for unitless names, rates (time ×
/// data), and conversions (two units of the same kind).
fn unit_of_name(name: &str) -> Option<UnitSig> {
    let lower = name.to_ascii_lowercase();
    let mut time: Option<&'static str> = None;
    let mut data: Option<&'static str> = None;
    let mut time_conflict = false;
    let mut data_conflict = false;
    let mut rnl = false;
    let mut per_mtu = false;
    for tok in lower.split('_') {
        let t = match tok {
            "ps" => Some("ps"),
            "ns" => Some("ns"),
            "us" => Some("us"),
            _ => None,
        };
        if let Some(t) = t {
            if time.is_some() && time != Some(t) {
                time_conflict = true;
            }
            time = Some(t);
        }
        let d = match tok {
            "bytes" | "byte" => Some("bytes"),
            "bits" | "bit" => Some("bits"),
            _ => None,
        };
        if let Some(d) = d {
            if data.is_some() && data != Some(d) {
                data_conflict = true;
            }
            data = Some(d);
        }
        if tok == "rnl" {
            rnl = true;
        }
        if tok == "mtu" {
            per_mtu = true;
        }
    }
    // Conversions (`us_to_ps`, `bytes_to_bits`) and rates (`ps_per_bit`,
    // `bytes_per_us`) have no single unit.
    if time_conflict || data_conflict || (time.is_some() && data.is_some()) {
        return None;
    }
    if time.is_none() && data.is_none() && !rnl {
        return None;
    }
    Some(UnitSig {
        time,
        data,
        rnl,
        per_mtu,
    })
}

/// Infer the unit an operand's value carries.
fn unit_of_operand(op: &Operand) -> Option<UnitSig> {
    if op.literal {
        return None;
    }
    let last = op.last()?;
    if op.last_is_call {
        // Constructors consume a unit but *produce* an opaque newtype.
        if last.starts_with("from_") || last == "new" {
            return None;
        }
    }
    unit_of_name(last)
}

/// Describe a signature for messages (`ps`, `bytes`, `raw RNL`, `RNL/MTU`).
fn sig_desc(s: UnitSig) -> String {
    let mut parts: Vec<&str> = Vec::new();
    if let Some(t) = s.time {
        parts.push(t);
    }
    if let Some(d) = s.data {
        parts.push(d);
    }
    if s.rnl {
        parts.push(if s.per_mtu { "RNL-per-MTU" } else { "raw RNL" });
    } else if s.per_mtu {
        parts.push("per-MTU");
    }
    parts.join(" ")
}

/// Do two signatures clash?
fn units_clash(a: UnitSig, b: UnitSig) -> bool {
    if let (Some(ta), Some(tb)) = (a.time, b.time) {
        if ta != tb {
            return true;
        }
    }
    if let (Some(da), Some(db)) = (a.data, b.data) {
        if da != db {
            return true;
        }
    }
    // A pure-time quantity mixed with a pure-data quantity.
    if a.time.is_some() && a.data.is_none() && b.data.is_some() && b.time.is_none() {
        return true;
    }
    if b.time.is_some() && b.data.is_none() && a.data.is_some() && a.time.is_none() {
        return true;
    }
    // Raw RNL vs per-MTU-normalized RNL.
    if a.rnl && b.rnl && a.per_mtu != b.per_mtu {
        return true;
    }
    false
}

fn aq015_unit_safety(
    ws: &Workspace,
    enabled: &dyn Fn(&str, &str) -> bool,
    out: &mut Vec<Finding>,
) {
    for id in 0..ws.fns.len() {
        let node = &ws.fns[id];
        let rel = ws.path(id);
        if node.def.is_test || !enabled("AQ015", rel) {
            continue;
        }
        // Intra-function: additive/comparison operators mixing units.
        for b in &node.def.body.binops {
            let (Some(lu), Some(ru)) = (unit_of_operand(&b.lhs), unit_of_operand(&b.rhs)) else {
                continue;
            };
            if !units_clash(lu, ru) || ws.justified(node.file, b.line, "unit:") {
                continue;
            }
            out.push(Finding {
                rule: "AQ015",
                path: rel.to_string(),
                line: b.line,
                col: b.col,
                message: format!(
                    "`{}` mixes units: `{}` ({}) vs `{}` ({}); convert explicitly or justify with a `unit:` comment",
                    b.op,
                    b.lhs.chain.join("."),
                    sig_desc(lu),
                    b.rhs.chain.join("."),
                    sig_desc(ru),
                ),
            });
        }
        // Cross-function: argument unit vs callee parameter-name unit.
        for e in &node.callees {
            let site = &node.def.body.calls[e.call];
            let callee = &ws.fns[e.callee];
            // Only trust unambiguous resolutions: every same-call candidate
            // must agree on the param units, which holds trivially when the
            // edge set for this call has one target.
            if node
                .callees
                .iter()
                .filter(|e2| e2.call == e.call)
                .count()
                != 1
            {
                continue;
            }
            for (ai, arg) in site.args.iter().enumerate() {
                let Some(param) = callee.def.params.get(ai) else {
                    break;
                };
                let (Some(au), Some(pu)) = (unit_of_operand(arg), unit_of_name(&param.name))
                else {
                    continue;
                };
                if !units_clash(au, pu) || ws.justified(node.file, site.line, "unit:") {
                    continue;
                }
                out.push(Finding {
                    rule: "AQ015",
                    path: rel.to_string(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "passes `{}` ({}) to parameter `{}` ({}) of `{}`; convert explicitly or justify with a `unit:` comment",
                        arg.chain.join("."),
                        sig_desc(au),
                        param.name,
                        sig_desc(pu),
                        ws.display(e.callee),
                    ),
                });
            }
        }
    }
}

// AQ016 — shard isolation --------------------------------------------------

/// Crates whose code runs *inside* a domain window when reachable from
/// `Engine::run_until`. Telemetry is deliberately absent: domains own
/// per-domain handles and the determinism tests pin its behavior.
const DOMAIN_CRATES: &[&str] = &[
    "sim-core", "netsim", "qdisc", "transport", "rpc", "core", "faults", "workloads",
];

/// Method/atomic names that imply shared-state access.
const SHARED_STATE_CALLS: &[&str] = &[
    "lock",
    "try_lock",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Coordinator-only boundary-merge API on `Engine`.
const BOUNDARY_API: &[&str] = &["inject_arrival", "take_outbox", "domain_mut"];

fn in_domain_crate(rel: &str) -> bool {
    DOMAIN_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

fn aq016_shard_isolation(
    ws: &Workspace,
    enabled: &dyn Fn(&str, &str) -> bool,
    out: &mut Vec<Finding>,
) {
    // Entry points: Engine::run_until impls (the per-domain window body).
    let Some(entries) = ws
        .by_impl
        .get(&("Engine".to_string(), "run_until".to_string()))
    else {
        return;
    };
    let mut reachable: BTreeMap<usize, bool> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &e in entries {
        if !ws.fns[e].def.is_test && reachable.insert(e, true).is_none() {
            queue.push_back(e);
        }
    }
    while let Some(f) = queue.pop_front() {
        for e in &ws.fns[f].callees {
            // The coordinator is the sanctioned merge layer; edges into it
            // are name-collision artifacts, not window-body code.
            if ws.fns[e.callee].def.impl_ty.as_deref() == Some("ShardedEngine") {
                continue;
            }
            if reachable.insert(e.callee, true).is_none() {
                queue.push_back(e.callee);
            }
        }
    }

    for &id in reachable.keys() {
        let node = &ws.fns[id];
        let rel = ws.path(id);
        if node.def.is_test || !in_domain_crate(rel) || !enabled("AQ016", rel) {
            continue;
        }
        let fname = ws.display(id);
        let mut report = |line: u32, col: u32, what: String| {
            if ws.justified(node.file, line, "shard:") {
                return;
            }
            out.push(Finding {
                rule: "AQ016",
                path: rel.to_string(),
                line,
                col,
                message: format!(
                    "`{fname}` runs inside a sharded domain window (reachable from Engine::run_until) but {what}; route through the ShardedEngine boundary merge or justify with a `shard:` comment"
                ),
            });
        };
        for w in &node.def.body.watched {
            if w.name != "RandomState" {
                report(
                    w.line,
                    w.col,
                    format!("uses shared-state primitive `{}`", w.name),
                );
            }
        }
        for c in &node.def.body.calls {
            if matches!(c.kind, CallKind::Method(_))
                && SHARED_STATE_CALLS.contains(&c.name.as_str())
            {
                report(c.line, c.col, format!("calls `.{}()`", c.name));
            }
            if c.name == "spawn" || (c.kind == CallKind::Qualified("thread".into()) && c.name == "scope")
            {
                report(c.line, c.col, format!("creates threads via `{}`", c.name));
            }
            if BOUNDARY_API.contains(&c.name.as_str()) {
                report(
                    c.line,
                    c.col,
                    format!("calls coordinator-only boundary API `{}`", c.name),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_inference_from_suffixes() {
        assert_eq!(unit_of_name("deadline_ps").unwrap().time, Some("ps"));
        assert_eq!(unit_of_name("budget_ns").unwrap().time, Some("ns"));
        assert_eq!(unit_of_name("slo_us").unwrap().time, Some("us"));
        assert_eq!(unit_of_name("len_bytes").unwrap().data, Some("bytes"));
        assert_eq!(unit_of_name("wire_bits").unwrap().data, Some("bits"));
        assert!(unit_of_name("as_ns_f64").unwrap().time == Some("ns"));
        let rnl = unit_of_name("rnl_per_mtu").unwrap();
        assert!(rnl.rnl && rnl.per_mtu);
        let raw = unit_of_name("rnl_sum").unwrap();
        assert!(raw.rnl && !raw.per_mtu);
    }

    #[test]
    fn rates_and_conversions_have_no_unit() {
        assert!(unit_of_name("ps_per_bit").is_none());
        assert!(unit_of_name("bytes_per_us").is_none());
        assert!(unit_of_name("us_to_ps").is_none());
        assert!(unit_of_name("bytes_to_bits").is_none());
        assert!(unit_of_name("count").is_none());
    }

    #[test]
    fn clash_matrix() {
        let u = |n: &str| unit_of_name(n).unwrap();
        assert!(units_clash(u("a_ps"), u("b_ns")));
        assert!(units_clash(u("a_bytes"), u("b_bits")));
        assert!(units_clash(u("a_ps"), u("b_bytes")));
        assert!(units_clash(u("rnl_raw"), u("rnl_per_mtu")));
        assert!(!units_clash(u("a_ps"), u("b_ps")));
        assert!(!units_clash(u("a_bytes"), u("b_bytes")));
        assert!(!units_clash(u("rnl_per_mtu"), u("x_rnl_mtu_norm")));
    }
}
