//! A small Rust lexer — just enough to lint safely.
//!
//! The rules in this tool must never fire on text inside string literals,
//! raw strings, char literals, or comments ("`Instant` at which the event
//! fires" in a doc comment is not a wall-clock read). A full parser is
//! overkill and would drag in external dependencies; a lexer that
//! classifies every byte of the file into comment / string / code tokens is
//! enough, because every rule we enforce is expressible over the token
//! stream plus comment positions.
//!
//! Comments are kept as tokens (rules like AQ007 look for justification
//! comments); rules that only care about code iterate a filtered view.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including suffixed, hex, binary, octal).
    Int,
    /// Float literal (`1.0`, `1e9`, `2.5f64`, ...).
    Float,
    /// String, raw string, byte string, or char literal. Contents skipped.
    Str,
    /// `// ...` comment (incl. doc comments). Text includes the slashes.
    LineComment,
    /// `/* ... */` comment (nested supported). Text includes delimiters.
    BlockComment,
    /// A lifetime like `'a`.
    Lifetime,
    /// Any single punctuation byte (`+`, `#`, `(`, ...). Multi-char
    /// operators appear as consecutive punct tokens; rules that need `==`
    /// or `!=` match two adjacent puncts.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// The token text as it appears in the source.
    pub text: String,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

/// Tokenize `src`. Never fails: malformed input degenerates into punct
/// tokens, which at worst makes a rule miss — never false-fire inside a
/// string or comment, because those are recognized first.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // Advance a cursor over `n` bytes, updating line/col.
    fn advance(b: &[u8], start: usize, n: usize, line: &mut u32, col: &mut u32) {
        for &c in &b[start..start + n] {
            if c == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        }
    }

    while i < b.len() {
        let (l0, c0) = (line, col);
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            advance(b, i, 1, &mut line, &mut col);
            i += 1;
            continue;
        }
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let end = b[i..]
                .iter()
                .position(|&x| x == b'\n')
                .map(|p| i + p)
                .unwrap_or(b.len());
            push(&mut toks, TokKind::LineComment, &src[i..end], l0, c0);
            advance(b, i, end - i, &mut line, &mut col);
            i = end;
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            push(&mut toks, TokKind::BlockComment, &src[i..j], l0, c0);
            advance(b, i, j - i, &mut line, &mut col);
            i = j;
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."#, any number of #.
        if c == b'r' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r') {
            let r_at = if c == b'r' { i } else { i + 1 };
            let mut hashes = 0usize;
            let mut j = r_at + 1;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == b'"' {
                // Scan for closing quote followed by `hashes` hashes.
                j += 1;
                let closer_found = loop {
                    match b[j..].iter().position(|&x| x == b'"') {
                        Some(p) => {
                            let q = j + p;
                            if b[q + 1..].len() >= hashes
                                && b[q + 1..q + 1 + hashes].iter().all(|&x| x == b'#')
                            {
                                break Some(q + 1 + hashes);
                            }
                            j = q + 1;
                        }
                        None => break None,
                    }
                };
                let end = closer_found.unwrap_or(b.len());
                push(&mut toks, TokKind::Str, &src[i..end], l0, c0);
                advance(b, i, end - i, &mut line, &mut col);
                i = end;
                continue;
            }
            // Not a raw string ("r" identifier etc.) — fall through.
        }
        // Plain / byte strings.
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            let open = if c == b'"' { i } else { i + 1 };
            let mut j = open + 1;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            let end = j.min(b.len());
            push(&mut toks, TokKind::Str, &src[i..end], l0, c0);
            advance(b, i, end - i, &mut line, &mut col);
            i = end;
            continue;
        }
        // Char literal vs lifetime. A `'` starts a char literal if it closes
        // within a few bytes (`'a'`, `'\n'`, `'\u{1F600}'`); otherwise it is
        // a lifetime.
        if c == b'\'' {
            let mut j = i + 1;
            if j < b.len() && b[j] == b'\\' {
                // Escaped char literal: scan to closing quote.
                j += 2;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                let end = (j + 1).min(b.len());
                push(&mut toks, TokKind::Str, &src[i..end], l0, c0);
                advance(b, i, end - i, &mut line, &mut col);
                i = end;
                continue;
            }
            // 'x' (any single non-quote char then ').
            if j < b.len() && b[j] != b'\'' && j + 1 < b.len() && b[j + 1] == b'\'' {
                push(&mut toks, TokKind::Str, &src[i..j + 2], l0, c0);
                advance(b, i, j + 2 - i, &mut line, &mut col);
                i = j + 2;
                continue;
            }
            // Lifetime: ' then ident chars.
            let mut k = i + 1;
            while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                k += 1;
            }
            push(&mut toks, TokKind::Lifetime, &src[i..k], l0, c0);
            advance(b, i, k - i, &mut line, &mut col);
            i = k;
            continue;
        }
        // Numbers. A leading digit starts an int or float. `1.0` is a float;
        // `1.max(2)` is int + punct + ident (we only treat `.` as part of the
        // number when followed by a digit). Exponents (`1e9`) and type
        // suffixes are consumed.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            let mut is_float = false;
            // Hex/bin/oct prefix.
            if c == b'0' && j < b.len() && matches!(b[j], b'x' | b'b' | b'o') {
                j += 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
            } else {
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                    j += 1;
                }
                if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
                    is_float = true;
                    j += 1;
                    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                        j += 1;
                    }
                } else if j < b.len() && b[j] == b'.' {
                    // `1.` followed by non-digit non-ident: float like `1.`;
                    // followed by ident: method call on an int — stop here.
                    let next_is_ident = j + 1 < b.len()
                        && (b[j + 1].is_ascii_alphabetic() || b[j + 1] == b'_' || b[j + 1] == b'.');
                    if !next_is_ident {
                        is_float = true;
                        j += 1;
                    }
                }
                if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
                    let k = j + 1;
                    let k2 = if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
                        k + 1
                    } else {
                        k
                    };
                    if k2 < b.len() && b[k2].is_ascii_digit() {
                        is_float = true;
                        j = k2;
                        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                            j += 1;
                        }
                    }
                }
                // Type suffix (f64 marks a float; u64 etc. keep int).
                if j < b.len() && (b[j] == b'f' || b[j] == b'u' || b[j] == b'i') {
                    let start_sfx = j;
                    let mut k = j;
                    while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                        k += 1;
                    }
                    if b[start_sfx] == b'f' {
                        is_float = true;
                    }
                    j = k;
                }
            }
            let kind = if is_float { TokKind::Float } else { TokKind::Int };
            push(&mut toks, kind, &src[i..j], l0, c0);
            advance(b, i, j - i, &mut line, &mut col);
            i = j;
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            push(&mut toks, TokKind::Ident, &src[i..j], l0, c0);
            advance(b, i, j - i, &mut line, &mut col);
            i = j;
            continue;
        }
        // Everything else: one punct byte.
        push(&mut toks, TokKind::Punct, &src[i..i + 1], l0, c0);
        advance(b, i, 1, &mut line, &mut col);
        i += 1;
    }
    toks
}

fn push(toks: &mut Vec<Tok>, kind: TokKind, text: &str, line: u32, col: u32) {
    toks.push(Tok {
        kind,
        text: text.to_string(),
        line,
        col,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn skips_strings_and_comments() {
        let toks = kinds(r#"let x = "Instant::now()"; // Instant here too"#);
        assert!(toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .all(|(_, t)| t != "Instant"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::LineComment));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"a "quoted" Instant"#; let t = 1;"###;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .all(|(_, t)| t != "Instant" && t != "quoted"));
        // The trailing code after the raw string is still lexed.
        assert!(toks.iter().any(|(_, t)| t == "t"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Ident).count(),
            1
        );
        assert!(toks.iter().any(|(_, t)| t == "code"));
    }

    #[test]
    fn float_vs_int_vs_method_call() {
        let toks = kinds("1.0 2 3.5f64 1e9 7.max(2) 0x1F");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["1.0", "3.5f64", "1e9"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(ints, vec!["2", "7", "2", "0x1F"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = tokenize("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn doc_comment_code_blocks_are_comments() {
        // Rustdoc code fences live inside comments; the lexer must not see
        // their contents as code.
        let src = "//! ```\n//! q.dequeue().unwrap();\n//! ```\nfn real() {}";
        let toks = tokenize(src);
        assert!(toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .all(|t| t.text != "unwrap"));
    }
}
