//! A lightweight item/fn/expr AST over the [`crate::lexer`] token stream.
//!
//! This is not a full Rust parser — it recovers exactly the structure the
//! dataflow passes (AQ014–AQ016) need, and degrades gracefully on anything
//! it does not understand (unknown tokens are skipped, never mis-bound):
//!
//! - the **item tree**: functions (free, inherent, trait), with signatures
//!   (parameter names and type text, return type text), `impl`/`trait`
//!   targets, and `#[cfg(test)]` / `#[test]` scoping;
//! - **struct fields** with their type text (so `self.flows.iter()` can be
//!   traced back to a `HashMap` field);
//! - per-function **body events**: call sites (free / qualified / method,
//!   with receiver chains and simplified argument operands), `let`
//!   bindings, `for`-loop iteration targets, additive/comparison binary
//!   operators with their operand chains, pointer-address casts, and uses
//!   of watched concurrency primitives.
//!
//! Everything is positioned (1-based line/col) so findings point at real
//! source locations. The parser only ever walks forward or matches
//! brackets, so malformed input terminates.

use crate::lexer::{Tok, TokKind};

/// A parameter in a function signature.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`""` for destructuring patterns).
    pub name: String,
    /// Type text, space-joined tokens (e.g. `& mut HashMap < u64 , f64 >`).
    pub ty: String,
}

/// A simplified operand: the trailing simple chain of an expression.
///
/// `self.flows.iter()` → chain `["self", "flows", "iter"]` with
/// `last_is_call`; `dur_ps` → chain `["dur_ps"]`; `3.5` → `literal`.
/// Complex sub-expressions yield an empty chain.
#[derive(Debug, Clone, Default)]
pub struct Operand {
    /// The `.`/`::`-separated simple chain, outermost first.
    pub chain: Vec<String>,
    /// True when the last chain element is invoked with `(...)`.
    pub last_is_call: bool,
    /// True when the operand is a bare literal.
    pub literal: bool,
}

impl Operand {
    /// Last chain element, if any.
    pub fn last(&self) -> Option<&str> {
        self.chain.last().map(|s| s.as_str())
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(...)` — a free function call.
    Free,
    /// `Qual::foo(...)` — the immediate qualifier segment is recorded.
    Qualified(String),
    /// `recv.foo(...)` — the receiver chain (possibly empty) is recorded.
    Method(Vec<String>),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment).
    pub name: String,
    /// Free / qualified / method.
    pub kind: CallKind,
    /// Top-level argument operands (simplified; empty chain when complex).
    pub args: Vec<Operand>,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// 1-based column of the callee name token.
    pub col: u32,
}

/// A `let` binding.
#[derive(Debug, Clone)]
pub struct LetBind {
    /// Binding name (`""` for destructuring patterns).
    pub name: String,
    /// Declared type text, when annotated.
    pub ty: Option<String>,
    /// Simplified initializer operand (e.g. `HashMap::new()` →
    /// chain `["HashMap", "new"]`).
    pub init: Operand,
    /// 1-based line of the `let`.
    pub line: u32,
}

/// A `for <pat> in <expr>` loop's iteration target.
#[derive(Debug, Clone)]
pub struct ForIter {
    /// Simplified iterated operand.
    pub iter: Operand,
    /// 1-based line of the `for`.
    pub line: u32,
    /// 1-based column of the `for`.
    pub col: u32,
}

/// A binary operator with simplified operands. Only additive and
/// comparison operators are recorded (multiplicative operators legally mix
/// units; assignments and logical operators carry no unit information).
#[derive(Debug, Clone)]
pub struct BinOp {
    /// Operator text: `+ - += -= < > <= >= == !=`.
    pub op: &'static str,
    /// Left operand.
    pub lhs: Operand,
    /// Right operand.
    pub rhs: Operand,
    /// 1-based line of the operator.
    pub line: u32,
    /// 1-based column of the operator.
    pub col: u32,
}

/// A watched identifier use (concurrency/shared-state primitives and
/// ambient-nondeterminism types the dataflow passes care about).
#[derive(Debug, Clone)]
pub struct WatchedIdent {
    /// The identifier text.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Everything extracted from one function body.
#[derive(Debug, Clone, Default)]
pub struct Body {
    /// Call sites in source order.
    pub calls: Vec<CallSite>,
    /// `let` bindings.
    pub lets: Vec<LetBind>,
    /// `for`-loop iteration targets.
    pub for_iters: Vec<ForIter>,
    /// Additive/comparison binary operators.
    pub binops: Vec<BinOp>,
    /// `as *const` / `as *mut` cast sites (pointer-address observation).
    pub ptr_casts: Vec<(u32, u32)>,
    /// Watched identifier uses.
    pub watched: Vec<WatchedIdent>,
}

/// A parsed function (free function, inherent/trait method, or default
/// trait method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// `impl`/`trait` target type name, when inside one.
    pub impl_ty: Option<String>,
    /// True for methods taking any `self` form.
    pub has_self: bool,
    /// Parameters (excluding `self`).
    pub params: Vec<Param>,
    /// Return type text, when declared.
    pub ret: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// True when the function is test code (`#[cfg(test)]` mod, `#[test]`
    /// attribute, or a whole-file test).
    pub is_test: bool,
    /// Extracted body events (empty for bodyless trait declarations).
    pub body: Body,
}

/// A struct field declaration.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Owning struct name.
    pub struct_name: String,
    /// Field name.
    pub name: String,
    /// Type text, space-joined tokens.
    pub ty: String,
}

/// The parsed view of one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// All functions, in source order.
    pub fns: Vec<FnDef>,
    /// All struct fields.
    pub fields: Vec<FieldDecl>,
}

/// Keywords that look like call names when followed by `(`.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "loop", "in", "as", "move", "let", "break",
    "continue", "where", "impl", "dyn", "ref", "mut", "box", "await", "yield",
];

/// Identifiers the dataflow passes watch for (shared-state primitives and
/// ambient-nondeterminism types). Recorded wherever they appear in a body.
const WATCHED: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "mpsc",
    "OnceLock",
    "RandomState",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
];

/// Parse one file. `whole_file_test` marks integration-test files whose
/// every function is test code.
pub fn parse_file(toks: &[Tok], whole_file_test: bool) -> ParsedFile {
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let mut out = ParsedFile::default();
    let p = Parser { toks, code: &code };
    p.parse_items(0, code.len(), &ItemCtx {
        in_test: whole_file_test,
        impl_ty: None,
    }, &mut out);
    out
}

struct ItemCtx {
    in_test: bool,
    impl_ty: Option<String>,
}

struct Parser<'a> {
    toks: &'a [Tok],
    code: &'a [usize],
}

impl<'a> Parser<'a> {
    fn t(&self, i: usize) -> &Tok {
        &self.toks[self.code[i]]
    }

    fn text(&self, i: usize) -> &str {
        &self.t(i).text
    }

    /// Find the matching close bracket for the opener at `i` (which must be
    /// `{`, `(`, or `[`). Returns the index of the closer, or `end` when
    /// unbalanced.
    fn match_bracket(&self, i: usize, end: usize) -> usize {
        let (open, close) = match self.text(i) {
            "{" => ("{", "}"),
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            _ => return i,
        };
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        end
    }

    /// Skip a balanced generic argument list starting at `<` (index `i`),
    /// guarding against `->` inside `Fn() -> T` bounds. Returns the index
    /// one past the closing `>`.
    fn skip_generics(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "<" => depth += 1,
                ">" => {
                    // `->` does not close a generic list.
                    if j > 0 && self.text(j - 1) == "-" && self.adjacent(j - 1, j) {
                        j += 1;
                        continue;
                    }
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                "(" | "[" | "{" => {
                    j = self.match_bracket(j, end);
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Are code tokens `a` and `b` byte-adjacent on the same line?
    fn adjacent(&self, a: usize, b: usize) -> bool {
        let (ta, tb) = (self.t(a), self.t(b));
        ta.line == tb.line && tb.col == ta.col + ta.text.len() as u32
    }

    /// Parse items in `[i, end)` under `ctx`.
    fn parse_items(&self, mut i: usize, end: usize, ctx: &ItemCtx, out: &mut ParsedFile) {
        // Attribute state: set by `#[...]`, consumed by the next item.
        let mut attr_test = false;
        while i < end {
            match self.text(i) {
                "#" => {
                    // `#[...]` or `#![...]`: collect, detect cfg(test)/test.
                    let mut j = i + 1;
                    if j < end && self.text(j) == "!" {
                        j += 1;
                    }
                    if j < end && self.text(j) == "[" {
                        let close = self.match_bracket(j, end);
                        let body: Vec<&str> =
                            (j + 1..close).map(|k| self.text(k)).collect();
                        if body.first() == Some(&"cfg") && body.contains(&"test") {
                            attr_test = true;
                        }
                        if body.len() == 1 && body[0] == "test" {
                            attr_test = true;
                        }
                        i = close + 1;
                    } else {
                        i += 1;
                    }
                }
                "pub" => {
                    i += 1;
                    if i < end && self.text(i) == "(" {
                        i = self.match_bracket(i, end) + 1;
                    }
                }
                "unsafe" | "async" | "extern" | "default" => i += 1,
                "const" | "static" => {
                    // `const fn` is a prefix; `const NAME: ... = ...;` is an
                    // item to skip.
                    if i + 1 < end && self.text(i + 1) == "fn" {
                        i += 1;
                    } else {
                        i = self.skip_to_semi(i, end);
                        attr_test = false;
                    }
                }
                "fn" => {
                    let is_test = ctx.in_test || attr_test;
                    attr_test = false;
                    i = self.parse_fn(i, end, ctx, is_test, out);
                }
                "mod" => {
                    let mod_test = ctx.in_test || attr_test;
                    attr_test = false;
                    // `mod name { ... }` or `mod name;`
                    let mut j = i + 1;
                    while j < end && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    if j < end && self.text(j) == "{" {
                        let close = self.match_bracket(j, end);
                        self.parse_items(
                            j + 1,
                            close,
                            &ItemCtx {
                                in_test: mod_test,
                                impl_ty: ctx.impl_ty.clone(),
                            },
                            out,
                        );
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "impl" => {
                    attr_test = false;
                    i = self.parse_impl(i, end, ctx, out);
                }
                "trait" => {
                    attr_test = false;
                    let name = if i + 1 < end && self.t(i + 1).kind == TokKind::Ident {
                        Some(self.text(i + 1).to_string())
                    } else {
                        None
                    };
                    let mut j = i + 1;
                    while j < end && self.text(j) != "{" && self.text(j) != ";" {
                        if self.text(j) == "<" {
                            j = self.skip_generics(j, end);
                            continue;
                        }
                        j += 1;
                    }
                    if j < end && self.text(j) == "{" {
                        let close = self.match_bracket(j, end);
                        self.parse_items(
                            j + 1,
                            close,
                            &ItemCtx {
                                in_test: ctx.in_test,
                                impl_ty: name,
                            },
                            out,
                        );
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "struct" => {
                    attr_test = false;
                    i = self.parse_struct(i, end, out);
                }
                "enum" | "union" => {
                    attr_test = false;
                    let mut j = i + 1;
                    while j < end && self.text(j) != "{" && self.text(j) != ";" {
                        if self.text(j) == "<" {
                            j = self.skip_generics(j, end);
                            continue;
                        }
                        j += 1;
                    }
                    i = if j < end && self.text(j) == "{" {
                        self.match_bracket(j, end) + 1
                    } else {
                        j + 1
                    };
                }
                "macro_rules" => {
                    attr_test = false;
                    // `macro_rules! name { ... }` — never parse the body.
                    let mut j = i + 1;
                    while j < end && self.text(j) != "{" {
                        j += 1;
                    }
                    i = if j < end {
                        self.match_bracket(j, end) + 1
                    } else {
                        end
                    };
                }
                "use" | "type" => {
                    attr_test = false;
                    i = self.skip_to_semi(i, end);
                }
                _ => {
                    i += 1;
                }
            }
        }
    }

    /// Skip to one past the next `;` at bracket depth 0.
    fn skip_to_semi(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            match self.text(i) {
                ";" => return i + 1,
                "{" | "(" | "[" => i = self.match_bracket(i, end) + 1,
                _ => i += 1,
            }
        }
        end
    }

    /// Parse `impl<G> Type {..}` / `impl<G> Trait for Type {..}`.
    fn parse_impl(&self, i: usize, end: usize, ctx: &ItemCtx, out: &mut ParsedFile) -> usize {
        let mut j = i + 1;
        if j < end && self.text(j) == "<" {
            j = self.skip_generics(j, end);
        }
        // Scan the header up to `{`, noting the last ident before `{` or
        // after `for` as the implementing type.
        let mut ty: Option<String> = None;
        let mut after_for = false;
        while j < end {
            match self.text(j) {
                "{" => break,
                "for" => {
                    after_for = true;
                    ty = None;
                    j += 1;
                }
                "<" => j = self.skip_generics(j, end),
                "where" => {
                    while j < end && self.text(j) != "{" {
                        if self.text(j) == "<" {
                            j = self.skip_generics(j, end);
                            continue;
                        }
                        j += 1;
                    }
                }
                _ => {
                    if self.t(j).kind == TokKind::Ident
                        && (ty.is_none() || !after_for)
                        && !matches!(self.text(j), "dyn" | "mut")
                    {
                        // First ident (or first after `for`) is the target.
                        if ty.is_none() {
                            ty = Some(self.text(j).to_string());
                        }
                    }
                    j += 1;
                }
            }
        }
        if j >= end || self.text(j) != "{" {
            return j;
        }
        let close = self.match_bracket(j, end);
        self.parse_items(
            j + 1,
            close,
            &ItemCtx {
                in_test: ctx.in_test,
                impl_ty: ty,
            },
            out,
        );
        close + 1
    }

    /// Parse `struct Name { fields }` (named-field form; tuple/unit
    /// structs carry no field names to index).
    fn parse_struct(&self, i: usize, end: usize, out: &mut ParsedFile) -> usize {
        let name = if i + 1 < end && self.t(i + 1).kind == TokKind::Ident {
            self.text(i + 1).to_string()
        } else {
            return i + 1;
        };
        let mut j = i + 2;
        while j < end && !matches!(self.text(j), "{" | "(" | ";") {
            if self.text(j) == "<" {
                j = self.skip_generics(j, end);
                continue;
            }
            j += 1;
        }
        if j >= end {
            return end;
        }
        match self.text(j) {
            "(" => self.skip_to_semi(self.match_bracket(j, end), end),
            ";" => j + 1,
            _ => {
                let close = self.match_bracket(j, end);
                // Fields: `[pub] name : ty ,` at depth 1.
                let mut k = j + 1;
                while k < close {
                    match self.text(k) {
                        "#" => {
                            let mut m = k + 1;
                            if m < close && self.text(m) == "[" {
                                m = self.match_bracket(m, close);
                            }
                            k = m + 1;
                        }
                        "pub" => {
                            k += 1;
                            if k < close && self.text(k) == "(" {
                                k = self.match_bracket(k, close) + 1;
                            }
                        }
                        _ => {
                            if self.t(k).kind == TokKind::Ident
                                && k + 1 < close
                                && self.text(k + 1) == ":"
                                && (k + 2 >= close || self.text(k + 2) != ":")
                            {
                                let fname = self.text(k).to_string();
                                // Type text runs to the next depth-0 comma.
                                let mut m = k + 2;
                                let mut ty = String::new();
                                while m < close {
                                    match self.text(m) {
                                        "," => break,
                                        "<" => {
                                            let e = self.skip_generics(m, close);
                                            for x in m..e {
                                                if !ty.is_empty() {
                                                    ty.push(' ');
                                                }
                                                ty.push_str(self.text(x));
                                            }
                                            m = e;
                                            continue;
                                        }
                                        "(" | "[" => {
                                            let e = self.match_bracket(m, close);
                                            for x in m..=e.min(close - 1) {
                                                if !ty.is_empty() {
                                                    ty.push(' ');
                                                }
                                                ty.push_str(self.text(x));
                                            }
                                            m = e + 1;
                                            continue;
                                        }
                                        t => {
                                            if !ty.is_empty() {
                                                ty.push(' ');
                                            }
                                            ty.push_str(t);
                                            m += 1;
                                        }
                                    }
                                }
                                out.fields.push(FieldDecl {
                                    struct_name: name.clone(),
                                    name: fname,
                                    ty,
                                });
                                k = m;
                            } else {
                                k += 1;
                            }
                        }
                    }
                }
                close + 1
            }
        }
    }

    /// Parse a `fn` item starting at index `i` (the `fn` keyword).
    /// Returns the index one past the item.
    fn parse_fn(
        &self,
        i: usize,
        end: usize,
        ctx: &ItemCtx,
        is_test: bool,
        out: &mut ParsedFile,
    ) -> usize {
        let fn_tok = self.t(i);
        let mut j = i + 1;
        if j >= end || self.t(j).kind != TokKind::Ident {
            return i + 1;
        }
        let name = self.text(j).to_string();
        j += 1;
        if j < end && self.text(j) == "<" {
            j = self.skip_generics(j, end);
        }
        if j >= end || self.text(j) != "(" {
            return j;
        }
        let close_paren = self.match_bracket(j, end);
        let (params, has_self) = self.parse_params(j + 1, close_paren);
        let mut k = close_paren + 1;
        // Return type: `-> Ty` until `{`, `;`, or `where`.
        let mut ret = None;
        if k + 1 < end && self.text(k) == "-" && self.text(k + 1) == ">" {
            k += 2;
            let mut ty = String::new();
            while k < end && !matches!(self.text(k), "{" | ";" | "where") {
                if self.text(k) == "<" {
                    let e = self.skip_generics(k, end);
                    for x in k..e {
                        if !ty.is_empty() {
                            ty.push(' ');
                        }
                        ty.push_str(self.text(x));
                    }
                    k = e;
                    continue;
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(self.text(k));
                k += 1;
            }
            ret = Some(ty);
        }
        while k < end && !matches!(self.text(k), "{" | ";") {
            if self.text(k) == "<" {
                k = self.skip_generics(k, end);
                continue;
            }
            k += 1;
        }
        let (body, next) = if k < end && self.text(k) == "{" {
            let close = self.match_bracket(k, end);
            (self.extract_body(k + 1, close), close + 1)
        } else {
            (Body::default(), k.min(end) + 1)
        };
        out.fns.push(FnDef {
            name,
            impl_ty: ctx.impl_ty.clone(),
            has_self,
            params,
            ret,
            line: fn_tok.line,
            col: fn_tok.col,
            is_test,
            body,
        });
        // Nested items inside the body (rare `fn`-in-`fn`) are deliberately
        // not re-parsed as items; their calls attribute to the outer fn.
        next
    }

    /// Parse a parameter list in `[i, end)` (exclusive of the parens).
    fn parse_params(&self, i: usize, end: usize) -> (Vec<Param>, bool) {
        let mut params = Vec::new();
        let mut has_self = false;
        let mut start = i;
        let mut j = i;
        let flush = |p: &Parser, s: usize, e: usize, params: &mut Vec<Param>, has_self: &mut bool| {
            if s >= e {
                return;
            }
            let texts: Vec<&str> = (s..e).map(|k| p.text(k)).collect();
            if texts.contains(&"self") {
                *has_self = true;
                return;
            }
            // Split at the first top-level `:` that is not part of `::`.
            let mut colon = None;
            let mut k = s;
            let mut idx = 0usize;
            while k < e {
                match p.text(k) {
                    ":" => {
                        let part_of_path = (k + 1 < e && p.text(k + 1) == ":")
                            || (k > s && p.text(k - 1) == ":");
                        if !part_of_path {
                            colon = Some(idx);
                            break;
                        }
                        k += 1;
                        idx += 1;
                    }
                    "<" => {
                        let n = p.skip_generics(k, e);
                        idx += n - k;
                        k = n;
                    }
                    "(" | "[" | "{" => {
                        let n = p.match_bracket(k, e) + 1;
                        idx += n - k;
                        k = n;
                    }
                    _ => {
                        k += 1;
                        idx += 1;
                    }
                }
            }
            let Some(c) = colon else { return };
            let pat = &texts[..c];
            let ty = texts[c + 1..].join(" ");
            // Binding name: the last ident of a simple pattern; complex
            // patterns (tuples, structs) get "".
            let name = pat
                .iter()
                .rev()
                .find(|t| {
                    t.chars()
                        .next()
                        .map(|ch| ch.is_ascii_alphabetic() || ch == '_')
                        .unwrap_or(false)
                        && !matches!(**t, "mut" | "ref")
                })
                .map(|t| t.to_string())
                .unwrap_or_default();
            let simple = pat
                .iter()
                .all(|t| !matches!(*t, "(" | ")" | "{" | "}" | "[" | "]"));
            params.push(Param {
                name: if simple { name } else { String::new() },
                ty,
            });
        };
        while j < end {
            match self.text(j) {
                "," => {
                    flush(self, start, j, &mut params, &mut has_self);
                    start = j + 1;
                    j += 1;
                }
                "<" => j = self.skip_generics(j, end),
                "(" | "[" | "{" => j = self.match_bracket(j, end) + 1,
                _ => j += 1,
            }
        }
        flush(self, start, end, &mut params, &mut has_self);
        (params, has_self)
    }

    // Body extraction ------------------------------------------------------

    /// Walk a function body in `[i, end)` and collect events.
    fn extract_body(&self, start: usize, end: usize) -> Body {
        let mut body = Body::default();
        let mut i = start;
        while i < end {
            let t = self.t(i);
            match t.kind {
                TokKind::Ident => {
                    let text = t.text.as_str();
                    if WATCHED.contains(&text) {
                        body.watched.push(WatchedIdent {
                            name: text.to_string(),
                            line: t.line,
                            col: t.col,
                        });
                    }
                    if text == "let" {
                        i = self.extract_let(i, end, &mut body);
                        continue;
                    }
                    if text == "for" {
                        i = self.extract_for(i, end, &mut body);
                        continue;
                    }
                    if text == "as"
                        && i + 2 < end
                        && self.text(i + 1) == "*"
                        && matches!(self.text(i + 2), "const" | "mut")
                    {
                        body.ptr_casts.push((t.line, t.col));
                        i += 3;
                        continue;
                    }
                    // Call site: `ident (` where ident is not a keyword,
                    // not a macro (`ident !`), not a definition (`fn ident`).
                    if i + 1 < end
                        && self.text(i + 1) == "("
                        && !EXPR_KEYWORDS.contains(&text)
                        && !(i > start && self.text(i - 1) == "fn")
                    {
                        let close = self.match_bracket(i + 1, end);
                        let args = self.extract_args(i + 2, close);
                        let kind = self.call_kind(i, start);
                        body.calls.push(CallSite {
                            name: text.to_string(),
                            kind,
                            args,
                            line: t.line,
                            col: t.col,
                        });
                        // Continue scanning inside the args.
                        i += 2;
                        continue;
                    }
                    // Macro use: skip the name and bang so the macro body
                    // tokens still get scanned for calls/ops.
                    i += 1;
                }
                TokKind::Punct => {
                    if let Some(adv) = self.extract_binop(i, start, end, &mut body) {
                        i = adv;
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
        body
    }

    /// Classify the call at `i` (name token) by looking backward.
    fn call_kind(&self, i: usize, start: usize) -> CallKind {
        if i == start {
            return CallKind::Free;
        }
        let prev = self.text(i - 1);
        if prev == "." {
            // Receiver chain: walk back over `ident (.ident)*` / `self`.
            let mut chain = Vec::new();
            let mut k = i - 1;
            loop {
                if k == start {
                    break;
                }
                let p = self.t(k - 1);
                if p.kind == TokKind::Ident && !EXPR_KEYWORDS.contains(&p.text.as_str()) {
                    chain.push(p.text.clone());
                    if k - 1 == start {
                        break;
                    }
                    if self.text(k - 2) == "." && k >= 2 {
                        k -= 2;
                        continue;
                    }
                }
                break;
            }
            chain.reverse();
            return CallKind::Method(chain);
        }
        if prev == ":" && i >= 2 && self.text(i - 2) == ":" && i >= 3 {
            let q = self.t(i - 3);
            if q.kind == TokKind::Ident {
                return CallKind::Qualified(q.text.clone());
            }
            if q.text == ">" {
                // `Foo::<T>::bar` — find the qualifier before the generics.
                return CallKind::Free;
            }
        }
        CallKind::Free
    }

    /// Extract top-level call arguments in `[i, end)` as operands.
    fn extract_args(&self, i: usize, end: usize) -> Vec<Operand> {
        let mut args = Vec::new();
        let mut seg = i;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "," => {
                    args.push(self.operand_of_range(seg, j));
                    seg = j + 1;
                    j += 1;
                }
                "(" | "[" | "{" => j = self.match_bracket(j, end) + 1,
                "<" => {
                    // In expression position `<` is comparison; do not try
                    // to bracket-match it here.
                    j += 1;
                }
                _ => j += 1,
            }
        }
        if seg < end {
            args.push(self.operand_of_range(seg, end));
        }
        args
    }

    /// Reduce the expression tokens in `[i, end)` to a simplified operand.
    fn operand_of_range(&self, mut i: usize, mut end: usize) -> Operand {
        // Strip leading `& mut` / `&` / `*` and a trailing `as <ty>` cast
        // (casts change representation, not the quantity's unit).
        while i < end && matches!(self.text(i), "&" | "mut" | "*") {
            i += 1;
        }
        let mut k = i;
        let mut first_as = None;
        while k < end {
            match self.text(k) {
                "as" => {
                    if first_as.is_none() {
                        first_as = Some(k);
                    }
                    k += 1;
                }
                "(" | "[" | "{" => k = self.match_bracket(k, end) + 1,
                _ => k += 1,
            }
        }
        // Truncate a trailing cast only when everything after `as` is a
        // type (possibly a cast chain, `x as u64 as f64`); `x as u64 * 8`
        // is arithmetic and the whole range stays complex.
        if let Some(a) = first_as {
            let mut pure_type = true;
            let mut m = a + 1;
            while m < end {
                let t = self.t(m);
                let ok = t.kind == TokKind::Ident
                    || matches!(t.text.as_str(), ":" | "<" | ">" | ",")
                    || (t.text == "*"
                        && m + 1 < end
                        && matches!(self.text(m + 1), "const" | "mut"));
                if !ok {
                    pure_type = false;
                    break;
                }
                m += 1;
            }
            if pure_type {
                end = a;
            }
        }
        if end == i {
            return Operand::default();
        }
        if end - i == 1 {
            let t = self.t(i);
            match t.kind {
                TokKind::Int | TokKind::Float | TokKind::Str => {
                    return Operand {
                        chain: Vec::new(),
                        last_is_call: false,
                        literal: true,
                    }
                }
                TokKind::Ident => {
                    return Operand {
                        chain: vec![t.text.clone()],
                        last_is_call: false,
                        literal: false,
                    }
                }
                _ => return Operand::default(),
            }
        }
        // Simple chain: ident (:: ident | . ident)* with optional call
        // parens after any element; anything else → complex (empty chain).
        let mut chain = Vec::new();
        let mut last_is_call = false;
        let mut j = i;
        let mut expect_ident = true;
        while j < end {
            let t = self.t(j);
            if expect_ident {
                if t.kind != TokKind::Ident || EXPR_KEYWORDS.contains(&t.text.as_str()) {
                    return Operand::default();
                }
                chain.push(t.text.clone());
                last_is_call = false;
                expect_ident = false;
                j += 1;
                continue;
            }
            match t.text.as_str() {
                "." => {
                    expect_ident = true;
                    j += 1;
                }
                ":" if j + 1 < end && self.text(j + 1) == ":" => {
                    expect_ident = true;
                    j += 2;
                }
                "(" => {
                    last_is_call = true;
                    j = self.match_bracket(j, end) + 1;
                }
                "?" => j += 1,
                _ => return Operand::default(),
            }
        }
        Operand {
            chain,
            last_is_call,
            literal: false,
        }
    }

    /// Extract a `let` binding starting at the `let` keyword.
    fn extract_let(&self, i: usize, end: usize, body: &mut Body) -> usize {
        let line = self.t(i).line;
        let mut j = i + 1;
        if j < end && self.text(j) == "mut" {
            j += 1;
        }
        // `let Some(x) = ...` / `let (a, b) = ...`: no simple name.
        let name = if j < end
            && self.t(j).kind == TokKind::Ident
            && j + 1 < end
            && matches!(self.text(j + 1), ":" | "=")
        {
            self.text(j).to_string()
        } else {
            String::new()
        };
        if !name.is_empty() {
            j += 1;
        } else {
            // Skip the pattern up to `:`/`=`/`;` at depth 0.
            while j < end && !matches!(self.text(j), ":" | "=" | ";") {
                match self.text(j) {
                    "(" | "[" | "{" => j = self.match_bracket(j, end) + 1,
                    "<" => j = self.skip_generics(j, end),
                    _ => j += 1,
                }
            }
        }
        // Optional `: Ty`.
        let mut ty = None;
        if j < end && self.text(j) == ":" && (j + 1 >= end || self.text(j + 1) != ":") {
            j += 1;
            let mut text = String::new();
            while j < end && !matches!(self.text(j), "=" | ";") {
                match self.text(j) {
                    "<" => {
                        let e = self.skip_generics(j, end);
                        for x in j..e {
                            if !text.is_empty() {
                                text.push(' ');
                            }
                            text.push_str(self.text(x));
                        }
                        j = e;
                    }
                    "(" | "[" => {
                        let e = self.match_bracket(j, end);
                        for x in j..=e.min(end - 1) {
                            if !text.is_empty() {
                                text.push(' ');
                            }
                            text.push_str(self.text(x));
                        }
                        j = e + 1;
                    }
                    t => {
                        if !text.is_empty() {
                            text.push(' ');
                        }
                        text.push_str(t);
                        j += 1;
                    }
                }
            }
            ty = Some(text);
        }
        // Optional `= init`: reduce the init expression up to the
        // statement `;` at depth 0.
        let mut init = Operand::default();
        if j < end && self.text(j) == "=" {
            let istart = j + 1;
            let mut k = istart;
            while k < end && self.text(k) != ";" {
                match self.text(k) {
                    "(" | "[" | "{" => k = self.match_bracket(k, end) + 1,
                    _ => k += 1,
                }
            }
            init = self.operand_of_range(istart, k);
        }
        body.lets.push(LetBind {
            name,
            ty,
            init,
            line,
        });
        i + 1
    }

    /// Extract a `for <pat> in <expr> {` loop's iteration target.
    fn extract_for(&self, i: usize, end: usize, body: &mut Body) -> usize {
        let t = self.t(i);
        // Find `in` at depth 0 before the loop body `{`.
        let mut j = i + 1;
        while j < end {
            match self.text(j) {
                "in" => break,
                "{" => return i + 1, // `for` in a type position / malformed
                "(" | "[" => j = self.match_bracket(j, end) + 1,
                _ => j += 1,
            }
        }
        if j >= end || self.text(j) != "in" {
            return i + 1;
        }
        // Iterated expression: up to the `{` at depth 0.
        let estart = j + 1;
        let mut k = estart;
        while k < end && self.text(k) != "{" {
            match self.text(k) {
                "(" | "[" => k = self.match_bracket(k, end) + 1,
                _ => k += 1,
            }
        }
        body.for_iters.push(ForIter {
            iter: self.operand_of_range(estart, k),
            line: t.line,
            col: t.col,
        });
        i + 1
    }

    /// Try to extract a binary operator at punct index `i`. Returns the
    /// index to continue from when an operator (interesting or not) was
    /// consumed, or `None` to advance by one.
    fn extract_binop(&self, i: usize, start: usize, end: usize, body: &mut Body) -> Option<usize> {
        let t = self.t(i);
        let c = t.text.as_str();
        let next = if i + 1 < end && self.adjacent(i, i + 1) {
            Some(self.text(i + 1))
        } else {
            None
        };
        // Two-char operators (byte-adjacent).
        let (op, width): (&'static str, usize) = match (c, next) {
            ("=", Some("=")) => ("==", 2),
            ("!", Some("=")) => ("!=", 2),
            ("<", Some("=")) => ("<=", 2),
            (">", Some("=")) => (">=", 2),
            ("+", Some("=")) => ("+=", 2),
            ("-", Some("=")) => ("-=", 2),
            ("-", Some(">")) => return Some(i + 2), // return arrow
            ("=", Some(">")) => return Some(i + 2), // match arm
            ("<", Some("<")) | (">", Some(">")) => return Some(i + 2), // shifts
            ("&", Some("&")) | ("|", Some("|")) => return Some(i + 2),
            (".", Some(".")) => return Some(i + 2), // ranges
            ("+", _) => ("+", 1),
            ("-", _) => ("-", 1),
            ("<", _) => ("<", 1),
            (">", _) => (">", 1),
            _ => return None,
        };
        // Binary position: previous token must terminate an expression.
        if i == start {
            return Some(i + width);
        }
        let prev = self.t(i - 1);
        let prev_ends_expr = matches!(prev.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
            && !EXPR_KEYWORDS.contains(&prev.text.as_str())
            || matches!(prev.text.as_str(), ")" | "]");
        if !prev_ends_expr {
            return Some(i + width);
        }
        // Turbofish `::<` is not a comparison.
        if op == "<" && i >= 2 && self.text(i - 1) == ":" && self.text(i - 2) == ":" {
            return Some(i + width);
        }
        // `<` directly after a capitalized path segment is a generic
        // argument list (`Vec<u64>`, `Option<SimTime>`), not a comparison —
        // unit-bearing identifiers are snake_case.
        if op == "<"
            && prev.kind == TokKind::Ident
            && prev
                .text
                .chars()
                .next()
                .map(|ch| ch.is_ascii_uppercase())
                .unwrap_or(false)
        {
            return Some(i + width);
        }
        let lhs = self.operand_back(i, start);
        let rhs = self.operand_forward(i + width, end);
        body.binops.push(BinOp {
            op,
            lhs,
            rhs,
            line: t.line,
            col: t.col,
        });
        Some(i + width)
    }

    /// Simplified operand ending just before code index `i` (walk back).
    fn operand_back(&self, i: usize, start: usize) -> Operand {
        if i == start {
            return Operand::default();
        }
        let mut k = i; // exclusive end
        let mut chain_rev: Vec<String> = Vec::new();
        let mut last_is_call = false;
        // Trailing literal?
        let last = self.t(k - 1);
        if matches!(last.kind, TokKind::Int | TokKind::Float | TokKind::Str) {
            return Operand {
                chain: Vec::new(),
                last_is_call: false,
                literal: true,
            };
        }
        loop {
            if k == start {
                break;
            }
            let t = self.t(k - 1);
            if t.text == ")" {
                // Find the matching `(` backward, then the call name.
                let mut depth = 0i32;
                let mut m = k - 1;
                loop {
                    match self.text(m) {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if m == start {
                        return Operand::default();
                    }
                    m -= 1;
                }
                if m == start || self.t(m - 1).kind != TokKind::Ident {
                    return Operand::default();
                }
                if chain_rev.is_empty() {
                    last_is_call = true;
                }
                chain_rev.push(self.text(m - 1).to_string());
                k = m - 1;
            } else if t.kind == TokKind::Ident && !EXPR_KEYWORDS.contains(&t.text.as_str()) {
                chain_rev.push(t.text.clone());
                k -= 1;
            } else {
                break;
            }
            // Continue over `.` / `::`.
            if k > start && self.text(k - 1) == "." {
                k -= 1;
                continue;
            }
            if k > start + 1 && self.text(k - 1) == ":" && self.text(k - 2) == ":" {
                k -= 2;
                continue;
            }
            break;
        }
        if chain_rev.is_empty() {
            return Operand::default();
        }
        chain_rev.reverse();
        Operand {
            chain: chain_rev,
            last_is_call,
            literal: false,
        }
    }

    /// Simplified operand starting at code index `i` (walk forward).
    fn operand_forward(&self, mut i: usize, end: usize) -> Operand {
        while i < end && matches!(self.text(i), "&" | "mut" | "*") {
            i += 1;
        }
        if i >= end {
            return Operand::default();
        }
        let t = self.t(i);
        if matches!(t.kind, TokKind::Int | TokKind::Float | TokKind::Str) {
            return Operand {
                chain: Vec::new(),
                last_is_call: false,
                literal: true,
            };
        }
        if t.kind != TokKind::Ident || EXPR_KEYWORDS.contains(&t.text.as_str()) {
            return Operand::default();
        }
        let mut chain = vec![t.text.clone()];
        let mut last_is_call = false;
        let mut j = i + 1;
        while j < end {
            match self.text(j) {
                "." => {
                    if j + 1 < end && self.t(j + 1).kind == TokKind::Ident {
                        chain.push(self.text(j + 1).to_string());
                        last_is_call = false;
                        j += 2;
                    } else {
                        break;
                    }
                }
                ":" if j + 1 < end && self.text(j + 1) == ":" => {
                    if j + 2 < end && self.t(j + 2).kind == TokKind::Ident {
                        chain.push(self.text(j + 2).to_string());
                        last_is_call = false;
                        j += 3;
                    } else {
                        break;
                    }
                }
                "(" => {
                    last_is_call = true;
                    j = self.match_bracket(j, end) + 1;
                }
                _ => break,
            }
        }
        Operand {
            chain,
            last_is_call,
            literal: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&tokenize(src), false)
    }

    #[test]
    fn parses_fns_with_impls_and_signatures() {
        let p = parse(
            r#"
impl<A: HostAgent> Engine<A> {
    pub fn run_until(&mut self, end: SimTime) -> u64 { self.step(end) }
}
fn free(delay_ns: u64, topo: &Topology) {}
trait Agent { fn on_packet(&mut self, p: Packet) { handle(p); } }
"#,
        );
        assert_eq!(p.fns.len(), 3);
        let run = &p.fns[0];
        assert_eq!(run.name, "run_until");
        assert_eq!(run.impl_ty.as_deref(), Some("Engine"));
        assert!(run.has_self);
        assert_eq!(run.params.len(), 1);
        assert_eq!(run.params[0].name, "end");
        assert_eq!(run.params[0].ty, "SimTime");
        assert_eq!(run.ret.as_deref(), Some("u64"));
        let free = &p.fns[1];
        assert_eq!(free.impl_ty, None);
        assert_eq!(free.params[0].name, "delay_ns");
        let trait_fn = &p.fns[2];
        assert_eq!(trait_fn.impl_ty.as_deref(), Some("Agent"));
        assert_eq!(trait_fn.body.calls.len(), 1);
        assert_eq!(trait_fn.body.calls[0].name, "handle");
    }

    #[test]
    fn impl_trait_for_type_targets_the_type() {
        let p = parse("impl HostAgent for RpcHost { fn f(&mut self) {} }");
        assert_eq!(p.fns[0].impl_ty.as_deref(), Some("RpcHost"));
    }

    #[test]
    fn cfg_test_mods_and_test_attrs_mark_fns() {
        let p = parse(
            "fn prod() {}\n#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\n#[test]\nfn top() {}",
        );
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("t").is_test);
        assert!(by_name("top").is_test);
    }

    #[test]
    fn call_kinds_are_classified() {
        let p = parse(
            "fn f() { helper(x); Engine::start(y); self.flows.iter(); std::thread::current(); }",
        );
        let calls = &p.fns[0].body.calls;
        assert_eq!(calls[0].kind, CallKind::Free);
        assert_eq!(calls[1].kind, CallKind::Qualified("Engine".into()));
        assert_eq!(
            calls[2].kind,
            CallKind::Method(vec!["self".to_string(), "flows".to_string()])
        );
        assert_eq!(calls[3].kind, CallKind::Qualified("thread".into()));
    }

    #[test]
    fn let_bindings_capture_types_and_inits() {
        let p = parse(
            "fn f() { let mut m: HashMap < u64 , f64 > = HashMap::new(); let x = t.as_ps(); }",
        );
        let lets = &p.fns[0].body.lets;
        assert_eq!(lets[0].name, "m");
        assert!(lets[0].ty.as_deref().unwrap().contains("HashMap"));
        assert_eq!(lets[0].init.chain, vec!["HashMap", "new"]);
        assert_eq!(lets[1].init.chain, vec!["t", "as_ps"]);
        assert!(lets[1].init.last_is_call);
    }

    #[test]
    fn for_loops_capture_iteration_targets() {
        let p = parse("fn f() { for (k, v) in &self.flows { use_it(k, v); } }");
        let fi = &p.fns[0].body.for_iters;
        assert_eq!(fi.len(), 1);
        assert_eq!(fi[0].iter.chain, vec!["self", "flows"]);
    }

    #[test]
    fn binops_capture_unit_bearing_operands() {
        let p = parse("fn f() { let z = dur_ps + gap.as_ns(); if a_bytes < b_bits { } }");
        let ops = &p.fns[0].body.binops;
        let plus = ops.iter().find(|o| o.op == "+").unwrap();
        assert_eq!(plus.lhs.chain, vec!["dur_ps"]);
        assert_eq!(plus.rhs.chain, vec!["gap", "as_ns"]);
        assert!(plus.rhs.last_is_call);
        let lt = ops.iter().find(|o| o.op == "<").unwrap();
        assert_eq!(lt.lhs.chain, vec!["a_bytes"]);
        assert_eq!(lt.rhs.chain, vec!["b_bits"]);
    }

    #[test]
    fn arrows_shifts_and_generics_are_not_binops() {
        let p = parse(
            "fn f(x: u64) -> u64 { let v: Vec<u64> = c.collect::<Vec<u64>>(); match x { _ => x << 2 } }",
        );
        // `->`, `=>`, `<<`, and turbofish produce no comparison ops between
        // unit-less operands... they may record generic noise but never a
        // `Vec`-vs-`u64` pair from the annotation (type position).
        for op in &p.fns[0].body.binops {
            assert!(
                op.lhs.chain.is_empty()
                    || op.rhs.chain.is_empty()
                    || op.lhs.chain != vec!["Vec".to_string()],
                "{op:?}"
            );
        }
    }

    #[test]
    fn struct_fields_are_indexed() {
        let p = parse("pub struct Flows { pub by_id: HashMap < u64 , Flow > , count: usize }");
        assert_eq!(p.fields.len(), 2);
        assert_eq!(p.fields[0].struct_name, "Flows");
        assert_eq!(p.fields[0].name, "by_id");
        assert!(p.fields[0].ty.contains("HashMap"));
    }

    #[test]
    fn watched_idents_and_ptr_casts_are_recorded() {
        let p = parse("fn f() { let m = Mutex::new(0); let a = &x as *const u32 as usize; }");
        let b = &p.fns[0].body;
        assert!(b.watched.iter().any(|w| w.name == "Mutex"));
        assert_eq!(b.ptr_casts.len(), 1);
    }

    #[test]
    fn call_args_are_simplified_operands() {
        let p = parse("fn f() { schedule(t_ps, q.as_ns(), a + b, 7); }");
        let call = &p.fns[0].body.calls[0];
        assert_eq!(call.args.len(), 4);
        assert_eq!(call.args[0].chain, vec!["t_ps"]);
        assert_eq!(call.args[1].chain, vec!["q", "as_ns"]);
        assert!(call.args[2].chain.is_empty());
        assert!(call.args[3].literal);
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let p = parse("macro_rules! m { ($x:expr) => { bad_call($x) }; }\nfn real() { ok(); }");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].body.calls[0].name, "ok");
    }
}
