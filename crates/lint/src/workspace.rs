//! Workspace-wide symbol table and call graph.
//!
//! Every file is parsed with [`crate::ast`]; functions are indexed by name
//! and by `(impl type, name)`, and call sites are resolved to candidate
//! callees. Resolution is deliberately *over-approximate* — a method call
//! `x.run_until(...)` links to every workspace method named `run_until` —
//! because the dataflow passes only act on facts (taint, reachability)
//! that must then combine with a concrete violation to produce a finding;
//! a spurious edge into clean code is harmless, while a missed edge would
//! hide a real bug. Calls whose name the workspace does not define (std
//! and vendored methods) produce no edges.
//!
//! Test functions are never call targets of non-test functions: production
//! code cannot call `#[cfg(test)]` items, and a name collision with a test
//! helper must not taint the production graph.

use crate::ast::{self, CallKind, FieldDecl, FnDef, ParsedFile};
use crate::config::{glob_match, Config};
use crate::lexer::TokKind;
use crate::SourceFile;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// A resolved call edge: `calls[call]` in the caller's body may invoke
/// `callee`.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Index into the caller's `body.calls`.
    pub call: usize,
    /// Callee function id.
    pub callee: usize,
}

/// One function in the workspace graph.
pub struct FnNode {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// The parsed definition.
    pub def: FnDef,
    /// Resolved outgoing edges (caller → callee), in call-site order.
    pub callees: Vec<Edge>,
    /// Names bound to `HashMap`/`HashSet` values in this function
    /// (parameters and `let` bindings).
    pub hashy_locals: BTreeSet<String>,
}

/// The assembled workspace view the dataflow passes run over.
pub struct Workspace<'a> {
    /// The source files (token streams included, for justification
    /// comment lookups).
    pub files: &'a [SourceFile],
    /// All functions across all files.
    pub fns: Vec<FnNode>,
    /// Function ids by bare name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Function ids by `(impl type, name)`.
    pub by_impl: BTreeMap<(String, String), Vec<usize>>,
    /// Reverse edges: for each function, `(caller id, call index)` pairs.
    pub callers: Vec<Vec<(usize, usize)>>,
    /// `(struct, field)` pairs whose declared type mentions
    /// `HashMap`/`HashSet` (receiver resolution for `self.f.iter()` —
    /// struct-qualified so an unrelated `Vec` field sharing a name with
    /// some other struct's map is not misclassified).
    pub hashy_fields: BTreeSet<(String, String)>,
}

fn whole_file_test(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/") || rel.ends_with("/tests.rs")
}

fn is_hashy_ty(ty: &str) -> bool {
    ty.contains("HashMap") || ty.contains("HashSet")
}

impl<'a> Workspace<'a> {
    /// Parse every file and assemble the symbol table and call graph.
    /// Files under the global allowlist (vendored code) contribute neither
    /// symbols nor findings.
    pub fn build(files: &'a [SourceFile], cfg: &Config) -> Workspace<'a> {
        let mut fns: Vec<FnNode> = Vec::new();
        let mut fields: Vec<FieldDecl> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            if cfg.global_allow.iter().any(|g| glob_match(g, &f.rel)) {
                continue;
            }
            let parsed: ParsedFile = ast::parse_file(&f.toks, whole_file_test(&f.rel));
            fields.extend(parsed.fields);
            for def in parsed.fns {
                let mut hashy_locals = BTreeSet::new();
                for p in &def.params {
                    if !p.name.is_empty() && is_hashy_ty(&p.ty) {
                        hashy_locals.insert(p.name.clone());
                    }
                }
                for l in &def.body.lets {
                    if l.name.is_empty() {
                        continue;
                    }
                    let ty_hashy = l.ty.as_deref().map(is_hashy_ty).unwrap_or(false);
                    let init_hashy = l
                        .init
                        .chain
                        .iter()
                        .any(|s| s == "HashMap" || s == "HashSet");
                    if ty_hashy || init_hashy {
                        hashy_locals.insert(l.name.clone());
                    }
                }
                fns.push(FnNode {
                    file: fi,
                    def,
                    callees: Vec::new(),
                    hashy_locals,
                });
            }
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_impl: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (id, n) in fns.iter().enumerate() {
            by_name.entry(n.def.name.clone()).or_default().push(id);
            if let Some(ty) = &n.def.impl_ty {
                by_impl
                    .entry((ty.clone(), n.def.name.clone()))
                    .or_default()
                    .push(id);
            }
        }

        let hashy_fields: BTreeSet<(String, String)> = fields
            .iter()
            .filter(|f| is_hashy_ty(&f.ty))
            .map(|f| (f.struct_name.clone(), f.name.clone()))
            .collect();

        // Resolve call edges.
        let mut all_edges: Vec<Vec<Edge>> = Vec::with_capacity(fns.len());
        for node in &fns {
            let mut edges = Vec::new();
            for (ci, call) in node.def.body.calls.iter().enumerate() {
                let candidates: Vec<usize> = match &call.kind {
                    CallKind::Qualified(q) => {
                        let ty = if q == "Self" {
                            node.def.impl_ty.clone().unwrap_or_else(|| q.clone())
                        } else {
                            q.clone()
                        };
                        let exact = by_impl.get(&(ty, call.name.clone()));
                        match exact {
                            Some(v) if !v.is_empty() => v.clone(),
                            // Module-qualified free call (`mix::pick(...)`):
                            // fall back to the bare name.
                            _ => by_name.get(&call.name).cloned().unwrap_or_default(),
                        }
                    }
                    CallKind::Method(_) => by_name
                        .get(&call.name)
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|&id| fns[id].def.has_self)
                                .collect()
                        })
                        .unwrap_or_default(),
                    CallKind::Free => by_name
                        .get(&call.name)
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|&id| !fns[id].def.has_self)
                                .collect()
                        })
                        .unwrap_or_default(),
                };
                for callee in candidates {
                    // Production code cannot call test items.
                    if !node.def.is_test && fns[callee].def.is_test {
                        continue;
                    }
                    edges.push(Edge { call: ci, callee });
                }
            }
            all_edges.push(edges);
        }
        for (id, edges) in all_edges.into_iter().enumerate() {
            fns[id].callees = edges;
        }

        let mut callers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); fns.len()];
        for (id, n) in fns.iter().enumerate() {
            for e in &n.callees {
                callers[e.callee].push((id, e.call));
            }
        }

        Workspace {
            files,
            fns,
            by_name,
            by_impl,
            callers,
            hashy_fields,
        }
    }

    /// Workspace-relative path of the file defining `id`.
    pub fn path(&self, id: usize) -> &str {
        &self.files[self.fns[id].file].rel
    }

    /// Human name of function `id` (`Engine::run_until` or `free_fn`).
    pub fn display(&self, id: usize) -> String {
        let n = &self.fns[id];
        match &n.def.impl_ty {
            Some(ty) => format!("{ty}::{}", n.def.name),
            None => n.def.name.clone(),
        }
    }

    /// Is there a justification comment containing `needle` on `line` of
    /// file `file`, or in the contiguous comment block directly above it?
    /// Same semantics as the token rules' escape hatches.
    pub fn justified(&self, file: usize, line: u32, needle: &str) -> bool {
        let toks = &self.files[file].toks;
        let comments = |l: u32| {
            toks.iter().filter(move |t| {
                matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) && t.line == l
            })
        };
        let hit = |l: u32| comments(l).any(|t| needle.is_empty() || t.text.contains(needle));
        if hit(line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && comments(l).next().is_some() {
            if hit(l) {
                return true;
            }
            l -= 1;
        }
        false
    }

    /// All function ids whose file path matches `pred`, in id order.
    pub fn fns_in_files(&self, pred: impl Fn(&str) -> bool) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&id| pred(self.path(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn ws_of(files: &[(&str, &str)]) -> (Vec<SourceFile>, Config) {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile {
                rel: rel.to_string(),
                toks: tokenize(src),
            })
            .collect();
        (sources, Config::default())
    }

    #[test]
    fn resolves_cross_file_calls() {
        let (files, cfg) = ws_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn caller() { helper(1); }",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn helper(x: u64) -> u64 { x }",
            ),
        ]);
        let ws = Workspace::build(&files, &cfg);
        let caller = ws.by_name["caller"][0];
        let helper = ws.by_name["helper"][0];
        assert_eq!(ws.fns[caller].callees.len(), 1);
        assert_eq!(ws.fns[caller].callees[0].callee, helper);
        assert_eq!(ws.callers[helper], vec![(caller, 0)]);
    }

    #[test]
    fn method_calls_only_target_methods_and_skip_test_fns() {
        let (files, cfg) = ws_of(&[
            (
                "crates/a/src/lib.rs",
                "impl T { pub fn go(&self) {} }\n\
                 pub fn drive(t: &T) { t.go(); }\n\
                 #[cfg(test)]\nmod tests { pub fn go() {} }",
            ),
        ]);
        let ws = Workspace::build(&files, &cfg);
        let drive = ws.by_name["drive"][0];
        let method = ws.by_impl[&("T".to_string(), "go".to_string())][0];
        assert_eq!(ws.fns[drive].callees.len(), 1);
        assert_eq!(ws.fns[drive].callees[0].callee, method);
    }

    #[test]
    fn qualified_calls_prefer_the_impl_match() {
        let (files, cfg) = ws_of(&[
            (
                "crates/a/src/lib.rs",
                "impl A { pub fn make() -> A { A } }\n\
                 impl B { pub fn make() -> B { B } }\n\
                 pub fn f() { A::make(); }",
            ),
        ]);
        let ws = Workspace::build(&files, &cfg);
        let f = ws.by_name["f"][0];
        let a_make = ws.by_impl[&("A".to_string(), "make".to_string())][0];
        assert_eq!(ws.fns[f].callees.len(), 1);
        assert_eq!(ws.fns[f].callees[0].callee, a_make);
    }

    #[test]
    fn hashy_locals_and_fields_are_indexed() {
        let (files, cfg) = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub struct S { flows: HashMap < u64 , u64 > }\n\
             pub fn f(m: &HashMap<u64, u64>) { let n = HashSet::new(); let v = Vec::new(); }",
        )]);
        let ws = Workspace::build(&files, &cfg);
        assert!(ws
            .hashy_fields
            .contains(&("S".to_string(), "flows".to_string())));
        let f = ws.by_name["f"][0];
        assert!(ws.fns[f].hashy_locals.contains("m"));
        assert!(ws.fns[f].hashy_locals.contains("n"));
        assert!(!ws.fns[f].hashy_locals.contains("v"));
    }

    #[test]
    fn vendored_files_contribute_nothing() {
        let cfg = Config::parse("[global]\nallow = [\"vendor/**\"]\n").unwrap();
        let files: Vec<SourceFile> = vec![SourceFile {
            rel: "vendor/x/src/lib.rs".into(),
            toks: tokenize("pub fn vendored() {}"),
        }];
        let ws = Workspace::build(&files, &cfg);
        assert!(ws.fns.is_empty());
    }
}
