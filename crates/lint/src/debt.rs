//! Suppression-debt accounting.
//!
//! Every escape hatch — a `lint.toml` allowlist glob, a disabled rule, or
//! an inline justification comment (`det:`, `alloc:`, `metric:`,
//! `schema:`, `panic:`, `unit:`, `shard:`) — is *debt*: a place where the
//! analyzer was told to look away. The debt report counts them; the debt
//! gate compares the counts against the committed `lint-debt.toml`
//! baseline and fails CI on any increase, so new suppressions require a
//! deliberate baseline refresh in the same diff (which reviewers see),
//! never a silent drive-by.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::SourceFile;
use std::collections::BTreeMap;

/// The inline justification markers, in report order.
pub const MARKERS: &[&str] = &[
    "det:", "alloc:", "metric:", "schema:", "panic:", "unit:", "shard:",
];

/// A debt snapshot: counter name -> count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Debt {
    /// `allowlist` (total globs incl. global), `disabled` (rules off), and
    /// one counter per marker (`det`, `alloc`, ...).
    pub counts: BTreeMap<String, usize>,
}

impl Debt {
    /// Count suppressions across the workspace: config entries plus
    /// justification comments in non-vendored files.
    pub fn collect(files: &[SourceFile], cfg: &Config) -> Debt {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut allowlist = cfg.global_allow.len();
        let mut disabled = 0usize;
        for (_, rc) in cfg.configured_rules() {
            allowlist += rc.allow.len();
            if !rc.enabled {
                disabled += 1;
            }
        }
        counts.insert("allowlist".into(), allowlist);
        counts.insert("disabled".into(), disabled);
        for m in MARKERS {
            counts.insert(m.trim_end_matches(':').to_string(), 0);
        }
        for f in files {
            if cfg
                .global_allow
                .iter()
                .any(|g| crate::config::glob_match(g, &f.rel))
            {
                continue;
            }
            for t in &f.toks {
                if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                    continue;
                }
                // Doc comments *describe* the markers ("needs a `det:`
                // comment"); only plain comments can be suppressions.
                if t.text.starts_with("///")
                    || t.text.starts_with("//!")
                    || t.text.starts_with("/**")
                    || t.text.starts_with("/*!")
                {
                    continue;
                }
                for m in MARKERS {
                    let key = m.trim_end_matches(':');
                    let n = t.text.matches(m).count();
                    if n > 0 {
                        *counts.get_mut(key).expect("preseeded above") += n;
                    }
                }
            }
        }
        Debt { counts }
    }

    /// Render the committed-baseline format.
    pub fn to_toml(&self) -> String {
        let mut s = String::from(
            "# Suppression-debt baseline for aequitas-lint.\n\
             # Regenerate with `scripts/lint.sh --debt-baseline` ONLY when a\n\
             # suppression is removed (counts go down) or a new one has been\n\
             # argued for in review; `scripts/lint.sh --debt-gate` fails CI on\n\
             # any count above this file.\n[counts]\n",
        );
        for (k, v) in &self.counts {
            s.push_str(&format!("{k} = {v}\n"));
        }
        s
    }

    /// Human-readable report.
    pub fn report(&self) -> String {
        let total: usize = self.counts.values().sum();
        let mut s = format!("suppression debt: {total} total\n");
        for (k, v) in &self.counts {
            s.push_str(&format!("  {k:<10} {v}\n"));
        }
        s
    }

    /// Parse a baseline previously written by [`Debt::to_toml`].
    pub fn parse_baseline(src: &str) -> Result<BTreeMap<String, usize>, String> {
        let mut counts = BTreeMap::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() || line == "[counts]" {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("lint-debt.toml:{}: expected `key = N`", idx + 1))?;
            let n: usize = v
                .trim()
                .parse()
                .map_err(|_| format!("lint-debt.toml:{}: bad count `{}`", idx + 1, v.trim()))?;
            counts.insert(k.trim().to_string(), n);
        }
        Ok(counts)
    }

    /// Gate against a baseline: any counter above it is an error; unknown
    /// counters in the current snapshot count as increases from zero.
    pub fn gate(&self, baseline_src: &str) -> Result<String, String> {
        let base = Debt::parse_baseline(baseline_src)?;
        let mut regressions = Vec::new();
        let mut slack = 0usize;
        for (k, &cur) in &self.counts {
            let was = base.get(k).copied().unwrap_or(0);
            if cur > was {
                regressions.push(format!("  {k}: {was} -> {cur}"));
            } else {
                slack += was - cur;
            }
        }
        if regressions.is_empty() {
            let mut msg = "suppression-debt gate: PASS".to_string();
            if slack > 0 {
                msg.push_str(&format!(
                    " ({slack} below baseline — consider refreshing lint-debt.toml)"
                ));
            }
            Ok(msg)
        } else {
            Err(format!(
                "suppression-debt gate: FAIL — new suppressions vs lint-debt.toml:\n{}\n\
                 remove the suppression or refresh the baseline in the same reviewed diff",
                regressions.join("\n")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn files(src: &str) -> Vec<SourceFile> {
        vec![SourceFile {
            rel: "crates/a/src/lib.rs".into(),
            toks: tokenize(src),
        }]
    }

    #[test]
    fn counts_markers_and_config_entries() {
        let cfg = Config::parse(
            "[global]\nallow = [\"vendor/**\"]\n[AQ011]\nallow = [\"a\", \"b\"]\n[AQ009]\nenabled = false\n",
        )
        .unwrap();
        let d = Debt::collect(
            &files("// det: sorted below\n// alloc: startup only\nfn f() {}\n"),
            &cfg,
        );
        assert_eq!(d.counts["allowlist"], 3);
        assert_eq!(d.counts["disabled"], 1);
        assert_eq!(d.counts["det"], 1);
        assert_eq!(d.counts["alloc"], 1);
        assert_eq!(d.counts["unit"], 0);
    }

    #[test]
    fn gate_passes_at_or_below_baseline_and_fails_above() {
        let cfg = Config::default();
        let d = Debt::collect(&files("// det: a\n// det: b\n"), &cfg);
        let base = d.to_toml();
        assert!(d.gate(&base).is_ok());
        let worse = Debt::collect(&files("// det: a\n// det: b\n// shard: c\n"), &cfg);
        let err = worse.gate(&base).unwrap_err();
        assert!(err.contains("shard: 0 -> 1"), "{err}");
        let better = Debt::collect(&files("// det: a\n"), &cfg);
        assert!(better.gate(&base).unwrap().contains("below baseline"));
    }

    #[test]
    fn baseline_roundtrips() {
        let cfg = Config::default();
        let d = Debt::collect(&files("// unit: ratio\n"), &cfg);
        let parsed = Debt::parse_baseline(&d.to_toml()).unwrap();
        assert_eq!(parsed, d.counts);
    }
}
