//! The AQ rule set.
//!
//! Every rule has a stable ID (`AQ001`..) so findings can be allowlisted
//! precisely in `lint.toml` and grepped in CI logs. Rules operate on the
//! token stream from [`crate::lexer`]; they never see the inside of
//! strings or comments, so prose like "the `Instant` at which an event
//! fires" cannot trip them.
//!
//! Scoping conventions shared by several rules:
//! - *test code* means a `#[cfg(test)] mod` span inside a crate, or any
//!   file under a `tests/` directory;
//! - *hot-path crates* are `sim-core`, `netsim`, `qdisc`, `transport` —
//!   the per-packet simulation path;
//! - structural exemptions (bins, benches, the telemetry sink) are coded
//!   here so `lint.toml` allowlists stay reserved for vendored code.

use crate::config::{glob_match, Config};
use crate::lexer::{Tok, TokKind};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule ID, e.g. `AQ001`.
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation, including the fix direction.
    pub message: String,
}

/// Rule metadata, used by `--rules` and the docs test.
pub struct RuleInfo {
    /// Stable ID.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line rationale.
    pub desc: &'static str,
}

/// Every rule this binary knows, in ID order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "AQ001",
        name: "wall-clock-read",
        desc: "std::time::{Instant,SystemTime} break bit-determinism; sim code must use sim-core SimTime",
    },
    RuleInfo {
        id: "AQ002",
        name: "ambient-randomness",
        desc: "thread_rng/OsRng/RandomState et al. are nondeterministic; use sim-core SimRng with an explicit seed",
    },
    RuleInfo {
        id: "AQ003",
        name: "direct-stdio",
        desc: "println!/eprintln! outside bins, benches, tests and the telemetry sink; route through aequitas-telemetry",
    },
    RuleInfo {
        id: "AQ004",
        name: "float-exact-compare",
        desc: "== / != against a float literal is brittle; compare with a tolerance or via to_bits()",
    },
    RuleInfo {
        id: "AQ005",
        name: "raw-time-arithmetic",
        desc: "arithmetic on as_ps() values escapes the SimTime/SimDuration newtypes; use their operators/helpers",
    },
    RuleInfo {
        id: "AQ006",
        name: "naked-unwrap-hot-path",
        desc: ".unwrap() in hot-path crates hides the invariant; use .expect(\"why this cannot fail\")",
    },
    RuleInfo {
        id: "AQ007",
        name: "unjustified-lint-allow",
        desc: "#[allow(clippy::...)] needs a justification comment on the same line or the line above",
    },
    RuleInfo {
        id: "AQ008",
        name: "unordered-iteration-hazard",
        desc: "HashMap/HashSet construction needs a `det:` comment arguing iteration order cannot leak into results",
    },
    RuleInfo {
        id: "AQ009",
        name: "unsafe-code",
        desc: "the workspace is 100% safe Rust; unsafe blocks need a design discussion, not a commit",
    },
    RuleInfo {
        id: "AQ010",
        name: "todo-marker",
        desc: "todo!/unimplemented! in non-test code panics at runtime; finish it or return an error",
    },
    RuleInfo {
        id: "AQ011",
        name: "hot-path-allocation",
        desc: "Box::new/vec!/Vec::new in per-event modules; recycle via sim-core arena (Slab/VecPool), preallocate with with_capacity, or justify with an `alloc:` comment",
    },
    RuleInfo {
        id: "AQ012",
        name: "string-keyed-telemetry",
        desc: "string-keyed metric calls, format!/String::new label building, or per-event to_json in hot-path modules; intern a MetricId / reuse a scratch buffer, or justify with a `metric:` comment",
    },
    RuleInfo {
        id: "AQ013",
        name: "trace-schema-drift",
        desc: "TraceEvent variants/fields changed without updating TRACE_SCHEMA_FINGERPRINT (and bumping TRACE_SCHEMA_VERSION); replay tools key on the version",
    },
    RuleInfo {
        id: "AQ014",
        name: "determinism-taint",
        desc: "call-graph taint: a nondeterminism source (wall clock, ambient RNG, HashMap/HashSet iteration, pointer-address cast) reaches engine/shard/quota hot code through a call chain; `det:` comment at the source or boundary call suppresses",
    },
    RuleInfo {
        id: "AQ015",
        name: "unit-mixing",
        desc: "dataflow unit check: ps/ns/us, bytes/bits, or raw-vs-per-MTU RNL quantities mixed in arithmetic/comparison or passed to a parameter of a different unit; `unit:` comment suppresses",
    },
    RuleInfo {
        id: "AQ016",
        name: "shard-isolation",
        desc: "code reachable from Engine::run_until (the per-domain window) must not touch shared state (Mutex/RwLock/atomics/channels), spawn threads, or call the coordinator-only boundary-merge API; `shard:` comment suppresses",
    },
    RuleInfo {
        id: "AQ017",
        name: "library-unwrap",
        desc: ".unwrap()/.expect() in replay library code panics on malformed traces; return a contextful error (audit tools must report, not die); `panic:` comment suppresses",
    },
];

/// Hot-path crates for AQ006.
const HOT_PATH: &[&str] = &["sim-core", "netsim", "qdisc", "transport"];

/// Per-event modules for AQ011 — finer-grained than the AQ006 crate list,
/// because hot crates contain plenty of legitimately-allocating cold code
/// (topology builders, config structs, stats harvest). Entries ending in
/// `/` cover a whole directory.
const HOT_ALLOC_MODULES: &[&str] = &[
    "crates/sim-core/src/event.rs",
    "crates/sim-core/src/arena.rs",
    "crates/netsim/src/engine.rs",
    "crates/netsim/src/shard.rs",
    "crates/netsim/src/port.rs",
    "crates/netsim/src/packet.rs",
    "crates/qdisc/src/",
    "crates/transport/src/",
];

/// Modules whose telemetry must run on interned handles for AQ012: the
/// per-event emitters (engine dispatch, qdiscs, transport, the RPC stack,
/// the admission controller) plus the telemetry funnel itself. Registration
/// and export code living in these files escapes with a `metric:` comment
/// or a `lint.toml` allowlist entry.
const HOT_METRIC_MODULES: &[&str] = &[
    "crates/netsim/src/engine.rs",
    "crates/netsim/src/shard.rs",
    "crates/netsim/src/port.rs",
    "crates/qdisc/src/",
    "crates/transport/src/",
    "crates/rpc/src/stack.rs",
    "crates/core/src/controller.rs",
    "crates/telemetry/src/lib.rs",
];

/// Everything a rule needs to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative `/`-separated path.
    pub rel: &'a str,
    /// All tokens including comments.
    pub toks: &'a [Tok],
    /// Indices into `toks` of non-comment tokens.
    pub code: Vec<usize>,
    /// Line spans (inclusive) of `#[cfg(test)] mod` bodies.
    pub test_spans: Vec<(u32, u32)>,
    /// True when the whole file is test code (under `tests/`).
    pub whole_file_test: bool,
}

impl<'a> FileCtx<'a> {
    /// Build the context: filter comments, locate test-mod spans.
    pub fn new(rel: &'a str, toks: &'a [Tok]) -> Self {
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        // `tests/` directories are integration tests; a `tests.rs` module
        // file is by convention included via `#[cfg(test)] mod tests;`.
        let whole_file_test =
            rel.starts_with("tests/") || rel.contains("/tests/") || rel.ends_with("/tests.rs");
        let test_spans = find_test_spans(toks, &code);
        FileCtx {
            rel,
            toks,
            code,
            test_spans,
            whole_file_test,
        }
    }

    /// Is this line inside test code?
    pub fn in_test(&self, line: u32) -> bool {
        self.whole_file_test
            || self
                .test_spans
                .iter()
                .any(|&(a, b)| line >= a && line <= b)
    }

    /// Is there a justification comment for `line`: on the line itself, or
    /// in the contiguous run of comment lines directly above it? A comment
    /// qualifies when it contains `needle` (any comment if `needle` is
    /// empty).
    fn justified(&self, line: u32, needle: &str) -> bool {
        let comments = |l: u32| {
            self.toks.iter().filter(move |t| {
                matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) && t.line == l
            })
        };
        let hit =
            |l: u32| comments(l).any(|t| needle.is_empty() || t.text.contains(needle));
        if hit(line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && comments(l).next().is_some() {
            if hit(l) {
                return true;
            }
            l -= 1;
        }
        false
    }

    /// The `i`-th code token.
    fn c(&self, i: usize) -> &Tok {
        &self.toks[self.code[i]]
    }
}

/// Locate `#[cfg(test)] mod ... { ... }` spans by brace matching.
fn find_test_spans(toks: &[Tok], code: &[usize]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let t = |i: usize| -> &Tok { &toks[code[i]] };
    let mut i = 0;
    while i + 6 < code.len() {
        let is_cfg_test = t(i).text == "#"
            && t(i + 1).text == "["
            && t(i + 2).text == "cfg"
            && t(i + 3).text == "("
            && t(i + 4).text == "test"
            && t(i + 5).text == ")"
            && t(i + 6).text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then expect `mod name {`.
        let mut j = i + 7;
        while j + 1 < code.len() && t(j).text == "#" && t(j + 1).text == "[" {
            // Skip to matching `]`.
            let mut depth = 0;
            let mut k = j + 1;
            while k < code.len() {
                match t(k).text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
        }
        let is_mod = j < code.len() && t(j).text == "mod";
        if is_mod {
            // Find the `{` then its match.
            let mut k = j;
            while k < code.len() && t(k).text != "{" && t(k).text != ";" {
                k += 1;
            }
            if k < code.len() && t(k).text == "{" {
                let start_line = t(i).line;
                let mut depth = 0;
                let mut m = k;
                while m < code.len() {
                    match t(m).text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                let end_line = if m < code.len() {
                    t(m).line
                } else {
                    u32::MAX
                };
                spans.push((start_line, end_line));
                i = j;
                continue;
            }
        }
        i += 1;
    }
    spans
}

// Path helpers --------------------------------------------------------------

fn in_crate(rel: &str, name: &str) -> bool {
    rel.starts_with(&format!("crates/{name}/"))
}

fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// Structurally exempt from AQ003: code whose job is to produce output.
fn stdio_exempt(rel: &str) -> bool {
    in_crate(rel, "experiments")          // figure/sweep drivers print results
        || in_crate(rel, "telemetry")     // the sanctioned sink itself
        || in_crate(rel, "lint")          // this binary reports findings
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
        || rel.contains("/src/bin/")
        || rel.ends_with("/main.rs")
        || rel.ends_with("build.rs")
}

/// Run every enabled rule over one file.
pub fn check_file(cfg: &Config, rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    if cfg
        .global_allow
        .iter()
        .any(|g| glob_match(g, rel))
    {
        return;
    }
    let ctx = FileCtx::new(rel, toks);
    let enabled = |id: &str| -> bool {
        let r = cfg.rule(id);
        r.enabled && !r.allow.iter().any(|g| glob_match(g, rel))
    };
    if enabled("AQ001") {
        aq001_wall_clock(&ctx, out);
    }
    if enabled("AQ002") {
        aq002_ambient_randomness(&ctx, out);
    }
    if enabled("AQ003") {
        aq003_direct_stdio(&ctx, out);
    }
    if enabled("AQ004") {
        aq004_float_exact_compare(&ctx, out);
    }
    if enabled("AQ005") {
        aq005_raw_time_arith(&ctx, out);
    }
    if enabled("AQ006") {
        aq006_naked_unwrap(&ctx, out);
    }
    if enabled("AQ007") {
        aq007_unjustified_allow(&ctx, out);
    }
    if enabled("AQ008") {
        aq008_unordered_iteration(&ctx, out);
    }
    if enabled("AQ009") {
        aq009_unsafe(&ctx, out);
    }
    if enabled("AQ010") {
        aq010_todo(&ctx, out);
    }
    if enabled("AQ011") {
        aq011_hot_alloc(&ctx, out);
    }
    if enabled("AQ012") {
        aq012_string_keyed_telemetry(&ctx, out);
    }
    if enabled("AQ013") {
        aq013_trace_schema_drift(&ctx, out);
    }
    if enabled("AQ017") {
        aq017_library_unwrap(&ctx, out);
    }
}

fn finding(out: &mut Vec<Finding>, rule: &'static str, ctx: &FileCtx, t: &Tok, msg: String) {
    out.push(Finding {
        rule,
        path: ctx.rel.to_string(),
        line: t.line,
        col: t.col,
        message: msg,
    });
}

/// AQ001: `Instant` / `SystemTime` anywhere (even tests must be
/// deterministic; benchmarks go through vendored criterion, which is
/// allowlisted wholesale).
fn aq001_wall_clock(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for &i in &ctx.code {
        let t = &ctx.toks[i];
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            finding(
                out,
                "AQ001",
                ctx,
                t,
                format!(
                    "wall-clock type `{}` on a simulation path; use sim-core SimTime/SimDuration",
                    t.text
                ),
            );
        }
    }
}

/// AQ002: ambient randomness sources.
fn aq002_ambient_randomness(ctx: &FileCtx, out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &[
        "thread_rng",
        "from_entropy",
        "getrandom",
        "OsRng",
        "RandomState",
        "random_seed",
    ];
    for &i in &ctx.code {
        let t = &ctx.toks[i];
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            finding(
                out,
                "AQ002",
                ctx,
                t,
                format!(
                    "ambient randomness `{}`; derive a SimRng from the experiment seed instead",
                    t.text
                ),
            );
        }
    }
}

/// AQ003: `println!`-family outside the sanctioned output layers.
fn aq003_direct_stdio(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if stdio_exempt(ctx.rel) {
        return;
    }
    const MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];
    for w in 0..ctx.code.len().saturating_sub(1) {
        let (a, b) = (ctx.c(w), ctx.c(w + 1));
        if a.kind == TokKind::Ident
            && MACROS.contains(&a.text.as_str())
            && b.text == "!"
            && !ctx.in_test(a.line)
        {
            finding(
                out,
                "AQ003",
                ctx,
                a,
                format!(
                    "`{}!` bypasses aequitas-telemetry; use telemetry::diag/trace so sinks stay configurable",
                    a.text
                ),
            );
        }
    }
}

/// AQ004: `==` / `!=` with a float-literal operand, in non-test code.
fn aq004_float_exact_compare(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for w in 0..ctx.code.len().saturating_sub(1) {
        let (a, b) = (ctx.c(w), ctx.c(w + 1));
        let is_eq = a.text == "=" && b.text == "=";
        let is_ne = a.text == "!" && b.text == "=";
        if !(is_eq || is_ne) || a.kind != TokKind::Punct || b.kind != TokKind::Punct {
            continue;
        }
        // Require byte adjacency so `a = =b` noise (never valid Rust) or a
        // `!` macro bang far from an `=` cannot pair up.
        if a.line != b.line || b.col != a.col + 1 {
            continue;
        }
        if ctx.in_test(a.line) {
            continue;
        }
        let prev_float = w > 0 && ctx.c(w - 1).kind == TokKind::Float;
        let next_float = w + 2 < ctx.code.len() && ctx.c(w + 2).kind == TokKind::Float;
        if prev_float || next_float {
            finding(
                out,
                "AQ004",
                ctx,
                a,
                "exact float comparison; compare with an explicit tolerance or via f64::to_bits()"
                    .to_string(),
            );
        }
    }
}

/// AQ005: arithmetic directly on `as_ps()` results (outside sim-core,
/// which implements the newtypes and owns the raw representation).
fn aq005_raw_time_arith(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if in_crate(ctx.rel, "sim-core") || in_crate(ctx.rel, "lint") {
        return;
    }
    const OPS: &[&str] = &["+", "-", "*", "/", "%"];
    let n = ctx.code.len();
    for w in 0..n.saturating_sub(2) {
        let t = ctx.c(w);
        if !(t.kind == TokKind::Ident && t.text == "as_ps") {
            continue;
        }
        if !(ctx.c(w + 1).text == "(" && ctx.c(w + 2).text == ")") {
            continue;
        }
        if ctx.in_test(t.line) {
            continue;
        }
        // Skip `as u64` / `as f64` casts after the call.
        let mut j = w + 3;
        while j + 1 < n && ctx.c(j).text == "as" && ctx.c(j + 1).kind == TokKind::Ident {
            j += 2;
        }
        if j < n {
            let op = ctx.c(j);
            let next_is_assign = j + 1 < n && ctx.c(j + 1).text == "=";
            if op.kind == TokKind::Punct && OPS.contains(&op.text.as_str()) && !next_is_assign {
                // `->` return arrows can't follow a call; `-` here is real
                // arithmetic.
                finding(
                    out,
                    "AQ005",
                    ctx,
                    t,
                    format!(
                        "raw `{}` on as_ps() picoseconds; use SimTime/SimDuration operators or helpers",
                        op.text
                    ),
                );
            }
        }
    }
}

/// AQ006: `.unwrap()` in hot-path crates. `.expect("invariant")` is the
/// sanctioned replacement — the message documents why failure is
/// impossible, and shows up in a panic backtrace if it ever isn't.
fn aq006_naked_unwrap(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let Some(krate) = crate_of(ctx.rel) else {
        return;
    };
    if !HOT_PATH.contains(&krate) {
        return;
    }
    let n = ctx.code.len();
    for w in 1..n.saturating_sub(2) {
        let t = ctx.c(w);
        if t.kind == TokKind::Ident
            && t.text == "unwrap"
            && ctx.c(w - 1).text == "."
            && ctx.c(w + 1).text == "("
            && ctx.c(w + 2).text == ")"
            && !ctx.in_test(t.line)
        {
            finding(
                out,
                "AQ006",
                ctx,
                t,
                "naked .unwrap() on a hot path; use .expect(\"why this cannot fail\")".to_string(),
            );
        }
    }
}

/// AQ017: `.unwrap()` / `.expect()` in replay *library* code. The replay
/// tools exist to diagnose malformed or divergent traces — panicking on
/// exactly those inputs defeats them, so library paths must surface
/// contextful errors instead. Scoped to `crates/replay/src/` minus the CLI
/// entry point (`main.rs` may unwrap on already-reported errors) and test
/// code. AQ006's hot-path crates sanction `.expect("why")`; here even that
/// is a panic on user input, hence the separate rule. A genuinely
/// unreachable state escapes with a `panic:` comment arguing why.
fn aq017_library_unwrap(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.rel.starts_with("crates/replay/src/") || ctx.rel.ends_with("/main.rs") {
        return;
    }
    let n = ctx.code.len();
    for w in 1..n.saturating_sub(1) {
        let t = ctx.c(w);
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && ctx.c(w - 1).text == "."
            && ctx.c(w + 1).text == "("
            && !ctx.in_test(t.line)
            && !ctx.justified(t.line, "panic:")
        {
            finding(
                out,
                "AQ017",
                ctx,
                t,
                format!(
                    ".{}() in replay library code panics on malformed traces; bubble a contextful error instead",
                    t.text
                ),
            );
        }
    }
}

/// AQ007: `#[allow(clippy::...)]` (or `#![allow]`) without a
/// justification comment on the same line or the line above.
fn aq007_unjustified_allow(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let n = ctx.code.len();
    for w in 0..n.saturating_sub(4) {
        if ctx.c(w).text != "#" {
            continue;
        }
        let mut j = w + 1;
        if j < n && ctx.c(j).text == "!" {
            j += 1;
        }
        if !(j + 2 < n && ctx.c(j).text == "[" && ctx.c(j + 1).text == "allow") {
            continue;
        }
        let open = j + 2;
        if ctx.c(open).text != "(" {
            continue;
        }
        let arg = if open + 1 < n { ctx.c(open + 1) } else { continue };
        if arg.text != "clippy" {
            continue;
        }
        let t = ctx.c(w);
        if !ctx.justified(t.line, "") {
            finding(
                out,
                "AQ007",
                ctx,
                t,
                "#[allow(clippy::...)] without a justification comment on this line or the line above"
                    .to_string(),
            );
        }
    }
}

/// AQ008: HashMap/HashSet construction without a `det:` comment arguing
/// why the map's (per-process random) iteration order cannot reach
/// simulation results or printed output.
fn aq008_unordered_iteration(ctx: &FileCtx, out: &mut Vec<Finding>) {
    const CTORS: &[&str] = &["new", "with_capacity", "default", "from", "from_iter"];
    let n = ctx.code.len();
    for w in 0..n.saturating_sub(3) {
        let t = ctx.c(w);
        if !(t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet")) {
            continue;
        }
        if !(ctx.c(w + 1).text == ":" && ctx.c(w + 2).text == ":") {
            continue;
        }
        let m = ctx.c(w + 3);
        if !(m.kind == TokKind::Ident && CTORS.contains(&m.text.as_str())) {
            continue;
        }
        if ctx.in_test(t.line) {
            continue;
        }
        if !ctx.justified(t.line, "det:") {
            finding(
                out,
                "AQ008",
                ctx,
                t,
                format!(
                    "{} construction without a `det:` justification; iteration order is per-process random — \
                     sort before iterating or use BTreeMap/BTreeSet",
                    t.text
                ),
            );
        }
    }
}

/// AQ009: `unsafe` anywhere, tests included.
fn aq009_unsafe(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for &i in &ctx.code {
        let t = &ctx.toks[i];
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            finding(
                out,
                "AQ009",
                ctx,
                t,
                "unsafe code in a 100%-safe workspace; redesign or raise it in DESIGN.md first".to_string(),
            );
        }
    }
}

/// AQ010: `todo!` / `unimplemented!` in non-test code.
fn aq010_todo(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for w in 0..ctx.code.len().saturating_sub(1) {
        let (a, b) = (ctx.c(w), ctx.c(w + 1));
        if a.kind == TokKind::Ident
            && (a.text == "todo" || a.text == "unimplemented")
            && b.text == "!"
            && !ctx.in_test(a.line)
        {
            finding(
                out,
                "AQ010",
                ctx,
                a,
                format!("`{}!` will panic at runtime; finish the path or return an error", a.text),
            );
        }
    }
}

/// AQ011: heap allocation on the per-event path. `Box::new`, `vec![...]`,
/// and `Vec::new()` (which starts at capacity 0 and reallocates as it
/// grows) churn the allocator once per packet/event; the sanctioned forms
/// are the sim-core arena types (`Slab`, `VecPool`), `Vec::with_capacity`
/// at setup time, or buffer reuse. An `alloc:` comment marks audited
/// cold-path allocations (setup code that happens to live in a hot
/// module).
fn aq011_hot_alloc(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let hot = HOT_ALLOC_MODULES
        .iter()
        .any(|m| ctx.rel == *m || (m.ends_with('/') && ctx.rel.starts_with(m)));
    if !hot {
        return;
    }
    let n = ctx.code.len();
    let mut fire = |t: &Tok, what: &str| {
        if ctx.in_test(t.line) || ctx.justified(t.line, "alloc:") {
            return;
        }
        finding(
            out,
            "AQ011",
            ctx,
            t,
            format!(
                "`{what}` allocates on a per-event module; recycle via Slab/VecPool, \
                 preallocate with with_capacity, or justify with an `alloc:` comment"
            ),
        );
    };
    for w in 0..n.saturating_sub(1) {
        let t = ctx.c(w);
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "vec" && ctx.c(w + 1).text == "!" {
            fire(t, "vec!");
            continue;
        }
        if (t.text == "Box" || t.text == "Vec")
            && w + 3 < n
            && ctx.c(w + 1).text == ":"
            && ctx.c(w + 2).text == ":"
            && ctx.c(w + 3).text == "new"
        {
            fire(t, if t.text == "Box" { "Box::new" } else { "Vec::new" });
        }
    }
}

/// AQ012: telemetry that allocates or hashes strings per event. The dense
/// fast path interns a `MetricId` once at wiring time and updates through
/// `counter_add_id`/`gauge_set_id`/`hist_record_id`; trace serialization
/// reuses a scratch buffer via `write_json`. In the designated hot modules
/// this rule flags the string-keyed shims (`counter_add`, `gauge_set`,
/// `hist_record`), label construction with `format!` / `String::new`, and
/// per-event `.to_json()` calls. One-time registration and dump/export code
/// that happens to live in a hot module escapes with a `metric:` comment;
/// whole setup/export files belong in the `lint.toml` allowlist.
fn aq012_string_keyed_telemetry(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let hot = HOT_METRIC_MODULES
        .iter()
        .any(|m| ctx.rel == *m || (m.ends_with('/') && ctx.rel.starts_with(m)));
    if !hot {
        return;
    }
    const STRING_KEYED: &[&str] = &["counter_add", "gauge_set", "hist_record"];
    let n = ctx.code.len();
    let mut fire = |t: &Tok, what: &str, fix: &str| {
        if ctx.in_test(t.line) || ctx.justified(t.line, "metric:") {
            return;
        }
        finding(
            out,
            "AQ012",
            ctx,
            t,
            format!("`{what}` on a telemetry hot path; {fix}, or justify with a `metric:` comment"),
        );
    };
    for w in 0..n {
        let t = ctx.c(w);
        if t.kind != TokKind::Ident {
            continue;
        }
        // `.counter_add(...)` — the string-keyed interning shim. The
        // `*_id` variants tokenize as distinct idents and never match.
        if STRING_KEYED.contains(&t.text.as_str())
            && w >= 1
            && ctx.c(w - 1).text == "."
            && w + 1 < n
            && ctx.c(w + 1).text == "("
        {
            fire(
                t,
                &format!(".{}(name, labels, ..)", t.text),
                "intern a MetricId at wiring time and use the `_id` variant",
            );
            continue;
        }
        // `format!(...)` — per-event label/string construction.
        if t.text == "format" && w + 1 < n && ctx.c(w + 1).text == "!" {
            fire(t, "format!", "build strings once at registration time");
            continue;
        }
        // `String::new()` — an empty-label allocation per call.
        if t.text == "String"
            && w + 3 < n
            && ctx.c(w + 1).text == ":"
            && ctx.c(w + 2).text == ":"
            && ctx.c(w + 3).text == "new"
        {
            fire(t, "String::new", "intern the label at wiring time");
            continue;
        }
        // `.to_json(...)` — allocates a fresh String per event; sinks
        // should serialize through `write_json` into a reused scratch.
        if t.text == "to_json" && w >= 1 && ctx.c(w - 1).text == "." && w + 1 < n && ctx.c(w + 1).text == "(" {
            fire(
                t,
                ".to_json()",
                "serialize into a reused buffer via write_json",
            );
        }
    }
}

/// The file AQ013 guards: the wire-format definition of the trace.
const TRACE_SCHEMA_FILE: &str = "crates/telemetry/src/trace.rs";

/// FNV-1a-64 over the schema-relevant shape of `TraceEvent`.
fn fnv1a64(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// AQ013: the trace schema (the `TraceEvent` enum in
/// `crates/telemetry/src/trace.rs`) is a wire format — external replay
/// tooling keys on `TRACE_SCHEMA_VERSION`. This rule fingerprints the
/// enum's variant and field names and compares it with the declared
/// `TRACE_SCHEMA_FINGERPRINT` constant; adding/renaming/removing a
/// variant or field without touching the constant (and, per its docs,
/// bumping `TRACE_SCHEMA_VERSION`) is flagged with the new fingerprint to
/// paste. A field whose line (or the comment block above it) carries a
/// `schema:` justification is excluded from the fingerprint — the escape
/// hatch for additions that provably do not change the serialized form.
fn aq013_trace_schema_drift(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.rel != TRACE_SCHEMA_FILE {
        return;
    }
    let n = ctx.code.len();
    // Locate `pub enum TraceEvent {`.
    let mut start = None;
    for i in 0..n.saturating_sub(3) {
        if ctx.c(i).text == "pub"
            && ctx.c(i + 1).text == "enum"
            && ctx.c(i + 2).text == "TraceEvent"
            && ctx.c(i + 3).text == "{"
        {
            start = Some(i + 3);
            break;
        }
    }
    let Some(open) = start else {
        finding(
            out,
            "AQ013",
            ctx,
            ctx.c(0),
            "cannot find `pub enum TraceEvent` to fingerprint; \
             if the enum moved, update the AQ013 rule"
                .to_string(),
        );
        return;
    };
    // Walk the enum body, hashing variant names (brace depth 1) and
    // struct-variant field names (depth 2, `ident :` after `{` or `,`).
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut depth = 0i32;
    let mut i = open;
    let mut prev_text: Option<&str> = None;
    while i < n {
        let t = ctx.c(i);
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            _ => {
                if t.kind == TokKind::Ident && !ctx.justified(t.line, "schema:") {
                    // `]` covers a variant directly after a `#[...]` attribute.
                    let is_variant =
                        depth == 1 && matches!(prev_text, Some("{" | "," | "}" | ")" | "]"));
                    let is_field = depth == 2
                        && matches!(prev_text, Some("{" | ","))
                        && i + 1 < n
                        && ctx.c(i + 1).text == ":";
                    if is_variant {
                        hash = fnv1a64(hash, t.text.as_bytes());
                        hash = fnv1a64(hash, b"|");
                    } else if is_field {
                        hash = fnv1a64(hash, b".");
                        hash = fnv1a64(hash, t.text.as_bytes());
                    }
                }
            }
        }
        prev_text = Some(&t.text);
        i += 1;
    }
    // Locate the declared constant: `TRACE_SCHEMA_FINGERPRINT ... = <int>`.
    let mut declared = None;
    for i in 0..n {
        if ctx.c(i).text == "TRACE_SCHEMA_FINGERPRINT" {
            for j in i + 1..n.min(i + 8) {
                if ctx.c(j).kind == TokKind::Int {
                    let lit = ctx
                        .c(j)
                        .text
                        .trim_end_matches("u64")
                        .replace('_', "");
                    declared = Some((
                        j,
                        if let Some(hex) = lit.strip_prefix("0x") {
                            u64::from_str_radix(hex, 16).ok()
                        } else {
                            lit.parse::<u64>().ok()
                        },
                    ));
                    break;
                }
            }
            break;
        }
    }
    let Some((at, Some(value))) = declared else {
        finding(
            out,
            "AQ013",
            ctx,
            ctx.c(open),
            format!(
                "cannot find an integer `TRACE_SCHEMA_FINGERPRINT` constant; declare it as \
                 0x{hash:016x}"
            ),
        );
        return;
    };
    if value != hash {
        finding(
            out,
            "AQ013",
            ctx,
            ctx.c(at),
            format!(
                "trace event schema drifted: TraceEvent fingerprint is 0x{hash:016x} but \
                 TRACE_SCHEMA_FINGERPRINT declares 0x{value:016x}; bump TRACE_SCHEMA_VERSION, \
                 set the fingerprint to 0x{hash:016x}, and teach crates/replay the new \
                 version (or mark a non-serialized field with a `schema:` comment)"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let cfg = Config::default();
        let toks = tokenize(src);
        let mut out = Vec::new();
        check_file(&cfg, rel, &toks, &mut out);
        out
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn aq001_fires_on_instant_but_not_in_comments_or_strings() {
        let f = run(
            "crates/netsim/src/engine.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert_eq!(rules_of(&f), vec!["AQ001"]);
        assert_eq!(f[0].line, 1);

        // Doc comments, line comments, strings, raw strings: all clean.
        let clean = run(
            "crates/netsim/src/engine.rs",
            r###"
/// The `Instant` at which the event fires (SystemTime analogy).
// Instant::now() would be wrong here.
fn f() {
    let s = "Instant::now()";
    let r = r#"SystemTime::now()"#;
    let _ = (s, r);
}
"###,
        );
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn aq001_fires_even_in_test_mods() {
        let f = run(
            "crates/netsim/src/engine.rs",
            "#[cfg(test)]\nmod tests { fn f() { let _ = Instant::now(); } }",
        );
        assert_eq!(rules_of(&f), vec!["AQ001"]);
    }

    #[test]
    fn aq002_fires_on_thread_rng() {
        let f = run("crates/core/src/lib.rs", "let mut rng = thread_rng();");
        assert_eq!(rules_of(&f), vec!["AQ002"]);
        let clean = run("crates/core/src/lib.rs", "let rng = SimRng::new(seed);");
        assert!(clean.is_empty());
    }

    #[test]
    fn aq003_scoping() {
        let src = "fn f() { println!(\"x\"); }";
        assert_eq!(rules_of(&run("crates/core/src/lib.rs", src)), vec!["AQ003"]);
        // Exempt locations:
        assert!(run("crates/experiments/src/fig12.rs", src).is_empty());
        assert!(run("crates/telemetry/src/lib.rs", src).is_empty());
        assert!(run("crates/core/benches/micro.rs", src).is_empty());
        assert!(run("crates/experiments/src/bin/aequitas-sim.rs", src).is_empty());
        assert!(run("tests/integration.rs", src).is_empty());
        // Test mod inside a library crate:
        let in_test = "#[cfg(test)]\nmod tests { fn f() { println!(\"x\"); } }";
        assert!(run("crates/core/src/lib.rs", in_test).is_empty());
    }

    #[test]
    fn aq004_float_eq() {
        let f = run("crates/core/src/lib.rs", "if p == 1.0 { }");
        assert_eq!(rules_of(&f), vec!["AQ004"]);
        let f = run("crates/core/src/lib.rs", "if 0.5 != x { }");
        assert_eq!(rules_of(&f), vec!["AQ004"]);
        // Integers, orderings, and tolerance comparisons are fine.
        assert!(run("crates/core/src/lib.rs", "if p == 1 { }").is_empty());
        assert!(run("crates/core/src/lib.rs", "if p <= 1.0 { }").is_empty());
        assert!(run("crates/core/src/lib.rs", "if (p - 1.0).abs() < 1e-9 { }").is_empty());
        // Test code may assert exact floats.
        assert!(run(
            "crates/core/src/lib.rs",
            "#[cfg(test)]\nmod t { fn f() { assert!(p == 1.0); } }"
        )
        .is_empty());
    }

    #[test]
    fn aq005_raw_time_arith() {
        let f = run(
            "crates/transport/src/swift.rs",
            "let x = t.as_ps() + d.as_ps();",
        );
        assert_eq!(rules_of(&f), vec!["AQ005"]);
        // Through a cast:
        let f = run(
            "crates/transport/src/swift.rs",
            "let x = (s.as_ps() as f64 * 0.875) as u64;",
        );
        assert_eq!(rules_of(&f), vec!["AQ005"]);
        // Comparisons and method calls on the raw value are fine.
        assert!(run("crates/transport/src/swift.rs", "if a.as_ps() < b.as_ps() { }").is_empty());
        assert!(run(
            "crates/transport/src/swift.rs",
            "let x = a.as_ps().saturating_mul(2);"
        )
        .is_empty());
        // sim-core implements the newtypes; raw arithmetic is its job.
        assert!(run("crates/sim-core/src/time.rs", "let x = t.as_ps() + 1;").is_empty());
    }

    #[test]
    fn aq006_naked_unwrap_scoped_to_hot_path() {
        let src = "fn f() { q.pop().unwrap(); }";
        assert_eq!(rules_of(&run("crates/netsim/src/port.rs", src)), vec!["AQ006"]);
        assert_eq!(rules_of(&run("crates/qdisc/src/wfq.rs", src)), vec!["AQ006"]);
        // expect() with a message is the sanctioned form.
        assert!(run(
            "crates/netsim/src/port.rs",
            "fn f() { q.pop().expect(\"kicked only when backlogged\"); }"
        )
        .is_empty());
        // Cold crates and tests may unwrap.
        assert!(run("crates/experiments/src/lib.rs", src).is_empty());
        assert!(run(
            "crates/netsim/src/port.rs",
            "#[cfg(test)]\nmod t { fn f() { q.pop().unwrap(); } }"
        )
        .is_empty());
    }

    #[test]
    fn aq007_allow_needs_comment() {
        let f = run(
            "crates/core/src/lib.rs",
            "#[allow(clippy::too_many_arguments)]\nfn f() {}",
        );
        assert_eq!(rules_of(&f), vec!["AQ007"]);
        assert!(run(
            "crates/core/src/lib.rs",
            "// the builder mirrors the paper's parameter table\n#[allow(clippy::too_many_arguments)]\nfn f() {}"
        )
        .is_empty());
        // Non-clippy allows (e.g. dead_code during staging) are clippy-free.
        assert!(run("crates/core/src/lib.rs", "#[allow(dead_code)]\nfn f() {}").is_empty());
    }

    #[test]
    fn aq008_hash_construction_needs_det_comment() {
        let f = run(
            "crates/core/src/quota.rs",
            "let m: HashMap<u64, f64> = HashMap::new();",
        );
        assert_eq!(rules_of(&f), vec!["AQ008"]);
        assert!(run(
            "crates/core/src/quota.rs",
            "// det: keyed access only, never iterated\nlet m: HashMap<u64, f64> = HashMap::new();"
        )
        .is_empty());
        // Type annotations alone (no construction) do not fire.
        assert!(run("crates/core/src/quota.rs", "fn f(m: &HashMap<u64, f64>) {}").is_empty());
    }

    #[test]
    fn aq009_and_aq010() {
        assert_eq!(
            rules_of(&run("crates/core/src/lib.rs", "unsafe { std::hint::unreachable_unchecked() }")),
            vec!["AQ009"]
        );
        assert_eq!(
            rules_of(&run("crates/core/src/lib.rs", "fn f() { todo!() }")),
            vec!["AQ010"]
        );
        assert!(run(
            "crates/core/src/lib.rs",
            "#[cfg(test)]\nmod t { fn f() { todo!() } }"
        )
        .is_empty());
    }

    #[test]
    fn aq011_hot_path_allocation() {
        // All three forms fire in a designated per-event module.
        let f = run(
            "crates/netsim/src/engine.rs",
            "fn f() { let b = Box::new(ev); let v = Vec::new(); let w = vec![0; 4]; }",
        );
        assert_eq!(rules_of(&f), vec!["AQ011", "AQ011", "AQ011"]);
        // with_capacity is the sanctioned preallocation.
        assert!(run(
            "crates/netsim/src/engine.rs",
            "fn f() { let v: Vec<u32> = Vec::with_capacity(1024); }"
        )
        .is_empty());
        // An `alloc:` justification on the line above escapes.
        assert!(run(
            "crates/qdisc/src/wfq.rs",
            "// alloc: once per port at setup, never per packet\nfn f() { let v = Vec::new(); }"
        )
        .is_empty());
        // Cold modules of hot crates (e.g. the topology builder) and other
        // crates are out of scope.
        let src = "fn f() { let v = vec![0; 4]; }";
        assert!(run("crates/netsim/src/topology.rs", src).is_empty());
        assert!(run("crates/experiments/src/slo.rs", src).is_empty());
        // Test code may allocate.
        assert!(run(
            "crates/netsim/src/engine.rs",
            "#[cfg(test)]\nmod t { fn f() { let v = vec![1]; } }"
        )
        .is_empty());
    }

    #[test]
    fn aq012_string_keyed_telemetry() {
        // String-keyed metric shims fire in hot modules.
        let f = run(
            "crates/rpc/src/stack.rs",
            "fn f() { m.counter_add(\"rpc.issued\", l, 1); m.gauge_set(\"g\", l, 1.0); }",
        );
        assert_eq!(rules_of(&f), vec!["AQ012", "AQ012"]);
        // The interned `_id` variants are the sanctioned form.
        assert!(run(
            "crates/rpc/src/stack.rs",
            "fn f() { m.counter_add_id(id, 1); m.gauge_set_id(id, 1.0); m.hist_record_id(id, 5); }"
        )
        .is_empty());
        // Per-event label construction fires...
        let f = run(
            "crates/netsim/src/engine.rs",
            "fn f() { let l = format!(\"sw={i}\"); let e = String::new(); }",
        );
        assert_eq!(rules_of(&f), vec!["AQ012", "AQ012"]);
        // ...but a `metric:` justification escapes registration-time code.
        assert!(run(
            "crates/netsim/src/engine.rs",
            "// metric: one-time registration at wiring, not per event\nfn f() { let l = format!(\"sw={i}\"); }"
        )
        .is_empty());
        // Per-event to_json allocation fires; write_json into a scratch is
        // the sanctioned form.
        let f = run(
            "crates/telemetry/src/lib.rs",
            "fn f() { let s = event.to_json(seq, t); }",
        );
        assert_eq!(rules_of(&f), vec!["AQ012"]);
        assert!(run(
            "crates/telemetry/src/lib.rs",
            "fn f() { event.write_json(&mut scratch, seq, t); }"
        )
        .is_empty());
        // Cold modules and test code are out of scope.
        let src = "fn f() { m.counter_add(\"x\", l, 1); }";
        assert!(run("crates/experiments/src/fig12.rs", src).is_empty());
        assert!(run(
            "crates/rpc/src/stack.rs",
            "#[cfg(test)]\nmod t { fn f() { m.counter_add(\"x\", l, 1); } }"
        )
        .is_empty());
    }

    #[test]
    fn aq013_trace_schema_drift() {
        // A matching fingerprint is clean. (Value computed by hand below:
        // the rule hashes "A|.x" then "B|".)
        let body = "pub enum TraceEvent { A { x: u64 }, B }";
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in b"A|.xB|" {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let ok = format!("{body}\npub const TRACE_SCHEMA_FINGERPRINT: u64 = 0x{h:016x};");
        assert!(run(TRACE_SCHEMA_FILE, &ok).is_empty(), "{h:#x}");

        // Adding a field without touching the constant fires, and the
        // message carries the new fingerprint to paste.
        let drift = format!(
            "pub enum TraceEvent {{ A {{ x: u64, y: u64 }}, B }}\n\
             pub const TRACE_SCHEMA_FINGERPRINT: u64 = 0x{h:016x};"
        );
        let f = run(TRACE_SCHEMA_FILE, &drift);
        assert_eq!(rules_of(&f), vec!["AQ013"]);
        assert!(f[0].message.contains("bump TRACE_SCHEMA_VERSION"), "{}", f[0].message);

        // ...unless the new field carries a `schema:` justification.
        let justified = format!(
            "pub enum TraceEvent {{ A {{ x: u64,\n\
             // schema: in-memory only, never serialized\n\
             y: u64\n\
             }}, B }}\n\
             pub const TRACE_SCHEMA_FINGERPRINT: u64 = 0x{h:016x};"
        );
        assert!(run(TRACE_SCHEMA_FILE, &justified).is_empty());

        // The rule only guards the schema file.
        let elsewhere = "pub enum TraceEvent { A { x: u64, y: u64 }, B }";
        assert!(run("crates/replay/src/trace.rs", elsewhere).is_empty());

        // A missing constant is itself a finding.
        let f = run(TRACE_SCHEMA_FILE, body);
        assert_eq!(rules_of(&f), vec!["AQ013"]);
        assert!(f[0].message.contains("cannot find"), "{}", f[0].message);
    }

    #[test]
    fn config_allowlists_and_disables() {
        let cfg = Config::parse(
            "[global]\nallow = [\"vendor/**\"]\n[AQ001]\nallow = [\"crates/bench/**\"]\n[AQ009]\nenabled = false\n",
        )
        .unwrap();
        let check = |rel: &str, src: &str| -> Vec<Finding> {
            let toks = tokenize(src);
            let mut out = Vec::new();
            check_file(&cfg, rel, &toks, &mut out);
            out
        };
        // Global allow silences everything in vendor.
        assert!(check("vendor/criterion/src/lib.rs", "let t = Instant::now(); unsafe {}").is_empty());
        // Per-rule allow silences only that rule.
        assert!(check("crates/bench/src/lib.rs", "let t = Instant::now();").is_empty());
        assert_eq!(
            rules_of(&check("crates/bench/src/lib.rs", "unsafe {}")),
            Vec::<&str>::new(),
            "AQ009 disabled globally"
        );
        assert_eq!(
            rules_of(&check("crates/core/src/lib.rs", "let t = Instant::now();")),
            vec!["AQ001"]
        );
    }

    #[test]
    fn test_span_detection_handles_nested_braces() {
        let src = r#"
fn prod() { let x = 1.0; if x == 1.0 {} }
#[cfg(test)]
mod tests {
    fn deep() { if a { if b { assert!(x == 1.0); } } }
}
fn prod2() { if y == 2.0 {} }
"#;
        let f = run("crates/core/src/lib.rs", src);
        // Only the two non-test comparisons fire.
        assert_eq!(rules_of(&f), vec!["AQ004", "AQ004"]);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 7);
    }
}
