//! Cross-implementation properties: the paper treats "WFQ" as one
//! mechanism with interchangeable realizations (virtual-time/PGPS and DWRR,
//! footnote 1). These tests check that the two implementations — and SPQ as
//! the degenerate infinite-weight-ratio case — agree where theory says they
//! must.

use aequitas_qdisc::{DwrrScheduler, Scheduler, SpqScheduler, WfqScheduler};
use proptest::prelude::*;

/// Drive both schedulers with an identical continuously-backlogged workload
/// and compare long-run per-class byte shares.
fn service_shares<S: Scheduler<u64>>(s: &mut S, classes: usize, pkt_bytes: u32, serves: usize) -> Vec<f64> {
    // Keep every class saturated.
    for round in 0..(serves * 2) {
        for c in 0..classes {
            let _ = s.enqueue(c, pkt_bytes, (round * classes + c) as u64);
        }
    }
    let mut served = vec![0u64; classes];
    for _ in 0..serves {
        let d = s.dequeue().expect("backlogged");
        served[d.class] += d.bytes as u64;
    }
    let total: u64 = served.iter().sum();
    served.iter().map(|&b| b as f64 / total as f64).collect()
}

#[test]
fn wfq_and_dwrr_converge_to_the_same_shares() {
    let weights = [8.0, 4.0, 1.0];
    let mut wfq = WfqScheduler::new(&weights, None);
    let mut dwrr = DwrrScheduler::new(&weights, 4096, None);
    let a = service_shares(&mut wfq, 3, 4160, 4000);
    let b = service_shares(&mut dwrr, 3, 4160, 4000);
    for c in 0..3 {
        assert!(
            (a[c] - b[c]).abs() < 0.02,
            "class {c}: WFQ {:.3} vs DWRR {:.3}",
            a[c],
            b[c]
        );
        let want = weights[c] / 13.0;
        assert!((a[c] - want).abs() < 0.02, "class {c}: {:.3} vs {want:.3}", a[c]);
    }
}

#[test]
fn extreme_weight_ratio_approaches_spq() {
    // WFQ with a 10000:1 ratio serves almost exactly like SPQ while the
    // high class is backlogged.
    let mut wfq = WfqScheduler::new(&[10_000.0, 1.0], None);
    let mut spq = SpqScheduler::new(2, None);
    let a = service_shares(&mut wfq, 2, 1500, 2000);
    let b = service_shares(&mut spq, 2, 1500, 2000);
    assert!((a[0] - b[0]).abs() < 0.01, "WFQ {:.4} vs SPQ {:.4}", a[0], b[0]);
    assert!(a[0] > 0.99);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// For any positive weights, both implementations deliver shares within
    /// 3 points of the theoretical weight fractions under saturation.
    #[test]
    fn prop_shares_match_weights(
        w0 in 1u32..32,
        w1 in 1u32..32,
        w2 in 1u32..32,
        pkt in 256u32..4200,
    ) {
        let weights = [w0 as f64, w1 as f64, w2 as f64];
        let total: f64 = weights.iter().sum();
        let mut wfq = WfqScheduler::new(&weights, None);
        let mut dwrr = DwrrScheduler::new(&weights, 4096, None);
        let a = service_shares(&mut wfq, 3, pkt, 3000);
        let b = service_shares(&mut dwrr, 3, pkt, 3000);
        for c in 0..3 {
            let want = weights[c] / total;
            prop_assert!((a[c] - want).abs() < 0.03, "wfq class {c}: {} vs {want}", a[c]);
            prop_assert!((b[c] - want).abs() < 0.03, "dwrr class {c}: {} vs {want}", b[c]);
        }
    }

    /// Work conservation for all three disciplines: with any backlog at all,
    /// dequeue never returns None, and total dequeued bytes equals total
    /// enqueued bytes after a drain.
    #[test]
    fn prop_work_conservation(
        ops in proptest::collection::vec((0usize..3usize, 64u32..9000), 1..200)
    ) {
        let mut wfq = WfqScheduler::new(&[4.0, 2.0, 1.0], None);
        let mut dwrr = DwrrScheduler::new(&[4.0, 2.0, 1.0], 1500, None);
        let mut spq = SpqScheduler::new(3, None);
        let mut total = 0u64;
        for (i, &(c, b)) in ops.iter().enumerate() {
            wfq.enqueue(c, b, i as u64).unwrap();
            dwrr.enqueue(c, b, i as u64).unwrap();
            spq.enqueue(c, b, i as u64).unwrap();
            total += b as u64;
        }
        let drain = |s: &mut dyn Scheduler<u64>| {
            let mut got = 0u64;
            while let Some(d) = s.dequeue() {
                got += d.bytes as u64;
            }
            got
        };
        prop_assert_eq!(drain(&mut wfq), total);
        prop_assert_eq!(drain(&mut dwrr), total);
        prop_assert_eq!(drain(&mut spq), total);
    }
}
