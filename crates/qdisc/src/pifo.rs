//! Push-in-first-out priority queue with drop-from-tail-of-priority.
//!
//! The primitive behind pFabric's switch: dequeue always takes the packet
//! with the *smallest* rank (e.g. remaining flow size); when the buffer is
//! full, the packet with the *largest* rank is evicted to make room — so
//! short flows can never be blocked behind long ones. Ties break in arrival
//! order, keeping the simulation deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    rank: u64,
    seq: u64,
    bytes: u32,
    item: T,
}

// Min-heap ordering by (rank, seq).
struct MinEntry<T>(Entry<T>);
impl<T> PartialEq for MinEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.rank == other.0.rank && self.0.seq == other.0.seq
    }
}
impl<T> Eq for MinEntry<T> {}
impl<T> PartialOrd for MinEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for MinEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .rank
            .cmp(&self.0.rank)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

// Max-heap ordering by (rank, seq): among equal ranks evict the *newest*.
struct MaxKey {
    rank: u64,
    seq: u64,
}
impl PartialEq for MaxKey {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.seq == other.seq
    }
}
impl Eq for MaxKey {}
impl PartialOrd for MaxKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MaxKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank.cmp(&other.rank).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// What happened when a packet was pushed into a full [`PifoQueue`].
#[derive(Debug)]
pub enum PifoPush<T> {
    /// The packet was admitted without evicting anything.
    Admitted,
    /// The packet was admitted; the returned (rank, bytes, item) was evicted.
    Evicted(u64, u32, T),
    /// The packet was rejected because its rank is no better than the worst
    /// resident packet (or it alone exceeds capacity).
    Rejected(T),
}

/// A priority queue that dequeues the smallest rank and evicts the largest
/// rank on overflow.
///
/// Implemented with twin heaps plus a lazy-deletion tombstone set keyed by
/// `seq`; both push and pop are `O(log n)` amortized.
pub struct PifoQueue<T> {
    min_heap: BinaryHeap<MinEntry<T>>,
    max_heap: BinaryHeap<MaxKey>,
    dead: std::collections::HashSet<u64>,
    next_seq: u64,
    bytes: u64,
    packets: usize,
    capacity_bytes: Option<u64>,
    drops: u64,
}

impl<T> PifoQueue<T> {
    /// Create a PIFO with an optional byte capacity.
    pub fn new(capacity_bytes: Option<u64>) -> Self {
        PifoQueue {
            min_heap: BinaryHeap::new(),
            max_heap: BinaryHeap::new(),
            // det: lazy-deletion tombstones; membership tests only, never iterated
            dead: std::collections::HashSet::new(),
            next_seq: 0,
            bytes: 0,
            packets: 0,
            capacity_bytes,
            drops: 0,
        }
    }

    /// Queued bytes.
    pub fn backlog_bytes(&self) -> u64 {
        self.bytes
    }
    /// Queued packets.
    pub fn backlog_packets(&self) -> usize {
        self.packets
    }
    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.packets == 0
    }
    /// Packets dropped (rejected or evicted).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    fn worst_resident_rank(&mut self) -> Option<u64> {
        while let Some(top) = self.max_heap.peek() {
            if self.dead.contains(&top.seq) {
                let seq = top.seq;
                self.max_heap.pop();
                self.dead.remove(&seq);
                // An entry appears in `dead` twice (once per heap); re-insert
                // the tombstone for the twin if still pending.
                // (Handled by tracking per-heap tombstones below.)
            } else {
                return Some(top.rank);
            }
        }
        None
    }

    /// Push a packet of `bytes` with priority `rank` (lower = better).
    pub fn push(&mut self, rank: u64, bytes: u32, item: T) -> PifoPush<T> {
        if let Some(cap) = self.capacity_bytes {
            if (bytes as u64) > cap {
                self.drops += 1;
                return PifoPush::Rejected(item);
            }
            let mut evicted = None;
            while self.bytes + bytes as u64 > cap {
                // Evict worst-ranked resident packets. Reject the newcomer if
                // it is itself the worst.
                match self.worst_resident_rank() {
                    Some(worst) if worst > rank => {
                        let victim = self.evict_worst().expect("resident packet exists");
                        self.drops += 1;
                        evicted = Some(victim);
                    }
                    _ => {
                        self.drops += 1;
                        return PifoPush::Rejected(item);
                    }
                }
            }
            self.insert(rank, bytes, item);
            return match evicted {
                Some((r, b, it)) => PifoPush::Evicted(r, b, it),
                None => PifoPush::Admitted,
            };
        }
        self.insert(rank, bytes, item);
        PifoPush::Admitted
    }

    fn insert(&mut self, rank: u64, bytes: u32, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.min_heap.push(MinEntry(Entry {
            rank,
            seq,
            bytes,
            item,
        }));
        self.max_heap.push(MaxKey { rank, seq });
        self.bytes += bytes as u64;
        self.packets += 1;
    }

    fn evict_worst(&mut self) -> Option<(u64, u32, T)> {
        // Pop live max entry, tombstone it for the min heap.
        loop {
            let top = self.max_heap.pop()?;
            if self.dead.remove(&top.seq) {
                continue; // was already dequeued via min side
            }
            self.dead.insert(top.seq);
            self.packets -= 1;
            // We must find its bytes/item lazily when the min heap reaches
            // it; but we need them *now* to return the victim. Scan-free
            // approach: rebuild min heap lazily is not enough. Instead, drain
            // min heap until we find the seq — expensive. Better: store items
            // in a slab.
            // (Implementation below replaces this path; see `PifoQueue::pop`.)
            return self.extract_from_min(top.seq);
        }
    }

    fn extract_from_min(&mut self, seq: u64) -> Option<(u64, u32, T)> {
        // Linear extraction is acceptable: evictions happen only under
        // overflow, and buffers in pFabric runs are tiny (tens of packets).
        // alloc: same argument — overflow-only, never on the forwarding path.
        let mut stash = Vec::new();
        let mut found = None;
        while let Some(MinEntry(e)) = self.min_heap.pop() {
            if e.seq == seq {
                self.bytes -= e.bytes as u64;
                self.dead.remove(&seq);
                found = Some((e.rank, e.bytes, e.item));
                break;
            }
            stash.push(MinEntry(e));
        }
        for e in stash {
            self.min_heap.push(e);
        }
        found
    }

    /// Remove and return the best-ranked packet as `(rank, bytes, item)`.
    pub fn pop(&mut self) -> Option<(u64, u32, T)> {
        loop {
            let MinEntry(e) = self.min_heap.pop()?;
            if self.dead.remove(&e.seq) {
                continue; // evicted earlier
            }
            self.dead.insert(e.seq); // tombstone for the max heap
            self.bytes -= e.bytes as u64;
            self.packets -= 1;
            return Some((e.rank, e.bytes, e.item));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_lowest_rank_first() {
        let mut q = PifoQueue::new(None);
        q.push(30, 10, "c");
        q.push(10, 10, "a");
        q.push(20, 10, "b");
        assert_eq!(q.pop().unwrap().2, "a");
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.pop().unwrap().2, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_ranks_fifo() {
        let mut q = PifoQueue::new(None);
        for i in 0..10u32 {
            q.push(5, 10, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, _, i)| i)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_evicts_worst() {
        let mut q = PifoQueue::new(Some(30));
        q.push(1, 10, "best");
        q.push(9, 10, "worst");
        q.push(5, 10, "mid");
        // Full. A better packet evicts "worst".
        match q.push(2, 10, "better") {
            PifoPush::Evicted(rank, _, item) => {
                assert_eq!(rank, 9);
                assert_eq!(item, "worst");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(q.backlog_packets(), 3);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, i)| i)).collect();
        assert_eq!(order, vec!["best", "better", "mid"]);
    }

    #[test]
    fn overflow_rejects_worst_newcomer() {
        let mut q = PifoQueue::new(Some(20));
        q.push(1, 10, "a");
        q.push(2, 10, "b");
        match q.push(3, 10, "c") {
            PifoPush::Rejected(item) => assert_eq!(item, "c"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.drops(), 1);
        assert_eq!(q.backlog_packets(), 2);
    }

    #[test]
    fn giant_packet_rejected_outright() {
        let mut q = PifoQueue::new(Some(10));
        match q.push(0, 100, "giant") {
            PifoPush::Rejected(_) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn byte_accounting_consistent() {
        let mut q = PifoQueue::new(Some(100));
        q.push(1, 40, ());
        q.push(2, 40, ());
        assert_eq!(q.backlog_bytes(), 80);
        q.pop();
        assert_eq!(q.backlog_bytes(), 40);
        q.push(0, 60, ());
        assert_eq!(q.backlog_bytes(), 100);
    }

    proptest! {
        /// Without capacity limits, PIFO pops form a sorted-by-(rank, seq)
        /// permutation of the pushes.
        #[test]
        fn prop_sorted_permutation(ranks in proptest::collection::vec(0u64..100, 1..200)) {
            let mut q = PifoQueue::new(None);
            for (i, &r) in ranks.iter().enumerate() {
                q.push(r, 10, i);
            }
            let mut out = Vec::new();
            while let Some((r, _, i)) = q.pop() {
                out.push((r, i));
            }
            prop_assert_eq!(out.len(), ranks.len());
            for w in out.windows(2) {
                prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
            }
        }

        /// With a capacity, occupancy never exceeds it and accounting stays
        /// consistent across interleaved push/pop.
        #[test]
        fn prop_capacity_respected(
            ops in proptest::collection::vec((0u64..50, 1u32..20, proptest::bool::ANY), 1..300)
        ) {
            let cap = 100u64;
            let mut q = PifoQueue::new(Some(cap));
            for &(rank, bytes, do_pop) in &ops {
                if do_pop {
                    q.pop();
                } else {
                    q.push(rank, bytes, ());
                }
                prop_assert!(q.backlog_bytes() <= cap);
            }
            let mut drained_bytes = 0u64;
            let mut drained_packets = 0usize;
            let resident_packets = q.backlog_packets();
            let resident_bytes = q.backlog_bytes();
            while let Some((_, b, _)) = q.pop() {
                drained_packets += 1;
                drained_bytes += b as u64;
            }
            prop_assert!(q.is_empty());
            prop_assert_eq!(drained_packets, resident_packets);
            prop_assert_eq!(drained_bytes, resident_bytes);
        }
    }
}
