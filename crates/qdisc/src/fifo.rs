//! Class-blind FIFO queue.

use crate::{BufferAccounting, Dequeued, Scheduler};
use std::collections::VecDeque;

struct Queued<T> {
    class: usize,
    bytes: u32,
    item: T,
}

/// A single first-in-first-out queue that ignores class on scheduling but
/// remembers it for accounting. Used for host NIC egress in baseline runs
/// and as the no-QoS reference discipline.
pub struct FifoScheduler<T> {
    queue: VecDeque<Queued<T>>,
    classes: usize,
    class_bytes: Vec<u64>,
    class_packets: Vec<usize>,
    buffer: BufferAccounting,
}

impl<T> FifoScheduler<T> {
    /// Create a FIFO accepting classes `0..classes`.
    pub fn new(classes: usize, capacity_bytes: Option<u64>) -> Self {
        assert!(classes > 0);
        FifoScheduler {
            queue: VecDeque::new(),
            classes,
            class_bytes: vec![0; classes],   // alloc: port setup
            class_packets: vec![0; classes], // alloc: port setup
            buffer: BufferAccounting::new(capacity_bytes),
        }
    }

    /// Packets dropped at enqueue.
    pub fn drops(&self) -> u64 {
        self.buffer.drops()
    }
}

impl<T> Scheduler<T> for FifoScheduler<T> {
    fn enqueue(&mut self, class: usize, bytes: u32, item: T) -> Result<(), T> {
        if class >= self.classes {
            self.buffer.count_drop();
            return Err(item);
        }
        if !self.buffer.admit(bytes) {
            return Err(item);
        }
        self.class_bytes[class] += bytes as u64;
        self.class_packets[class] += 1;
        self.queue.push_back(Queued { class, bytes, item });
        Ok(())
    }

    fn dequeue(&mut self) -> Option<Dequeued<T>> {
        let pkt = self.queue.pop_front()?;
        self.class_bytes[pkt.class] -= pkt.bytes as u64;
        self.class_packets[pkt.class] -= 1;
        self.buffer.release(pkt.bytes);
        Some(Dequeued {
            class: pkt.class,
            bytes: pkt.bytes,
            item: pkt.item,
        })
    }

    fn backlog_bytes(&self) -> u64 {
        self.buffer.bytes()
    }

    fn backlog_packets(&self) -> usize {
        self.buffer.packets()
    }

    fn class_backlog_bytes(&self, class: usize) -> u64 {
        self.class_bytes.get(class).copied().unwrap_or(0)
    }

    fn class_backlog_packets(&self, class: usize) -> usize {
        self.class_packets.get(class).copied().unwrap_or(0)
    }

    fn num_classes(&self) -> usize {
        self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_arrival_order() {
        let mut s = FifoScheduler::new(3, None);
        s.enqueue(2, 10, "a").unwrap();
        s.enqueue(0, 10, "b").unwrap();
        s.enqueue(1, 10, "c").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| s.dequeue().map(|d| d.item)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn per_class_accounting() {
        let mut s = FifoScheduler::new(2, None);
        s.enqueue(0, 10, ()).unwrap();
        s.enqueue(1, 20, ()).unwrap();
        assert_eq!(s.class_backlog_bytes(0), 10);
        assert_eq!(s.class_backlog_bytes(1), 20);
        let d = s.dequeue().unwrap();
        assert_eq!(d.class, 0);
        assert_eq!(s.class_backlog_bytes(0), 0);
    }

    #[test]
    fn capacity_enforced() {
        let mut s = FifoScheduler::new(1, Some(15));
        assert!(s.enqueue(0, 10, ()).is_ok());
        assert!(s.enqueue(0, 10, ()).is_err());
        assert_eq!(s.drops(), 1);
    }
}
