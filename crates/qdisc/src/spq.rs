//! Strict priority queuing.
//!
//! Class 0 is the highest priority; a packet of class `k` is transmitted
//! only when every class below `k` is empty. The paper evaluates SPQ as the
//! straw-man alternative to WFQ (§6.7): it starves lower classes under
//! high-priority surges and cannot resolve the race-to-the-top incentive.

use crate::{BufferAccounting, Dequeued, Scheduler};
use std::collections::VecDeque;

struct Queued<T> {
    bytes: u32,
    item: T,
}

/// A strict-priority scheduler with `n` classes (0 = highest).
pub struct SpqScheduler<T> {
    queues: Vec<VecDeque<Queued<T>>>,
    class_bytes: Vec<u64>,
    buffer: BufferAccounting,
}

impl<T> SpqScheduler<T> {
    /// Create an SPQ scheduler with `classes` priority levels.
    pub fn new(classes: usize, capacity_bytes: Option<u64>) -> Self {
        assert!(classes > 0);
        SpqScheduler {
            queues: (0..classes).map(|_| VecDeque::new()).collect(),
            class_bytes: vec![0; classes], // alloc: port setup
            buffer: BufferAccounting::new(capacity_bytes),
        }
    }

    /// Packets dropped at enqueue.
    pub fn drops(&self) -> u64 {
        self.buffer.drops()
    }
}

impl<T> Scheduler<T> for SpqScheduler<T> {
    fn enqueue(&mut self, class: usize, bytes: u32, item: T) -> Result<(), T> {
        if class >= self.queues.len() {
            self.buffer.count_drop();
            return Err(item);
        }
        if !self.buffer.admit(bytes) {
            return Err(item);
        }
        self.class_bytes[class] += bytes as u64;
        self.queues[class].push_back(Queued { bytes, item });
        Ok(())
    }

    fn dequeue(&mut self) -> Option<Dequeued<T>> {
        for class in 0..self.queues.len() {
            if let Some(pkt) = self.queues[class].pop_front() {
                self.class_bytes[class] -= pkt.bytes as u64;
                self.buffer.release(pkt.bytes);
                return Some(Dequeued {
                    class,
                    bytes: pkt.bytes,
                    item: pkt.item,
                });
            }
        }
        None
    }

    fn backlog_bytes(&self) -> u64 {
        self.buffer.bytes()
    }

    fn backlog_packets(&self) -> usize {
        self.buffer.packets()
    }

    fn class_backlog_bytes(&self, class: usize) -> u64 {
        self.class_bytes.get(class).copied().unwrap_or(0)
    }

    fn class_backlog_packets(&self, class: usize) -> usize {
        self.queues.get(class).map_or(0, |q| q.len())
    }

    fn num_classes(&self) -> usize {
        self.queues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_priority_always_first() {
        let mut s = SpqScheduler::new(3, None);
        s.enqueue(2, 100, "low").unwrap();
        s.enqueue(1, 100, "mid").unwrap();
        s.enqueue(0, 100, "high").unwrap();
        assert_eq!(s.dequeue().unwrap().item, "high");
        assert_eq!(s.dequeue().unwrap().item, "mid");
        assert_eq!(s.dequeue().unwrap().item, "low");
    }

    #[test]
    fn starvation_under_high_priority_load() {
        // The SPQ failure mode the paper highlights: continuous class-0
        // traffic starves class 1 completely.
        let mut s = SpqScheduler::new(2, None);
        s.enqueue(1, 100, "starved").unwrap();
        for i in 0..100u32 {
            s.enqueue(0, 100, "hi").unwrap();
            let d = s.dequeue().unwrap();
            assert_eq!(d.class, 0, "iteration {i}");
        }
        assert_eq!(s.class_backlog_packets(1), 1);
    }

    #[test]
    fn fifo_within_class() {
        let mut s = SpqScheduler::new(2, None);
        for i in 0..5u32 {
            s.enqueue(1, 10, i).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.dequeue().map(|d| d.item)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn capacity_shared_across_classes() {
        let mut s = SpqScheduler::new(2, Some(150));
        assert!(s.enqueue(0, 100, ()).is_ok());
        assert!(s.enqueue(1, 100, ()).is_err());
        assert!(s.enqueue(1, 50, ()).is_ok());
        assert_eq!(s.drops(), 1);
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut s: SpqScheduler<()> = SpqScheduler::new(4, None);
        assert!(s.dequeue().is_none());
        assert!(s.is_empty());
    }
}
