//! Self-clocked virtual-time weighted fair queuing (SCFQ).
//!
//! Each arriving packet receives a *finish tag*
//! `F = max(V, F_last[class]) + bytes / weight[class]`, where `V` is the
//! system virtual time (the finish tag of the packet most recently chosen
//! for service). The scheduler always transmits the head-of-line packet with
//! the smallest finish tag. This is Golestani's self-clocked approximation of
//! PGPS/WFQ; it provides the weighted max-min bandwidth shares and the
//! per-class delay-bound behaviour that the paper's analysis (§4) relies on.
//!
//! When the port drains completely, virtual time and the per-class state are
//! reset — the standard implementation choice, which keeps tags from growing
//! without bound.

use crate::{BufferAccounting, Dequeued, Scheduler};
use std::collections::VecDeque;

struct Queued<T> {
    bytes: u32,
    finish_tag: f64,
    item: T,
}

/// Sanitizer state for the SCFQ invariants (`--features simsan` only):
/// virtual-time monotonicity and the pairwise fairness bound. Service is
/// tracked normalized (bytes/weight); each class snapshots the full
/// service vector when it becomes backlogged so any pair's gap can be
/// measured over the interval where both were continuously backlogged.
#[cfg(feature = "simsan")]
#[derive(Default)]
struct WfqSan {
    /// Orders backlog-start events across classes.
    seq: u64,
    /// Cumulative normalized service per class.
    norm: Vec<f64>,
    /// Largest packet seen per class (the `L_max` of the SCFQ bound).
    max_bytes: Vec<u32>,
    /// Per class: (backlog-start seq, service vector at that moment).
    snap: Vec<Option<(u64, Vec<f64>)>>,
}

/// A weighted fair queuing scheduler (SCFQ virtual-time variant).
pub struct WfqScheduler<T> {
    weights: Vec<f64>,
    queues: Vec<VecDeque<Queued<T>>>,
    class_bytes: Vec<u64>,
    last_finish: Vec<f64>,
    virtual_time: f64,
    buffer: BufferAccounting,
    /// Bitmask of non-empty classes, maintained only when there are at most
    /// 64 classes (always true in practice — the fabric runs 2, 3, or 8).
    /// Enables the single-backlogged-class dequeue fast path: under Swift
    /// congestion control fabric queues are near-empty, so one backlogged
    /// class at a time is the common case.
    backlogged: u64,
    #[cfg(feature = "simsan")]
    san: WfqSan,
}

impl<T> WfqScheduler<T> {
    /// Create a WFQ scheduler with one queue per entry of `weights`.
    ///
    /// `capacity_bytes` bounds the total buffered bytes across all classes
    /// (tail drop); `None` means unbounded (used in theory-validation runs
    /// where the paper sets "a large buffer").
    pub fn new(weights: &[f64], capacity_bytes: Option<u64>) -> Self {
        assert!(!weights.is_empty(), "need at least one class");
        assert!(
            weights.iter().all(|&w| w > 0.0),
            "weights must be positive: {weights:?}"
        );
        WfqScheduler {
            weights: weights.to_vec(),
            // alloc: scheduler construction, once per port.
            queues: weights.iter().map(|_| VecDeque::new()).collect(),
            class_bytes: vec![0; weights.len()], // alloc: port setup
            last_finish: vec![0.0; weights.len()], // alloc: port setup
            virtual_time: 0.0,
            buffer: BufferAccounting::new(capacity_bytes),
            backlogged: 0,
            #[cfg(feature = "simsan")]
            san: WfqSan {
                seq: 0,
                norm: vec![0.0; weights.len()],    // alloc: port setup
                max_bytes: vec![0; weights.len()], // alloc: port setup
                snap: vec![None; weights.len()],   // alloc: port setup
            },
        }
    }

    /// Corruption hook for the simsan fixture tests: force the virtual
    /// clock past every queued finish tag.
    #[cfg(any(test, feature = "simsan"))]
    #[doc(hidden)]
    pub fn simsan_set_virtual_time(&mut self, vt: f64) {
        self.virtual_time = vt;
    }

    /// SCFQ fairness check: for every pair of classes that has stayed
    /// backlogged since the later of their backlog-start instants, the
    /// normalized service gap over that interval must stay within
    /// `L_a/w_a + L_b/w_b` (Golestani's bound; the paper's §4 delay
    /// analysis builds on it).
    #[cfg(feature = "simsan")]
    fn san_check_fairness(&mut self, served_class: usize, served_bytes: u32) {
        self.san.norm[served_class] += served_bytes as f64 / self.weights[served_class];
        let backlogged: Vec<usize> = (0..self.queues.len())
            .filter(|&c| !self.queues[c].is_empty())
            .collect();
        for (i, &a) in backlogged.iter().enumerate() {
            for &b in &backlogged[i + 1..] {
                let (Some((qa, va)), Some((qb, vb))) = (&self.san.snap[a], &self.san.snap[b])
                else {
                    continue;
                };
                // Measure from the later backlog start: both classes have
                // been continuously backlogged since then.
                let base = if qa >= qb { va } else { vb };
                let ga = self.san.norm[a] - base[a];
                let gb = self.san.norm[b] - base[b];
                let bound = self.san.max_bytes[a] as f64 / self.weights[a]
                    + self.san.max_bytes[b] as f64 / self.weights[b];
                assert!(
                    (ga - gb).abs() <= bound + 1e-6,
                    "simsan[wfq]: normalized service gap |{ga} - {gb}| between classes \
                     {a} and {b} exceeds the SCFQ bound {bound}"
                );
            }
        }
    }

    #[inline]
    fn mask_usable(&self) -> bool {
        self.queues.len() <= 64
    }

    /// The configured class weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Packets dropped at enqueue because the buffer was full.
    pub fn drops(&self) -> u64 {
        self.buffer.drops()
    }

    /// Current system virtual time: the finish tag of the packet most
    /// recently chosen for service (resets to zero when the port drains).
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }

    /// How far `class`'s last-assigned finish tag leads the system virtual
    /// time, in virtual-time units. Zero when the class is keeping pace
    /// with its share; large values mean the class has queued far ahead of
    /// its service rate.
    pub fn class_lag(&self, class: usize) -> f64 {
        self.last_finish
            .get(class)
            .map_or(0.0, |f| f - self.virtual_time)
    }

    fn reset_clock(&mut self) {
        self.virtual_time = 0.0;
        self.last_finish.iter_mut().for_each(|f| *f = 0.0);
    }
}

impl<T> Scheduler<T> for WfqScheduler<T> {
    fn enqueue(&mut self, class: usize, bytes: u32, item: T) -> Result<(), T> {
        if class >= self.queues.len() {
            self.buffer.count_drop();
            return Err(item);
        }
        if !self.buffer.admit(bytes) {
            return Err(item);
        }
        let start = self.virtual_time.max(self.last_finish[class]);
        let finish = start + bytes as f64 / self.weights[class];
        self.last_finish[class] = finish;
        self.class_bytes[class] += bytes as u64;
        self.queues[class].push_back(Queued {
            bytes,
            finish_tag: finish,
            item,
        });
        if self.mask_usable() {
            self.backlogged |= 1u64 << class;
        }
        #[cfg(feature = "simsan")]
        {
            if self.queues[class].len() == 1 {
                // Class transitioned empty -> backlogged: start a fairness
                // measurement interval.
                self.san.snap[class] = Some((self.san.seq, self.san.norm.clone()));
                self.san.seq += 1;
            }
            self.san.max_bytes[class] = self.san.max_bytes[class].max(bytes);
        }
        Ok(())
    }

    fn dequeue(&mut self) -> Option<Dequeued<T>> {
        // Pick the backlogged class whose head packet has the smallest finish
        // tag (ties broken by lower class index for determinism).
        let class = if self.mask_usable() {
            let mask = self.backlogged;
            if mask == 0 {
                return None;
            }
            if mask & (mask - 1) == 0 {
                // Fast path: exactly one backlogged class — no tag comparison
                // needed, its head is the minimum by construction.
                mask.trailing_zeros() as usize
            } else {
                let mut best: Option<(usize, f64)> = None;
                let mut m = mask;
                while m != 0 {
                    let c = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let tag = self.queues[c].front().expect("masked class backlogged").finish_tag;
                    match best {
                        Some((_, t)) if tag >= t => {}
                        _ => best = Some((c, tag)),
                    }
                }
                best.expect("mask non-empty").0
            }
        } else {
            // > 64 classes: full scan (never hit by the shipped configs).
            let mut best: Option<(usize, f64)> = None;
            for (c, q) in self.queues.iter().enumerate() {
                if let Some(head) = q.front() {
                    match best {
                        Some((_, tag)) if head.finish_tag >= tag => {}
                        _ => best = Some((c, head.finish_tag)),
                    }
                }
            }
            best?.0
        };
        let pkt = self.queues[class].pop_front().expect("head exists");
        if self.mask_usable() && self.queues[class].is_empty() {
            self.backlogged &= !(1u64 << class);
        }
        // SCFQ invariant: every queued tag was assigned as max(V, F_last) +
        // service, and V only ever advances to served (minimum) tags — so no
        // dequeued tag may lie behind the current virtual time.
        #[cfg(feature = "simsan")]
        assert!(
            pkt.finish_tag >= self.virtual_time,
            "simsan[wfq]: dequeued finish tag {} behind virtual time {} (class {class})",
            pkt.finish_tag,
            self.virtual_time,
        );
        self.virtual_time = pkt.finish_tag;
        self.class_bytes[class] -= pkt.bytes as u64;
        self.buffer.release(pkt.bytes);
        #[cfg(feature = "simsan")]
        self.san_check_fairness(class, pkt.bytes);
        if self.buffer.packets() == 0 {
            self.reset_clock();
        }
        Some(Dequeued {
            class,
            bytes: pkt.bytes,
            item: pkt.item,
        })
    }

    fn backlog_bytes(&self) -> u64 {
        self.buffer.bytes()
    }

    fn backlog_packets(&self) -> usize {
        self.buffer.packets()
    }

    fn class_backlog_bytes(&self, class: usize) -> u64 {
        self.class_bytes.get(class).copied().unwrap_or(0)
    }

    fn class_backlog_packets(&self, class: usize) -> usize {
        self.queues.get(class).map_or(0, |q| q.len())
    }

    fn num_classes(&self) -> usize {
        self.queues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Drain the scheduler completely, returning (class, bytes) in service
    /// order.
    fn drain<T>(s: &mut WfqScheduler<T>) -> Vec<(usize, u32)> {
        std::iter::from_fn(|| s.dequeue().map(|d| (d.class, d.bytes))).collect()
    }

    /// Fixture: a deliberately-broken scheduler whose virtual clock was
    /// forced past every queued finish tag, so the next dequeue violates
    /// virtual-time monotonicity.
    fn corrupted_clock_wfq() -> WfqScheduler<u32> {
        let mut s = WfqScheduler::new(&[1.0, 1.0], None);
        s.enqueue(0, 100, 7).unwrap();
        s.simsan_set_virtual_time(1e12);
        s
    }

    #[cfg(feature = "simsan")]
    #[test]
    #[should_panic(expected = "simsan[wfq]")]
    fn simsan_catches_non_monotonic_virtual_time() {
        let mut s = corrupted_clock_wfq();
        let _ = s.dequeue();
    }

    #[cfg(not(feature = "simsan"))]
    #[test]
    fn without_simsan_non_monotonic_virtual_time_is_silent() {
        let mut s = corrupted_clock_wfq();
        assert_eq!(s.dequeue().map(|d| d.item), Some(7));
    }

    #[test]
    fn single_class_is_fifo() {
        let mut s = WfqScheduler::new(&[1.0], None);
        for i in 0..10u32 {
            s.enqueue(0, 100, i).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.dequeue().map(|d| d.item)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn within_class_order_preserved() {
        let mut s = WfqScheduler::new(&[4.0, 1.0], None);
        for i in 0..5u32 {
            s.enqueue(0, 100, i).unwrap();
            s.enqueue(1, 100, 100 + i).unwrap();
        }
        let mut last_a = None;
        let mut last_b = None;
        while let Some(d) = s.dequeue() {
            if d.item < 100 {
                assert!(last_a.is_none_or(|p| d.item > p));
                last_a = Some(d.item);
            } else {
                assert!(last_b.is_none_or(|p| d.item > p));
                last_b = Some(d.item);
            }
        }
    }

    #[test]
    fn bandwidth_shares_follow_weights() {
        // Both classes continuously backlogged with equal-size packets at
        // weights 4:1 -> class 0 should get ~4/5 of the service.
        let mut s = WfqScheduler::new(&[4.0, 1.0], None);
        for i in 0..1000u32 {
            s.enqueue(0, 1000, i).unwrap();
            s.enqueue(1, 1000, i).unwrap();
        }
        // Look at the first 500 services (both classes stay backlogged).
        let mut served = [0u64; 2];
        for _ in 0..500 {
            let d = s.dequeue().unwrap();
            served[d.class] += d.bytes as u64;
        }
        let share0 = served[0] as f64 / (served[0] + served[1]) as f64;
        assert!(
            (share0 - 0.8).abs() < 0.02,
            "class0 share {share0}, want ~0.8"
        );
    }

    #[test]
    fn byte_fairness_with_unequal_packet_sizes() {
        // Class 0 sends 100-byte packets, class 1 sends 1000-byte packets,
        // equal weights -> equal byte shares, so class 0 dequeues ~10x more
        // packets.
        let mut s = WfqScheduler::new(&[1.0, 1.0], None);
        for i in 0..2000u32 {
            s.enqueue(0, 100, i).unwrap();
        }
        for i in 0..200u32 {
            s.enqueue(1, 1000, i).unwrap();
        }
        let mut served_bytes = [0u64; 2];
        // Serve half the total bytes; both classes remain backlogged.
        let mut budget = 200_000u64;
        while budget > 0 {
            let d = s.dequeue().unwrap();
            served_bytes[d.class] += d.bytes as u64;
            budget = budget.saturating_sub(d.bytes as u64);
        }
        let ratio = served_bytes[0] as f64 / served_bytes[1] as f64;
        assert!((ratio - 1.0).abs() < 0.05, "byte ratio {ratio}, want ~1");
    }

    #[test]
    fn idle_class_gets_isolated_low_delay() {
        // Class 1 heavily backlogged; a class-0 packet arriving later should
        // be served almost immediately (work conservation + isolation).
        let mut s = WfqScheduler::new(&[1.0, 1.0], None);
        for i in 0..100u32 {
            s.enqueue(1, 1000, i).unwrap();
        }
        // Serve a few to advance virtual time.
        for _ in 0..10 {
            s.dequeue();
        }
        s.enqueue(0, 1000, 999).unwrap();
        // The class-0 packet's tag is max(V, 0) + 1000; class 1's head tag is
        // already far ahead, so class 0 must be served next.
        let d = s.dequeue().unwrap();
        assert_eq!(d.class, 0);
        assert_eq!(d.item, 999);
    }

    #[test]
    fn work_conserving_when_one_class_empty() {
        let mut s = WfqScheduler::new(&[4.0, 1.0], None);
        for i in 0..10u32 {
            s.enqueue(1, 500, i).unwrap();
        }
        let order = drain(&mut s);
        assert_eq!(order.len(), 10);
        assert!(order.iter().all(|&(c, _)| c == 1));
    }

    #[test]
    fn capacity_drops_and_accounts() {
        let mut s = WfqScheduler::new(&[1.0, 1.0], Some(250));
        assert!(s.enqueue(0, 100, 1).is_ok());
        assert!(s.enqueue(1, 100, 2).is_ok());
        assert!(s.enqueue(0, 100, 3).is_err()); // 300 > 250
        assert_eq!(s.drops(), 1);
        assert_eq!(s.backlog_bytes(), 200);
        assert_eq!(s.backlog_packets(), 2);
    }

    #[test]
    fn invalid_class_is_rejected() {
        let mut s = WfqScheduler::new(&[1.0], None);
        assert!(s.enqueue(5, 100, ()).is_err());
        assert_eq!(s.drops(), 1);
    }

    #[test]
    fn clock_resets_when_drained() {
        let mut s = WfqScheduler::new(&[1.0, 1.0], None);
        s.enqueue(0, 1_000_000, ()).unwrap();
        s.dequeue();
        assert!(s.is_empty());
        // After drain the virtual clock resets, so a tiny new packet's tag is
        // small again (observable via fairness behaviour).
        s.enqueue(1, 100, ()).unwrap();
        s.enqueue(0, 100, ()).unwrap();
        let d = s.dequeue().unwrap();
        // Class 1 enqueued first with equal weights and a fresh clock, so its
        // finish tag is equal; ties break to the lower class index.
        assert!(d.class == 0 || d.class == 1);
        assert_eq!(s.backlog_packets(), 1);
    }

    #[test]
    fn per_class_backlog_tracking() {
        let mut s = WfqScheduler::new(&[1.0, 1.0, 1.0], None);
        s.enqueue(0, 10, ()).unwrap();
        s.enqueue(2, 20, ()).unwrap();
        s.enqueue(2, 30, ()).unwrap();
        assert_eq!(s.class_backlog_bytes(0), 10);
        assert_eq!(s.class_backlog_bytes(1), 0);
        assert_eq!(s.class_backlog_bytes(2), 50);
        assert_eq!(s.class_backlog_packets(2), 2);
        assert_eq!(s.class_backlog_bytes(99), 0);
    }

    proptest! {
        /// Conservation: every enqueued packet is eventually dequeued exactly
        /// once, and byte accounting returns to zero.
        #[test]
        fn prop_conservation(
            ops in proptest::collection::vec((0usize..3, 64u32..2000), 1..300)
        ) {
            let mut s = WfqScheduler::new(&[8.0, 4.0, 1.0], None);
            let mut expected_bytes = 0u64;
            for (i, &(class, bytes)) in ops.iter().enumerate() {
                s.enqueue(class, bytes, i).unwrap();
                expected_bytes += bytes as u64;
            }
            prop_assert_eq!(s.backlog_bytes(), expected_bytes);
            let mut seen = vec![false; ops.len()];
            let mut drained_bytes = 0u64;
            while let Some(d) = s.dequeue() {
                prop_assert!(!seen[d.item]);
                seen[d.item] = true;
                drained_bytes += d.bytes as u64;
            }
            prop_assert!(seen.iter().all(|&x| x));
            prop_assert_eq!(drained_bytes, expected_bytes);
            prop_assert_eq!(s.backlog_bytes(), 0);
            prop_assert!(s.is_empty());
        }

        /// Relative-fairness bound: with all classes continuously backlogged,
        /// the normalized service (bytes/weight) received by any two classes
        /// never diverges by more than one maximum packet's worth per class —
        /// the SCFQ fairness guarantee.
        #[test]
        fn prop_fairness_bound(seed_packets in 50usize..150) {
            let weights = [4.0f64, 2.0, 1.0];
            let mut s = WfqScheduler::new(&weights, None);
            let bytes = 1000u32;
            for i in 0..seed_packets {
                for c in 0..3 {
                    s.enqueue(c, bytes, i).unwrap();
                }
            }
            let mut norm = [0.0f64; 3];
            // While every class remains backlogged, check the bound.
            for _ in 0..(seed_packets * 3 / 2) {
                let d = s.dequeue().unwrap();
                norm[d.class] += d.bytes as f64 / weights[d.class];
                let still_backlogged = (0..3).all(|c| s.class_backlog_packets(c) > 0);
                if still_backlogged {
                    for a in 0..3 {
                        for b in 0..3 {
                            let gap = (norm[a] - norm[b]).abs();
                            let bound = bytes as f64 / weights[a] + bytes as f64 / weights[b];
                            prop_assert!(gap <= bound + 1e-6,
                                "normalized service gap {gap} exceeds bound {bound}");
                        }
                    }
                }
            }
        }
    }
}
