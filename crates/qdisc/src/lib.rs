#![warn(missing_docs)]

//! Packet scheduling disciplines for switch egress ports.
//!
//! Aequitas's central observation is that commodity **weighted fair queuing**
//! (WFQ) gives each QoS class both a minimum bandwidth share and a delay
//! bound that depends on the class's utilization — and that an admission
//! controller can exploit those bounds. This crate provides the scheduling
//! building blocks used by the network simulator:
//!
//! * [`WfqScheduler`] — self-clocked virtual-time fair queuing (SCFQ, the
//!   practical PGPS approximation of Golestani); the paper's "Virtual-Time"
//!   WFQ implementation.
//! * [`DwrrScheduler`] — deficit weighted round robin; the paper's other
//!   commodity WFQ realization.
//! * [`SpqScheduler`] — strict priority queuing, used by the §6.7 comparison
//!   and by the QJump/pFabric/Homa baselines.
//! * [`FifoScheduler`] — a single class-blind queue.
//! * [`PifoQueue`] — a push-in-first-out priority queue (dequeue smallest
//!   rank, drop largest rank when full), the primitive behind pFabric.
//!
//! All schedulers are generic over the queued item type `T` and account
//! buffer occupancy in bytes; enqueue fails (returning the item) when the
//! configured capacity would be exceeded, which models tail-drop at a
//! shared-buffer egress port.
//!
//! # Example
//!
//! ```
//! use aequitas_qdisc::{Scheduler, WfqScheduler};
//!
//! // Two classes at 4:1; both continuously backlogged.
//! let mut wfq = WfqScheduler::new(&[4.0, 1.0], None);
//! for i in 0..100u32 {
//!     wfq.enqueue(0, 1000, i).unwrap();
//!     wfq.enqueue(1, 1000, i).unwrap();
//! }
//! let mut served = [0u64; 2];
//! for _ in 0..50 {
//!     let d = wfq.dequeue().unwrap();
//!     served[d.class] += d.bytes as u64;
//! }
//! // Class 0 receives ~4x the service while both are backlogged.
//! assert!(served[0] > served[1] * 3);
//! ```

pub mod dwrr;
pub mod fifo;
pub mod pifo;
pub mod spq;
pub mod wfq;

pub use dwrr::DwrrScheduler;
pub use fifo::FifoScheduler;
pub use pifo::{PifoPush, PifoQueue};
pub use spq::SpqScheduler;
pub use wfq::WfqScheduler;

/// A packet handed back by [`Scheduler::dequeue`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dequeued<T> {
    /// Class the packet was enqueued under.
    pub class: usize,
    /// Packet length in bytes (for serialization timing).
    pub bytes: u32,
    /// The caller's payload.
    pub item: T,
}

/// Common interface of all class-based packet schedulers.
pub trait Scheduler<T> {
    /// Enqueue `item` of length `bytes` under `class`.
    ///
    /// Returns `Err(item)` when the packet must be dropped (buffer full or
    /// invalid class), handing the payload back so the caller can account the
    /// loss.
    fn enqueue(&mut self, class: usize, bytes: u32, item: T) -> Result<(), T>;

    /// Remove and return the next packet to transmit, or `None` if idle.
    fn dequeue(&mut self) -> Option<Dequeued<T>>;

    /// Total queued bytes across all classes.
    fn backlog_bytes(&self) -> u64;

    /// Total queued packets across all classes.
    fn backlog_packets(&self) -> usize;

    /// Queued bytes in one class (0 for out-of-range classes).
    fn class_backlog_bytes(&self, class: usize) -> u64;

    /// Queued packets in one class (0 for out-of-range classes).
    fn class_backlog_packets(&self, class: usize) -> usize;

    /// Number of classes this scheduler serves.
    fn num_classes(&self) -> usize;

    /// Whether nothing is queued.
    fn is_empty(&self) -> bool {
        self.backlog_packets() == 0
    }
}

/// Byte-capacity bookkeeping shared by the schedulers.
///
/// Models a tail-drop buffer: an arriving packet that would push occupancy
/// past `capacity` is rejected.
#[derive(Debug, Clone)]
pub(crate) struct BufferAccounting {
    capacity: Option<u64>,
    bytes: u64,
    packets: usize,
    drops: u64,
}

impl BufferAccounting {
    pub(crate) fn new(capacity: Option<u64>) -> Self {
        BufferAccounting {
            capacity,
            bytes: 0,
            packets: 0,
            drops: 0,
        }
    }

    /// Try to admit a packet of `bytes`; returns false (and counts a drop)
    /// when capacity would be exceeded.
    pub(crate) fn admit(&mut self, bytes: u32) -> bool {
        if let Some(cap) = self.capacity {
            if self.bytes + bytes as u64 > cap {
                self.drops += 1;
                return false;
            }
        }
        self.bytes += bytes as u64;
        self.packets += 1;
        true
    }

    pub(crate) fn release(&mut self, bytes: u32) {
        debug_assert!(self.bytes >= bytes as u64 && self.packets > 0);
        self.bytes -= bytes as u64;
        self.packets -= 1;
    }

    pub(crate) fn count_drop(&mut self) {
        self.drops += 1;
    }

    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }
    pub(crate) fn packets(&self) -> usize {
        self.packets
    }
    pub(crate) fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod accounting_tests {
    use super::*;

    #[test]
    fn admits_until_capacity() {
        let mut b = BufferAccounting::new(Some(100));
        assert!(b.admit(60));
        assert!(!b.admit(50)); // 60 + 50 > 100
        assert!(b.admit(40));
        assert_eq!(b.bytes(), 100);
        assert_eq!(b.packets(), 2);
        assert_eq!(b.drops(), 1);
    }

    #[test]
    fn unbounded_always_admits() {
        let mut b = BufferAccounting::new(None);
        for _ in 0..1000 {
            assert!(b.admit(u32::MAX / 2));
        }
    }

    #[test]
    fn release_returns_space() {
        let mut b = BufferAccounting::new(Some(100));
        assert!(b.admit(100));
        assert!(!b.admit(1));
        b.release(100);
        assert!(b.admit(1));
    }
}
