//! Deficit weighted round robin (Shreedhar & Varghese).
//!
//! Each class holds a deficit counter; on its turn in the active-class round
//! robin the counter is credited `quantum * weight` bytes and the class
//! transmits head packets until the counter cannot cover the next packet.
//! DWRR is the other commodity realization of WFQ named by the paper
//! (footnote 1) and is provided so experiments can confirm Aequitas is
//! insensitive to which WFQ implementation the switch uses.

use crate::{BufferAccounting, Dequeued, Scheduler};
use std::collections::VecDeque;

struct Queued<T> {
    bytes: u32,
    item: T,
}

/// A DWRR scheduler. `quantum` is the base credit in bytes per round for a
/// weight-1.0 class.
///
/// Shreedhar & Varghese require `quantum >= max packet size` for O(1) work
/// per packet and for every backlogged class to transmit each round. A
/// smaller quantum still drains (credits accumulate across rotations) but a
/// weight-1.0 class then skips rounds, which inflates its latency tail
/// relative to a PGPS/virtual-time scheduler with the same weights. For
/// fabric ports carry full wire packets, so the quantum must include the
/// packet header bytes, not just the payload MTU.
pub struct DwrrScheduler<T> {
    weights: Vec<f64>,
    quantum: u32,
    queues: Vec<VecDeque<Queued<T>>>,
    class_bytes: Vec<u64>,
    deficit: Vec<f64>,
    /// Round-robin list of currently backlogged classes.
    active: VecDeque<usize>,
    in_active: Vec<bool>,
    buffer: BufferAccounting,
}

impl<T> DwrrScheduler<T> {
    /// Create a DWRR scheduler with one queue per weight entry.
    pub fn new(weights: &[f64], quantum: u32, capacity_bytes: Option<u64>) -> Self {
        assert!(!weights.is_empty() && quantum > 0);
        assert!(weights.iter().all(|&w| w > 0.0));
        DwrrScheduler {
            weights: weights.to_vec(),
            quantum,
            // alloc: scheduler construction, once per port.
            queues: weights.iter().map(|_| VecDeque::new()).collect(),
            class_bytes: vec![0; weights.len()], // alloc: port setup
            deficit: vec![0.0; weights.len()],   // alloc: port setup
            active: VecDeque::new(),
            in_active: vec![false; weights.len()], // alloc: port setup
            buffer: BufferAccounting::new(capacity_bytes),
        }
    }

    /// Packets dropped at enqueue.
    pub fn drops(&self) -> u64 {
        self.buffer.drops()
    }
}

impl<T> Scheduler<T> for DwrrScheduler<T> {
    fn enqueue(&mut self, class: usize, bytes: u32, item: T) -> Result<(), T> {
        if class >= self.queues.len() {
            self.buffer.count_drop();
            return Err(item);
        }
        if !self.buffer.admit(bytes) {
            return Err(item);
        }
        self.queues[class].push_back(Queued { bytes, item });
        self.class_bytes[class] += bytes as u64;
        if !self.in_active[class] {
            self.in_active[class] = true;
            self.active.push_back(class);
        }
        Ok(())
    }

    fn dequeue(&mut self) -> Option<Dequeued<T>> {
        // Walk the active list; per DWRR a class with insufficient deficit is
        // credited and rotated to the back. A packet is guaranteed to be
        // found within a bounded number of rotations because credits grow.
        loop {
            let class = *self.active.front()?;
            let head_bytes = match self.queues[class].front() {
                Some(h) => h.bytes,
                None => {
                    // Became empty (shouldn't normally happen because we
                    // deactivate eagerly, but be defensive).
                    self.active.pop_front();
                    self.in_active[class] = false;
                    self.deficit[class] = 0.0;
                    continue;
                }
            };
            if self.deficit[class] >= head_bytes as f64 {
                let pkt = self.queues[class].pop_front().expect("head exists");
                self.deficit[class] -= pkt.bytes as f64;
                self.class_bytes[class] -= pkt.bytes as u64;
                self.buffer.release(pkt.bytes);
                if self.queues[class].is_empty() {
                    self.active.pop_front();
                    self.in_active[class] = false;
                    self.deficit[class] = 0.0;
                }
                return Some(Dequeued {
                    class,
                    bytes: pkt.bytes,
                    item: pkt.item,
                });
            }
            // Not enough credit: add a quantum and move to the back.
            self.deficit[class] += self.quantum as f64 * self.weights[class];
            self.active.rotate_left(1);
        }
    }

    fn backlog_bytes(&self) -> u64 {
        self.buffer.bytes()
    }

    fn backlog_packets(&self) -> usize {
        self.buffer.packets()
    }

    fn class_backlog_bytes(&self, class: usize) -> u64 {
        self.class_bytes.get(class).copied().unwrap_or(0)
    }

    fn class_backlog_packets(&self, class: usize) -> usize {
        self.queues.get(class).map_or(0, |q| q.len())
    }

    fn num_classes(&self) -> usize {
        self.queues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_class_is_fifo() {
        let mut s = DwrrScheduler::new(&[1.0], 1500, None);
        for i in 0..10u32 {
            s.enqueue(0, 700, i).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.dequeue().map(|d| d.item)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bandwidth_shares_follow_weights() {
        let mut s = DwrrScheduler::new(&[8.0, 4.0, 1.0], 4096, None);
        for i in 0..3000u32 {
            for c in 0..3 {
                s.enqueue(c, 1000, i).unwrap();
            }
        }
        let mut served = [0u64; 3];
        // Serve a prefix while all classes stay backlogged.
        for _ in 0..3000 {
            let d = s.dequeue().unwrap();
            served[d.class] += d.bytes as u64;
        }
        let total: u64 = served.iter().sum();
        let s0 = served[0] as f64 / total as f64;
        let s1 = served[1] as f64 / total as f64;
        let s2 = served[2] as f64 / total as f64;
        assert!((s0 - 8.0 / 13.0).abs() < 0.03, "share0 {s0}");
        assert!((s1 - 4.0 / 13.0).abs() < 0.03, "share1 {s1}");
        assert!((s2 - 1.0 / 13.0).abs() < 0.03, "share2 {s2}");
    }

    #[test]
    fn work_conserving() {
        let mut s = DwrrScheduler::new(&[4.0, 1.0], 1500, None);
        for i in 0..20u32 {
            s.enqueue(1, 999, i).unwrap();
        }
        let count = std::iter::from_fn(|| s.dequeue()).count();
        assert_eq!(count, 20);
    }

    #[test]
    fn big_packets_still_served() {
        // A packet far larger than one quantum must still be transmitted
        // after enough rounds of credit.
        let mut s = DwrrScheduler::new(&[1.0, 1.0], 100, None);
        s.enqueue(0, 10_000, "big").unwrap();
        s.enqueue(1, 50, "small").unwrap();
        let mut got = Vec::new();
        while let Some(d) = s.dequeue() {
            got.push(d.item);
        }
        assert!(got.contains(&"big") && got.contains(&"small"));
    }

    #[test]
    fn capacity_enforced() {
        let mut s = DwrrScheduler::new(&[1.0], 1500, Some(1000));
        assert!(s.enqueue(0, 800, 1).is_ok());
        assert!(s.enqueue(0, 300, 2).is_err());
        assert_eq!(s.drops(), 1);
    }

    #[test]
    fn deactivation_resets_deficit() {
        let mut s = DwrrScheduler::new(&[1.0, 1.0], 1000, None);
        s.enqueue(0, 500, ()).unwrap();
        s.dequeue().unwrap();
        assert!(s.is_empty());
        // Re-enqueue; deficit must not have been carried over in a way that
        // starves class 1.
        s.enqueue(0, 500, ()).unwrap();
        s.enqueue(1, 500, ()).unwrap();
        let a = s.dequeue().unwrap();
        let b = s.dequeue().unwrap();
        assert_ne!(a.class, b.class);
    }

    proptest! {
        /// Conservation under random interleavings of enqueue/dequeue.
        #[test]
        fn prop_conservation(
            ops in proptest::collection::vec((0usize..3, 64u32..3000, proptest::bool::ANY), 1..400)
        ) {
            let mut s = DwrrScheduler::new(&[8.0, 4.0, 1.0], 1500, None);
            let mut in_flight = 0i64;
            let mut next_id = 0usize;
            let mut seen = std::collections::HashSet::new();
            for &(class, bytes, deq) in &ops {
                if deq {
                    if let Some(d) = s.dequeue() {
                        prop_assert!(seen.insert(d.item));
                        in_flight -= 1;
                    }
                } else {
                    s.enqueue(class, bytes, next_id).unwrap();
                    next_id += 1;
                    in_flight += 1;
                }
                prop_assert_eq!(s.backlog_packets() as i64, in_flight);
            }
            while let Some(d) = s.dequeue() {
                prop_assert!(seen.insert(d.item));
            }
            prop_assert_eq!(seen.len(), next_id);
        }
    }
}
