//! Trace-driven replay, bound auditing, and cross-run analysis for
//! Aequitas telemetry (`aequitas-replay`).
//!
//! The simulator's hot path can afford to *write* telemetry but not to
//! analyze it; this crate is the offline other half. It ingests the JSONL
//! trace (and optionally the sampled-metrics CSV) of any run and
//!
//! 1. **replays** it into full-fabric state the engine never materializes:
//!    per-port queue-depth timelines and per-packet queuing delays,
//!    per-(src,dst,QoS) RNL distributions, admit-probability (`p_admit`)
//!    trajectories, and fault windows ([`reconstruct`]);
//! 2. **audits** the run against the paper's closed-form analysis in
//!    `crates/analysis` — measured worst-case delays vs the Eq. 1/Eq. 8
//!    bounds, admissible-region membership of the realized QoS mix,
//!    RNL-SLO compliance — producing a PASS/FAIL verdict report ([`audit`],
//!    [`report`]);
//! 3. **compares** runs: `aequitas-replay analyze --input results/ --out
//!    analysis/` diffs RNL quantile sketches (p50/p99/p99.9 per QoS),
//!    queue peaks, and verdicts across every trace in a directory
//!    ([`compare`]).
//!
//! Traces are versioned: the first line of every stream is a
//! `trace_header` carrying `schema_version`, and this crate refuses
//! versions it does not understand ([`trace::check_header`]) so schema
//! drift fails loudly instead of silently misparsing.

#![warn(missing_docs)]

pub mod audit;
pub mod compare;
pub mod json;
pub mod metrics;
pub mod reconstruct;
pub mod report;
pub mod timeline;
pub mod trace;

pub use audit::{audit_file, AuditOptions, AuditReport, CheckStatus};
pub use reconstruct::Reconstruction;
