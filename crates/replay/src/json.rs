//! A minimal JSON parser for the shapes the telemetry pipeline emits: one
//! flat object per line whose values are strings, numbers, booleans, or
//! arrays of numbers. The workspace is deliberately dependency-free (no
//! serde), and the trace writer's output is restricted enough that this
//! ~150-line recursive-descent parser covers it exactly — anything outside
//! that envelope is a malformed line and reported as such.

/// A parsed JSON value. Only the subset the trace writer produces.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers above 2^53 are not emitted by the tracer).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array of values.
    Arr(Vec<JsonValue>),
}

impl JsonValue {
    /// The value as f64, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
    /// The value as a non-negative integer, when numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Integral iff the round-trip through u64 is exact.
            JsonValue::Num(n) if *n >= 0.0 && (*n as u64) as f64 == *n => Some(*n as u64),
            _ => None,
        }
    }
    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn expect_byte(&mut self, c: u8) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => match self.bump().ok_or_else(|| self.err("bad escape"))? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.err("bad \\u"))?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.err("bad \\u digit"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("unknown escape")),
                },
                c if c < 0x20 => return Err(self.err("raw control char in string")),
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-assemble a UTF-8 multibyte sequence.
                    let start = self.i - 1;
                    let len = if c >= 0xf0 {
                        4
                    } else if c >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    if start + len > self.b.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.b[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.i = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("bad number"))
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(JsonValue::Arr(items)),
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b't' | b'f' | b'n' => {
                for (lit, v) in [
                    ("true", JsonValue::Bool(true)),
                    ("false", JsonValue::Bool(false)),
                    ("null", JsonValue::Null),
                ] {
                    if self.b[self.i..].starts_with(lit.as_bytes()) {
                        self.i += lit.len();
                        return Ok(v);
                    }
                }
                Err(self.err("bad literal"))
            }
            _ => Ok(JsonValue::Num(self.number()?)),
        }
    }
}

/// Parse one `{"key":value,...}` line into its fields, in order. The trace
/// writer emits no whitespace, and this parser accepts none — a stricter
/// contract that doubles as a format check.
pub fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        b: line.as_bytes(),
        i: 0,
    };
    p.expect_byte(b'{')?;
    let mut fields = Vec::new();
    if p.peek() == Some(b'}') {
        p.i += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect_byte(b':')?;
            let value = p.value()?;
            fields.push((key, value));
            match p.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
    }
    if p.i != p.b.len() {
        return Err(p.err("trailing data after object"));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_shapes() {
        let f = parse_object(
            "{\"seq\":0,\"t_ps\":0,\"type\":\"trace_header\",\"format\":\"aequitas-trace\",\"schema_version\":2}",
        )
        .unwrap();
        assert_eq!(f[0].0, "seq");
        assert_eq!(f[2].1.as_str(), Some("trace_header"));
        assert_eq!(f[4].1.as_u64(), Some(2));

        let f = parse_object("{\"w\":[4,1],\"p\":0.75,\"down\":true,\"x\":null}").unwrap();
        assert_eq!(
            f[0].1,
            JsonValue::Arr(vec![JsonValue::Num(4.0), JsonValue::Num(1.0)])
        );
        assert_eq!(f[1].1.as_f64(), Some(0.75));
        assert_eq!(f[2].1.as_bool(), Some(true));
        assert_eq!(f[3].1, JsonValue::Null);
    }

    #[test]
    fn decodes_escapes() {
        let f = parse_object("{\"m\":\"a\\n\\\"b\\\"\\\\\"}").unwrap();
        assert_eq!(f[0].1.as_str(), Some("a\n\"b\"\\"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1",
            "{\"a\":1}x",
            "not json",
            "{\"a\":--}",
        ] {
            assert!(parse_object(bad).is_err(), "accepted: {bad}");
        }
    }
}
