//! Full-fabric state reconstruction from a telemetry JSONL trace.
//!
//! The simulator's trace stream is rich enough to rebuild, offline, the
//! state the engine never keeps: per-port backlog timelines, per-packet
//! queuing delays (by FIFO-matching the i-th enqueue with the i-th dequeue
//! of each `(port, class)` — valid because tail drops are rejected *at*
//! enqueue and fault drops destroy packets *after* dequeue, and WFQ serves
//! each class FIFO), per-(src,dst,QoS) RNL distributions, admit-probability
//! trajectories, and fault windows. Everything downstream (the bound
//! auditor, compare mode) works off this one pass.
//!
//! Reconstruction is resilient rather than strict: malformed lines, gaps,
//! and inconsistencies are *counted* (and surfaced by the `trace_integrity`
//! audit check) instead of aborting, so a corrupted trace yields a FAIL
//! verdict with diagnostics rather than a parse error. The one hard error
//! is the schema contract: a missing or unsupported `trace_header`.

use crate::trace::{check_header, parse_line, RawEvent};
use aequitas_stats::Percentiles;
use std::collections::{BTreeMap, VecDeque};
use std::io::BufRead;

/// Experiment parameters recovered from a `run_info` event.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// Experiment name.
    pub experiment: String,
    /// Hosts in the topology.
    pub hosts: u64,
    /// QoS classes.
    pub classes: u64,
    /// WFQ weights, highest QoS first (empty when unknown).
    pub weights: Vec<f64>,
    /// Per-class RNL-per-MTU SLOs in ps (0 = none).
    pub slos_per_mtu_ps: Vec<u64>,
    /// Percentile the SLOs are evaluated at.
    pub slo_percentile: f64,
    /// Warmup cutoff in ps.
    pub warmup_ps: u64,
    /// Scheduled duration in ps.
    pub duration_ps: u64,
    /// Active traffic sources.
    pub senders: u64,
    /// Aggregate mean offered load μ (0 = unknown).
    pub mu: f64,
    /// Aggregate burst rate ρ (0 = unknown).
    pub rho: f64,
    /// Burst period in ps (0 = not burst/on-off).
    pub period_ps: u64,
}

impl RunInfo {
    fn from_event(ev: &RawEvent) -> RunInfo {
        RunInfo {
            experiment: ev.str("experiment").unwrap_or("?").to_string(),
            hosts: ev.u64("hosts").unwrap_or(0),
            classes: ev.u64("classes").unwrap_or(0),
            weights: ev.arr_f64("weights").unwrap_or_default(),
            slos_per_mtu_ps: ev.arr_u64("slos_per_mtu_ps").unwrap_or_default(),
            slo_percentile: ev.num("slo_percentile").unwrap_or(0.0),
            warmup_ps: ev.u64("warmup_ps").unwrap_or(0),
            duration_ps: ev.u64("duration_ps").unwrap_or(0),
            senders: ev.u64("senders").unwrap_or(0),
            mu: ev.num("mu").unwrap_or(0.0),
            rho: ev.num("rho").unwrap_or(0.0),
            period_ps: ev.u64("period_ps").unwrap_or(0),
        }
    }
}

/// Identifies one egress port: `node` is the serialized node label
/// (`host3`, `switch0`), `port` the egress port index.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PortKey {
    /// Node label as serialized in the trace.
    pub node: String,
    /// Egress port index.
    pub port: u64,
}

impl std::fmt::Display for PortKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/port{}", self.node, self.port)
    }
}

/// Per-class queue statistics at one port.
#[derive(Debug, Default)]
pub struct ClassTimeline {
    /// Queuing delay (enqueue→dequeue) distribution, in ps.
    pub delay_ps: Percentiles,
    /// Worst queuing delay, in ps.
    pub max_delay_ps: u64,
    /// Bytes accepted into the queue.
    pub enq_bytes: u64,
    /// Deepest per-class occupancy seen, in packets.
    pub max_depth_pkts: u64,
    /// Pending enqueues not yet matched to a dequeue (FIFO).
    pending: VecDeque<(u64, u64)>,
}

/// Reconstructed state of one egress port.
#[derive(Debug, Default)]
pub struct PortTimeline {
    /// Backlog after each packet event: `(t_ps, backlog_bytes)`. Multiple
    /// entries may share a timestamp; the last one wins.
    pub backlog: Vec<(u64, u64)>,
    /// Peak backlog.
    pub max_backlog_bytes: u64,
    /// Enqueued packets.
    pub enq_pkts: u64,
    /// Dequeued packets.
    pub deq_pkts: u64,
    /// Tail-dropped packets.
    pub drop_pkts: u64,
    /// Packets destroyed in transit by fault injection.
    pub fault_drop_pkts: u64,
    /// Per-class statistics.
    pub classes: BTreeMap<u64, ClassTimeline>,
    /// Events whose `backlog_bytes` field disagreed with the recomputed
    /// running backlog (0 on a healthy single-run trace).
    pub backlog_mismatches: u64,
    /// Dequeues with no matching pending enqueue.
    pub unmatched_dequeues: u64,
    backlog_now: u64,
}

impl PortTimeline {
    /// Backlog in bytes at simulated time `t_ps` (last event at or before
    /// `t_ps`; 0 before the first event).
    pub fn backlog_at(&self, t_ps: u64) -> u64 {
        match self.backlog.partition_point(|&(t, _)| t <= t_ps) {
            0 => 0,
            n => self.backlog[n - 1].1,
        }
    }
}

/// Per-(src,dst,QoS) RPC statistics — the trace's `qos_run` (the class the
/// RPC actually ran on after any admission downgrade).
#[derive(Debug, Default)]
pub struct ChannelStats {
    /// RPCs issued on this channel.
    pub issued: u64,
    /// Bytes issued.
    pub issued_bytes: u64,
    /// Issues that were admission downgrades into this class.
    pub downgraded_in: u64,
    /// Completions observed.
    pub completed: u64,
    /// Post-warmup RNL-per-MTU distribution, in ps.
    pub rnl_per_mtu_ps: Percentiles,
    /// Post-warmup absolute RNL distribution, in ps.
    pub rnl_ps: Percentiles,
}

/// Admit-probability trajectory of one (host, dst, qos) channel.
#[derive(Debug, Default)]
pub struct AdmitTimeline {
    /// `(t_ps, p)` after each Algorithm 1 step.
    pub points: Vec<(u64, f64)>,
    /// Smallest p seen.
    pub min_p: f64,
    /// Largest p seen.
    pub max_p: f64,
}

/// Fault windows recovered from fault-injection events.
#[derive(Debug, Default)]
pub struct FaultSummary {
    /// Link-down windows per port: `(down_t_ps, up_t_ps)`; `None` end means
    /// the link never came back before the trace ended.
    pub link_windows: BTreeMap<PortKey, Vec<(u64, Option<u64>)>>,
    /// Quota-server outage windows per host.
    pub quota_windows: BTreeMap<u64, Vec<(u64, Option<u64>)>>,
    /// Packets destroyed in transit.
    pub pkt_drops: u64,
    /// Of those, frames corrupted rather than cleanly lost.
    pub corrupt_drops: u64,
}

/// Stream-health counters; feeds the `trace_integrity` audit check.
#[derive(Debug, Default)]
pub struct Integrity {
    /// Lines that failed to parse.
    pub parse_errors: u64,
    /// First few parse-error messages, with line numbers.
    pub parse_error_samples: Vec<String>,
    /// Sequence-number discontinuities.
    pub seq_gaps: u64,
    /// Timestamp regressions (each starts a new epoch — expected when a
    /// sweep reuses one telemetry handle across points, otherwise a red
    /// flag).
    pub time_regressions: u64,
    /// Enqueues left unmatched when an epoch boundary reset the queues.
    pub epoch_orphans: u64,
    /// Extra `trace_header` lines after the first (concatenated streams).
    pub extra_headers: u64,
    /// Events carrying a `type` this build does not know.
    pub unknown_kinds: u64,
}

/// Everything reconstructed from one trace stream.
#[derive(Debug, Default)]
pub struct Reconstruction {
    /// Schema version declared by the header.
    pub schema_version: u32,
    /// First `run_info` event, when present.
    pub run_info: Option<RunInfo>,
    /// Total lines consumed (including the header).
    pub events: u64,
    /// Event count per `type` tag.
    pub kind_counts: BTreeMap<String, u64>,
    /// Number of epochs (1 + timestamp regressions): a single-run trace has
    /// exactly one.
    pub epochs: u64,
    /// Per-port reconstructed queues.
    pub ports: BTreeMap<PortKey, PortTimeline>,
    /// Per-(src,dst,qos_run) RPC statistics.
    pub channels: BTreeMap<(u64, u64, u64), ChannelStats>,
    /// Aggregate per-QoS RPC statistics (merged over channels).
    pub qos: BTreeMap<u64, ChannelStats>,
    /// Admit-probability trajectories per (host, dst, qos).
    pub admit: BTreeMap<(u64, u64, u64), AdmitTimeline>,
    /// Per-QoS `(completion time, RNL-per-MTU in ps)` points in stream
    /// order, warmup-filtered — the raw material for windowed recovery
    /// timelines ([`crate::timeline`]).
    pub qos_rnl_points: BTreeMap<u64, Vec<(u64, f64)>>,
    /// Fault windows and counters.
    pub faults: FaultSummary,
    /// Stream-health counters.
    pub integrity: Integrity,
    /// Warn events: count and first few messages.
    pub warn_count: u64,
    /// First few warn messages.
    pub warn_samples: Vec<String>,
    /// Largest timestamp seen.
    pub last_t_ps: u64,
}

impl Reconstruction {
    /// Reconstruct from a JSONL stream. The first line must be a valid
    /// `trace_header` with a supported version; everything after that is
    /// processed tolerantly with problems counted in [`Integrity`].
    pub fn from_reader(r: impl BufRead) -> Result<Reconstruction, String> {
        let mut recon = Reconstruction {
            epochs: 1,
            ..Reconstruction::default()
        };
        let mut expected_seq: Option<u64> = None;
        let mut last_t: u64 = 0;
        let mut saw_header = false;
        for (idx, line) in r.lines().enumerate() {
            let line = line.map_err(|e| format!("I/O error reading trace: {e}"))?;
            if line.is_empty() {
                continue;
            }
            let ev = match parse_line(&line) {
                Ok(ev) => ev,
                Err(e) => {
                    if !saw_header {
                        return Err(format!("line 1: {e}"));
                    }
                    recon.integrity.parse_errors += 1;
                    if recon.integrity.parse_error_samples.len() < 5 {
                        recon
                            .integrity
                            .parse_error_samples
                            .push(format!("line {}: {e}", idx + 1));
                    }
                    continue;
                }
            };
            if !saw_header {
                recon.schema_version = check_header(&ev)?;
                saw_header = true;
            } else if ev.kind == "trace_header" {
                recon.integrity.extra_headers += 1;
            }
            recon.events += 1;
            *recon.kind_counts.entry(ev.kind.clone()).or_insert(0) += 1;
            if let Some(exp) = expected_seq {
                if ev.seq != exp {
                    recon.integrity.seq_gaps += 1;
                }
            }
            expected_seq = Some(ev.seq + 1);
            if ev.t_ps < last_t {
                // A new epoch: sweep harnesses reuse one telemetry handle
                // across points, so simulated time restarts. Reset queue
                // state; distributions keep accumulating.
                recon.integrity.time_regressions += 1;
                recon.epochs += 1;
                for port in recon.ports.values_mut() {
                    for class in port.classes.values_mut() {
                        recon.integrity.epoch_orphans += class.pending.len() as u64;
                        class.pending.clear();
                    }
                    port.backlog_now = 0;
                }
            }
            last_t = ev.t_ps;
            recon.last_t_ps = recon.last_t_ps.max(ev.t_ps);
            recon.apply(&ev);
        }
        if !saw_header {
            return Err("empty trace: no trace_header line".into());
        }
        Ok(recon)
    }

    /// Reconstruct from a trace file on disk.
    pub fn from_file(path: &std::path::Path) -> Result<Reconstruction, String> {
        let f = std::fs::File::open(path)
            .map_err(|e| format!("cannot open trace {}: {e}", path.display()))?;
        Reconstruction::from_reader(std::io::BufReader::new(f))
    }

    fn port_key(ev: &RawEvent) -> Option<PortKey> {
        Some(PortKey {
            node: ev.str("node")?.to_string(),
            port: ev.u64("port")?,
        })
    }

    fn apply(&mut self, ev: &RawEvent) {
        match ev.kind.as_str() {
            "trace_header" => {}
            "run_info" => {
                if self.run_info.is_none() {
                    self.run_info = Some(RunInfo::from_event(ev));
                }
            }
            "pkt_enqueue" => {
                let (Some(key), Some(class), Some(bytes), Some(backlog)) = (
                    Self::port_key(ev),
                    ev.u64("class"),
                    ev.u64("bytes"),
                    ev.u64("backlog_bytes"),
                ) else {
                    self.integrity.parse_errors += 1;
                    return;
                };
                let port = self.ports.entry(key).or_default();
                port.enq_pkts += 1;
                let ct = port.classes.entry(class).or_default();
                ct.enq_bytes += bytes;
                ct.pending.push_back((ev.t_ps, bytes));
                if let Some(depth) = ev.u64("depth_pkts") {
                    ct.max_depth_pkts = ct.max_depth_pkts.max(depth);
                }
                port.backlog_now += bytes;
                if port.backlog_now != backlog {
                    port.backlog_mismatches += 1;
                    port.backlog_now = backlog;
                }
                port.max_backlog_bytes = port.max_backlog_bytes.max(backlog);
                port.backlog.push((ev.t_ps, backlog));
            }
            "pkt_dequeue" => {
                let (Some(key), Some(class), Some(bytes), Some(backlog)) = (
                    Self::port_key(ev),
                    ev.u64("class"),
                    ev.u64("bytes"),
                    ev.u64("backlog_bytes"),
                ) else {
                    self.integrity.parse_errors += 1;
                    return;
                };
                let port = self.ports.entry(key).or_default();
                port.deq_pkts += 1;
                let ct = port.classes.entry(class).or_default();
                match ct.pending.pop_front() {
                    Some((enq_t, _)) => {
                        let delay = ev.t_ps.saturating_sub(enq_t);
                        ct.delay_ps.record(delay as f64);
                        ct.max_delay_ps = ct.max_delay_ps.max(delay);
                    }
                    None => port.unmatched_dequeues += 1,
                }
                port.backlog_now = port.backlog_now.saturating_sub(bytes);
                if port.backlog_now != backlog {
                    port.backlog_mismatches += 1;
                    port.backlog_now = backlog;
                }
                port.backlog.push((ev.t_ps, backlog));
            }
            "pkt_drop" => {
                let Some(key) = Self::port_key(ev) else {
                    self.integrity.parse_errors += 1;
                    return;
                };
                // Tail drop: rejected at enqueue, never entered the queue,
                // so the running backlog is unchanged.
                let port = self.ports.entry(key).or_default();
                port.drop_pkts += 1;
                if let Some(backlog) = ev.u64("backlog_bytes") {
                    if port.backlog_now != backlog {
                        port.backlog_mismatches += 1;
                        port.backlog_now = backlog;
                    }
                }
            }
            "fault_pkt_drop" => {
                // Destroyed in transit, i.e. after its dequeue event — the
                // queue accounting is already settled.
                if let Some(key) = Self::port_key(ev) {
                    self.ports.entry(key).or_default().fault_drop_pkts += 1;
                }
                self.faults.pkt_drops += 1;
                if ev.bool("corrupt") == Some(true) {
                    self.faults.corrupt_drops += 1;
                }
            }
            "rpc_issue" => {
                let (Some(host), Some(dst), Some(qos), Some(bytes)) = (
                    ev.u64("host"),
                    ev.u64("dst"),
                    ev.u64("qos_run"),
                    ev.u64("size_bytes"),
                ) else {
                    self.integrity.parse_errors += 1;
                    return;
                };
                let downgraded = ev.bool("downgraded") == Some(true);
                for stats in [
                    self.channels.entry((host, dst, qos)).or_default(),
                    self.qos.entry(qos).or_default(),
                ] {
                    stats.issued += 1;
                    stats.issued_bytes += bytes;
                    if downgraded {
                        stats.downgraded_in += 1;
                    }
                }
            }
            "rpc_complete" => {
                let (Some(host), Some(dst), Some(qos), Some(rnl), Some(rnl_per_mtu)) = (
                    ev.u64("host"),
                    ev.u64("dst"),
                    ev.u64("qos_run"),
                    ev.u64("rnl_ps"),
                    ev.u64("rnl_per_mtu_ps"),
                ) else {
                    self.integrity.parse_errors += 1;
                    return;
                };
                // Warmup filter on *issue* time, matching the harness's own
                // completion accounting.
                let issued_at = ev.t_ps.saturating_sub(rnl);
                let warm = match &self.run_info {
                    Some(info) => issued_at >= info.warmup_ps,
                    None => true,
                };
                for stats in [
                    self.channels.entry((host, dst, qos)).or_default(),
                    self.qos.entry(qos).or_default(),
                ] {
                    stats.completed += 1;
                    if warm {
                        stats.rnl_ps.record(rnl as f64);
                        stats.rnl_per_mtu_ps.record(rnl_per_mtu as f64);
                    }
                }
                if warm {
                    self.qos_rnl_points
                        .entry(qos)
                        .or_default()
                        .push((ev.t_ps, rnl_per_mtu as f64));
                }
            }
            "admit_prob" => {
                let (Some(host), Some(dst), Some(qos), Some(p)) = (
                    ev.u64("host"),
                    ev.u64("dst"),
                    ev.u64("qos"),
                    ev.num("p"),
                ) else {
                    self.integrity.parse_errors += 1;
                    return;
                };
                let at = self.admit.entry((host, dst, qos)).or_default();
                if at.points.is_empty() {
                    at.min_p = p;
                    at.max_p = p;
                } else {
                    at.min_p = at.min_p.min(p);
                    at.max_p = at.max_p.max(p);
                }
                at.points.push((ev.t_ps, p));
            }
            "fault_link_down" => {
                if let Some(key) = Self::port_key(ev) {
                    self.faults
                        .link_windows
                        .entry(key)
                        .or_default()
                        .push((ev.t_ps, None));
                }
            }
            "fault_link_up" => {
                if let Some(key) = Self::port_key(ev) {
                    let windows = self.faults.link_windows.entry(key).or_default();
                    match windows.last_mut() {
                        Some(w) if w.1.is_none() => w.1 = Some(ev.t_ps),
                        _ => windows.push((ev.t_ps, Some(ev.t_ps))),
                    }
                }
            }
            "fault_quota_outage" => {
                let (Some(host), Some(down)) = (ev.u64("host"), ev.bool("down")) else {
                    return;
                };
                let windows = self.faults.quota_windows.entry(host).or_default();
                if down {
                    windows.push((ev.t_ps, None));
                } else {
                    match windows.last_mut() {
                        Some(w) if w.1.is_none() => w.1 = Some(ev.t_ps),
                        _ => windows.push((ev.t_ps, Some(ev.t_ps))),
                    }
                }
            }
            "warn" => {
                self.warn_count += 1;
                if self.warn_samples.len() < 5 {
                    self.warn_samples.push(format!(
                        "[{}] {}",
                        ev.str("component").unwrap_or("?"),
                        ev.str("message").unwrap_or("?")
                    ));
                }
            }
            "cwnd_update" | "retransmit" => {
                // Counted in kind_counts; no per-event state is rebuilt.
            }
            _ => self.integrity.unknown_kinds += 1,
        }
    }

    /// The switch port carrying the most enqueued bytes — the bottleneck
    /// the delay-bound audit evaluates. Falls back to any port when the
    /// trace has no switch events.
    pub fn bottleneck_port(&self) -> Option<&PortKey> {
        let total = |p: &PortTimeline| p.classes.values().map(|c| c.enq_bytes).sum::<u64>();
        self.ports
            .iter()
            .filter(|(k, _)| k.node.starts_with("switch"))
            .max_by_key(|(_, p)| total(p))
            .or_else(|| self.ports.iter().max_by_key(|(_, p)| total(p)))
            .map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn header() -> String {
        format!(
            "{{\"seq\":0,\"t_ps\":0,\"type\":\"trace_header\",\"format\":\"aequitas-trace\",\"schema_version\":{}}}\n",
            aequitas_telemetry::TRACE_SCHEMA_VERSION
        )
    }

    fn enq(seq: u64, t: u64, class: u64, bytes: u64, backlog: u64) -> String {
        format!(
            "{{\"seq\":{seq},\"t_ps\":{t},\"type\":\"pkt_enqueue\",\"node\":\"switch0\",\"port\":2,\
             \"class\":{class},\"bytes\":{bytes},\"depth_pkts\":1,\"backlog_bytes\":{backlog}}}\n"
        )
    }

    fn deq(seq: u64, t: u64, class: u64, bytes: u64, backlog: u64) -> String {
        format!(
            "{{\"seq\":{seq},\"t_ps\":{t},\"type\":\"pkt_dequeue\",\"node\":\"switch0\",\"port\":2,\
             \"class\":{class},\"bytes\":{bytes},\"backlog_bytes\":{backlog}}}\n"
        )
    }

    #[test]
    fn fifo_matching_reconstructs_queue_delays() {
        let mut t = header();
        // Two class-0 packets queued, served in order; one class-1 packet
        // in between.
        t += &enq(1, 100, 0, 1000, 1000);
        t += &enq(2, 200, 0, 1000, 2000);
        t += &enq(3, 250, 1, 500, 2500);
        t += &deq(4, 300, 0, 1000, 1500);
        t += &deq(5, 450, 0, 1000, 500);
        t += &deq(6, 500, 1, 500, 0);
        let mut r = Reconstruction::from_reader(Cursor::new(t)).unwrap();
        assert_eq!(r.epochs, 1);
        assert_eq!(r.integrity.seq_gaps, 0);
        let key = PortKey {
            node: "switch0".into(),
            port: 2,
        };
        let port = r.ports.get_mut(&key).unwrap();
        assert_eq!(port.backlog_mismatches, 0);
        assert_eq!(port.unmatched_dequeues, 0);
        assert_eq!(port.max_backlog_bytes, 2500);
        assert_eq!(port.backlog_at(0), 0);
        assert_eq!(port.backlog_at(260), 2500);
        assert_eq!(port.backlog_at(9999), 0);
        let c0 = port.classes.get_mut(&0).unwrap();
        // Delays: 300-100=200, 450-200=250.
        assert_eq!(c0.max_delay_ps, 250);
        assert_eq!(c0.delay_ps.count(), 2);
        assert_eq!(port.classes.get_mut(&1).unwrap().max_delay_ps, 250);
    }

    #[test]
    fn epoch_restart_resets_queues_not_stats() {
        let mut t = header();
        t += &enq(1, 100, 0, 1000, 1000);
        t += &deq(2, 200, 0, 1000, 0);
        t += &enq(3, 300, 0, 1000, 1000); // left pending at the restart
        t += &enq(4, 50, 0, 1000, 1000); // time went backwards: new epoch
        t += &deq(5, 90, 0, 1000, 0);
        let r = Reconstruction::from_reader(Cursor::new(t)).unwrap();
        assert_eq!(r.epochs, 2);
        assert_eq!(r.integrity.epoch_orphans, 1);
        let port = &r.ports[&PortKey {
            node: "switch0".into(),
            port: 2,
        }];
        // Both epochs' dequeues matched within their own epoch.
        assert_eq!(port.unmatched_dequeues, 0);
        assert_eq!(port.backlog_mismatches, 0);
    }

    #[test]
    fn rpc_and_admit_and_fault_events_aggregate() {
        let mut t = header();
        t += "{\"seq\":1,\"t_ps\":10,\"type\":\"run_info\",\"experiment\":\"x\",\"hosts\":3,\"classes\":2,\"weights\":[4,1],\"slos_per_mtu_ps\":[1875000,0],\"slo_percentile\":99.9,\"warmup_ps\":1000,\"duration_ps\":100000,\"senders\":2,\"mu\":0.8,\"rho\":1.2,\"period_ps\":100000000}\n";
        t += "{\"seq\":2,\"t_ps\":500,\"type\":\"rpc_issue\",\"host\":0,\"dst\":2,\"qos_req\":0,\"qos_run\":1,\"downgraded\":true,\"size_bytes\":32768,\"p_admit\":0.5}\n";
        // Issued at 2000-800 >= warmup: counted in percentiles.
        t += "{\"seq\":3,\"t_ps\":2000,\"type\":\"rpc_complete\",\"host\":0,\"dst\":2,\"qos_run\":1,\"downgraded\":true,\"size_bytes\":32768,\"rnl_ps\":800,\"rnl_per_mtu_ps\":100}\n";
        // Issued at 900-400 < warmup: excluded from percentiles.
        t += "{\"seq\":4,\"t_ps\":2100,\"type\":\"rpc_complete\",\"host\":0,\"dst\":2,\"qos_run\":1,\"downgraded\":false,\"size_bytes\":32768,\"rnl_ps\":1700,\"rnl_per_mtu_ps\":999}\n";
        t += "{\"seq\":5,\"t_ps\":2200,\"type\":\"admit_prob\",\"host\":0,\"dst\":2,\"qos\":0,\"p\":0.75,\"delta\":-0.25}\n";
        t += "{\"seq\":6,\"t_ps\":2300,\"type\":\"admit_prob\",\"host\":0,\"dst\":2,\"qos\":0,\"p\":0.8,\"delta\":0.05}\n";
        t += "{\"seq\":7,\"t_ps\":2400,\"type\":\"fault_link_down\",\"node\":\"switch0\",\"port\":1,\"until_ps\":3000}\n";
        t += "{\"seq\":8,\"t_ps\":3000,\"type\":\"fault_link_up\",\"node\":\"switch0\",\"port\":1}\n";
        t += "{\"seq\":9,\"t_ps\":3100,\"type\":\"fault_quota_outage\",\"host\":1,\"down\":true}\n";
        let r = Reconstruction::from_reader(Cursor::new(t)).unwrap();
        let info = r.run_info.as_ref().unwrap();
        assert_eq!(info.weights, vec![4.0, 1.0]);
        assert_eq!(info.warmup_ps, 1000);
        let ch = &r.channels[&(0, 2, 1)];
        assert_eq!(ch.issued, 1);
        assert_eq!(ch.downgraded_in, 1);
        assert_eq!(ch.completed, 2);
        assert_eq!(ch.rnl_per_mtu_ps.count(), 1, "warmup filter");
        assert_eq!(r.qos[&1].completed, 2);
        let at = &r.admit[&(0, 2, 0)];
        assert_eq!(at.points.len(), 2);
        assert_eq!((at.min_p, at.max_p), (0.75, 0.8));
        let lw = &r.faults.link_windows[&PortKey {
            node: "switch0".into(),
            port: 1,
        }];
        assert_eq!(lw, &vec![(2400, Some(3000))]);
        assert_eq!(r.faults.quota_windows[&1], vec![(3100, None)]);
    }

    #[test]
    fn corrupt_lines_counted_not_fatal() {
        let mut t = header();
        t += "this is not json\n";
        t += &enq(2, 100, 0, 1000, 1000);
        let r = Reconstruction::from_reader(Cursor::new(t)).unwrap();
        assert_eq!(r.integrity.parse_errors, 1);
        assert_eq!(r.integrity.seq_gaps, 1);
        assert_eq!(r.events, 2);
    }

    #[test]
    fn header_is_mandatory() {
        let err = Reconstruction::from_reader(Cursor::new(enq(0, 1, 0, 1, 1))).unwrap_err();
        assert!(err.contains("pre-v2"), "{err}");
        let err = Reconstruction::from_reader(Cursor::new(String::new())).unwrap_err();
        assert!(err.contains("empty trace"), "{err}");
    }
}
