//! Windowed timelines and the time-to-SLO-restore recovery metric.
//!
//! Chaos containment is a question about *time*: after a fault fires, how
//! long until a scheme's tail latency is back under its SLO? Extremal
//! statistics (worst queue depth, overall p99) cannot answer it — a scheme
//! that violates for 10 ms and one that violates for the rest of the run
//! can share the same overall p99. This module buckets per-completion
//! latency points into fixed windows, computes a per-window p99 timeline,
//! and derives **time-to-SLO-restore**: the delay from fault onset to the
//! start of the final stretch of SLO-compliant windows.
//!
//! Semantics that matter for gray/blackhole faults:
//!
//! * An **empty window after onset is a violation.** Under continuous
//!   offered load, zero completions means the scheme is stalled (e.g. every
//!   path blackholed), which must not vacuously count as "SLO met".
//!   Empty windows before onset are treated as compliant — the fault cannot
//!   be blamed for a quiet warmup.
//! * Restore time is measured to the **end of the last violating window**,
//!   so a scheme that oscillates in and out of compliance is charged until
//!   it stays compliant.

use std::collections::BTreeMap;

/// One fixed-width window of a latency timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// Window start, in ps (windows are `[start, start + width)`).
    pub start_ps: u64,
    /// Completions that landed in this window.
    pub count: u64,
    /// p99 of the recorded values in this window (0.0 when empty).
    pub p99: f64,
}

/// Bucket `(t_ps, value)` points into fixed `window_ps`-wide windows and
/// compute each window's p99. Windows between the first and last non-empty
/// bucket are emitted even when empty (count 0), so gaps — a blackholed
/// scheme completing nothing — are visible instead of silently elided.
pub fn windowed(points: &[(u64, f64)], window_ps: u64) -> Vec<WindowPoint> {
    assert!(window_ps > 0, "window width must be positive");
    if points.is_empty() {
        return Vec::new();
    }
    let mut buckets: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for &(t, v) in points {
        buckets.entry(t / window_ps).or_default().push(v);
    }
    let (Some(&first), Some(&last)) = (buckets.keys().next(), buckets.keys().next_back()) else {
        return Vec::new();
    };
    (first..=last)
        .map(|k| {
            let vals = buckets.get_mut(&k);
            match vals {
                Some(vals) => {
                    vals.sort_by(|a, b| a.total_cmp(b));
                    // Nearest-rank p99.
                    let idx = ((vals.len() as f64) * 0.99).ceil() as usize;
                    let idx = idx.clamp(1, vals.len()) - 1;
                    WindowPoint {
                        start_ps: k * window_ps,
                        count: vals.len() as u64,
                        p99: vals[idx],
                    }
                }
                None => WindowPoint {
                    start_ps: k * window_ps,
                    count: 0,
                    p99: 0.0,
                },
            }
        })
        .collect()
}

/// [`windowed`], then padded with empty windows up to `horizon_ps` — the
/// end of the observation (e.g. the offered-load stop time). A scheme that
/// stalls mid-run and never completes again would otherwise end its
/// timeline at the stall and could look "recovered"; the padding turns the
/// silence into explicit empty (violating) windows.
pub fn windowed_until(points: &[(u64, f64)], window_ps: u64, horizon_ps: u64) -> Vec<WindowPoint> {
    assert!(window_ps > 0, "window width must be positive");
    let mut w = windowed(points, window_ps);
    let mut next = w.last().map_or(0, |x| x.start_ps + window_ps);
    while next < horizon_ps {
        w.push(WindowPoint {
            start_ps: next,
            count: 0,
            p99: 0.0,
        });
        next += window_ps;
    }
    w
}

/// Time from `onset_ps` until the SLO is *durably* re-met, in ps.
///
/// A window starting at or after onset violates if its p99 exceeds `slo`
/// **or** it is empty (see module docs). Returns:
///
/// * `Some(0)` — no window from onset on ever violated (the fault was
///   fully contained);
/// * `Some(d)` — the last violating window ends `d` ps after onset and
///   every later window complies;
/// * `None` — the final window still violates: the scheme never recovered
///   within the observed timeline (also returned for an empty timeline,
///   where recovery cannot be demonstrated).
pub fn time_to_restore(windows: &[WindowPoint], onset_ps: u64, slo: f64) -> Option<u64> {
    if windows.is_empty() {
        return None;
    }
    let width = match windows.len() {
        1 => return (windows[0].p99 <= slo && windows[0].count > 0).then_some(0),
        _ => windows[1].start_ps - windows[0].start_ps,
    };
    let mut last_violation_end: Option<u64> = None;
    for w in windows {
        if w.start_ps + width <= onset_ps {
            continue;
        }
        if w.p99 > slo || w.count == 0 {
            last_violation_end = Some(w.start_ps + width);
        }
    }
    match (last_violation_end, windows.last()) {
        (None, _) => Some(0),
        (Some(end), Some(final_w)) => {
            if final_w.p99 > slo || final_w.count == 0 {
                None // still violating at the end of the observation.
            } else {
                Some(end.saturating_sub(onset_ps))
            }
        }
        (Some(_), None) => None, // unreachable: windows checked non-empty above
    }
}

/// Render a timeline as plottable CSV (`start_us,count,p99_us`), one line
/// per window, times converted from ps to microseconds.
pub fn to_csv(windows: &[WindowPoint]) -> String {
    let mut out = String::from("start_us,count,p99_us\n");
    for w in windows {
        out.push_str(&format!(
            "{:.3},{},{:.3}\n",
            w.start_ps as f64 / 1e6,
            w.count,
            w.p99 / 1e6
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000_000; // ps

    #[test]
    fn windowed_buckets_and_emits_gaps() {
        let points = vec![
            (0, 10.0),
            (MS / 2, 20.0),
            // Window 1 empty.
            (2 * MS + 1, 30.0),
        ];
        let w = windowed(&points, MS);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].count, 2);
        assert_eq!(w[0].p99, 20.0);
        assert_eq!(w[1].count, 0, "gap window emitted");
        assert_eq!(w[2].count, 1);
        assert_eq!(w[2].p99, 30.0);
    }

    #[test]
    fn windowed_p99_is_nearest_rank() {
        let points: Vec<(u64, f64)> = (0..100).map(|i| (i, i as f64)).collect();
        let w = windowed(&points, MS);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].p99, 98.0); // ceil(100*0.99) = 99th value, 0-indexed 98
    }

    fn tl(p99s: &[(f64, u64)]) -> Vec<WindowPoint> {
        p99s.iter()
            .enumerate()
            .map(|(i, &(p99, count))| WindowPoint {
                start_ps: i as u64 * MS,
                count,
                p99,
            })
            .collect()
    }

    #[test]
    fn restore_zero_when_never_violated() {
        let w = tl(&[(1.0, 5), (1.0, 5), (1.0, 5)]);
        assert_eq!(time_to_restore(&w, MS, 2.0), Some(0));
    }

    #[test]
    fn restore_charges_until_last_violation_ends() {
        // Onset at 1 ms; windows 1 and 2 violate, 3 and 4 comply: the last
        // violating window ends at 3 ms, so restore takes 2 ms.
        let w = tl(&[(1.0, 5), (9.0, 5), (9.0, 5), (1.0, 5), (1.0, 5)]);
        assert_eq!(time_to_restore(&w, MS, 2.0), Some(2 * MS));
    }

    #[test]
    fn empty_window_after_onset_is_a_violation() {
        // A blackholed scheme completes nothing in windows 1-2.
        let w = tl(&[(1.0, 5), (0.0, 0), (0.0, 0), (1.0, 5)]);
        assert_eq!(time_to_restore(&w, MS, 2.0), Some(2 * MS));
    }

    #[test]
    fn empty_window_before_onset_is_not_blamed() {
        let w = tl(&[(0.0, 0), (1.0, 5), (1.0, 5)]);
        assert_eq!(time_to_restore(&w, MS, MS as f64), Some(0));
    }

    #[test]
    fn never_recovering_is_none() {
        let w = tl(&[(1.0, 5), (9.0, 5), (9.0, 5)]);
        assert_eq!(time_to_restore(&w, MS, 2.0), None);
        // Ending on an empty window is equally unrecovered.
        let w = tl(&[(1.0, 5), (9.0, 5), (0.0, 0)]);
        assert_eq!(time_to_restore(&w, MS, 2.0), None);
    }

    #[test]
    fn oscillation_is_charged_to_the_last_violation() {
        let w = tl(&[(1.0, 5), (9.0, 5), (1.0, 5), (9.0, 5), (1.0, 5)]);
        assert_eq!(time_to_restore(&w, MS, 2.0), Some(3 * MS));
    }

    #[test]
    fn windowed_until_pads_silence_to_the_horizon() {
        // One completion at 0.5 ms, horizon 4 ms: three trailing empty
        // windows make the stall explicit, so restore is None.
        let w = windowed_until(&[(MS / 2, 1.0)], MS, 4 * MS);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].count, 1);
        assert!(w[1..].iter().all(|x| x.count == 0));
        assert_eq!(time_to_restore(&w, MS, 2.0), None);
        // No points at all: all-empty, never recovered.
        let w = windowed_until(&[], MS, 2 * MS);
        assert_eq!(w.len(), 2);
        assert_eq!(time_to_restore(&w, 0, 2.0), None);
    }

    #[test]
    fn csv_renders_one_line_per_window() {
        let w = tl(&[(1_000_000.0, 2), (0.0, 0)]);
        let csv = to_csv(&w);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "start_us,count,p99_us");
        assert_eq!(lines[1], "0.000,2,1.000");
    }
}
