//! The bound auditor: checks a reconstructed run against the closed-form
//! analysis in `crates/analysis`.
//!
//! Checks (each PASS / FAIL / SKIP; a run's verdict is FAIL iff any check
//! fails — SKIPs never fail a run, they mean the trace lacks the inputs):
//!
//! * `trace_integrity` — the stream parses cleanly, sequence numbers are
//!   contiguous, and (single-epoch traces only) the running backlog
//!   recomputed from packet events agrees with every event's own
//!   `backlog_bytes` field.
//! * `bound_delay_h` / `bound_delay_l` — worst measured queuing delay per
//!   class at the bottleneck WFQ port, normalized to the burst period, is
//!   within the Eq. 1 (`delay_h`) / Eq. 8 (`delay_l`) prediction for the
//!   measured QoS-mix (+ tolerance covering serialization granularity).
//!   For >2 classes the exact fluid model supplies the per-class bound.
//! * `admissible_region` — the realized QoS-mix sits inside the paper's
//!   admissible region (Lemma 1: QoSₕ-share ≤ φ/(φ+1) for 2 classes,
//!   inversion-freeness via the fluid model otherwise).
//! * `rnl_slo` — per-class RNL-per-MTU at the configured percentile meets
//!   the SLO recorded in `run_info` (+ relative tolerance).
//! * `p_admit_bounds` — every Algorithm 1 probability stays in (0, 1].
//!
//! Bound parameters (φ via WFQ weights, μ, ρ, burst period) come from the
//! trace's `run_info` line; command-line overrides win when provided.

use crate::reconstruct::Reconstruction;
use aequitas_analysis::{delay_h, delay_l, fluid_delays, FluidSpec, TwoQosParams};

/// Tolerances and parameter overrides for one audit.
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// Override: weight ratio φ (weights become `[φ, 1]`).
    pub phi: Option<f64>,
    /// Override: aggregate mean load μ.
    pub mu: Option<f64>,
    /// Override: aggregate burst rate ρ.
    pub rho: Option<f64>,
    /// Override: burst period in ps.
    pub period_ps: Option<u64>,
    /// Slack added to normalized delay bounds. Covers packetization and
    /// serialization granularity the fluid-model bounds ignore; matches the
    /// envelope the fig10 validation test accepts.
    pub bound_tol: f64,
    /// Relative slack on SLO targets (0.5 = measured may exceed the target
    /// by 50%).
    pub slo_tol: f64,
    /// Absolute slack on admissible-region share boundaries.
    pub region_tol: f64,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            phi: None,
            mu: None,
            rho: None,
            period_ps: None,
            bound_tol: 0.12,
            slo_tol: 0.5,
            region_tol: 0.05,
        }
    }
}

/// Outcome of one check (or of the whole run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// The property held.
    Pass,
    /// The property was violated.
    Fail,
    /// The trace lacks the inputs to evaluate the property.
    Skip,
}

impl CheckStatus {
    /// Stable string form used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckStatus::Pass => "PASS",
            CheckStatus::Fail => "FAIL",
            CheckStatus::Skip => "SKIP",
        }
    }
}

/// One audited property.
#[derive(Debug, Clone)]
pub struct Check {
    /// Stable check name.
    pub name: String,
    /// Outcome.
    pub status: CheckStatus,
    /// Measured quantity, when the check is quantitative.
    pub measured: Option<f64>,
    /// The limit the measurement was compared against (tolerance included).
    pub limit: Option<f64>,
    /// Human-readable explanation.
    pub detail: String,
}

impl Check {
    fn skip(name: &str, detail: String) -> Check {
        Check {
            name: name.to_string(),
            status: CheckStatus::Skip,
            measured: None,
            limit: None,
            detail,
        }
    }

    fn quantitative(name: &str, measured: f64, limit: f64, detail: String) -> Check {
        Check {
            name: name.to_string(),
            status: if measured <= limit {
                CheckStatus::Pass
            } else {
                CheckStatus::Fail
            },
            measured: Some(measured),
            limit: Some(limit),
            detail,
        }
    }
}

/// The audit result for one run.
#[derive(Debug)]
pub struct AuditReport {
    /// FAIL iff any check failed.
    pub verdict: CheckStatus,
    /// Every evaluated check.
    pub checks: Vec<Check>,
}

/// Bound parameters after merging `run_info` with CLI overrides.
#[derive(Debug, Clone, Default)]
struct BoundParams {
    weights: Vec<f64>,
    mu: f64,
    rho: f64,
    period_ps: u64,
}

fn resolve_params(recon: &Reconstruction, opts: &AuditOptions) -> BoundParams {
    let info = recon.run_info.clone().unwrap_or_default();
    BoundParams {
        weights: match opts.phi {
            Some(phi) => vec![phi, 1.0],
            None => info.weights,
        },
        mu: opts.mu.unwrap_or(info.mu),
        rho: opts.rho.unwrap_or(info.rho),
        period_ps: opts.period_ps.unwrap_or(info.period_ps),
    }
}

/// Run every check against a reconstruction.
pub fn audit(recon: &mut Reconstruction, opts: &AuditOptions) -> AuditReport {
    let mut checks = Vec::new();
    checks.push(integrity_check(recon));
    let params = resolve_params(recon, opts);
    checks.extend(delay_bound_checks(recon, &params, opts));
    checks.push(region_check(recon, &params, opts));
    checks.extend(slo_checks(recon, opts));
    checks.push(admit_prob_check(recon));
    let verdict = if checks.iter().any(|c| c.status == CheckStatus::Fail) {
        CheckStatus::Fail
    } else {
        CheckStatus::Pass
    };
    AuditReport { verdict, checks }
}

/// Reconstruct a trace file and audit it in one step.
pub fn audit_file(
    path: &std::path::Path,
    opts: &AuditOptions,
) -> Result<(Reconstruction, AuditReport), String> {
    let mut recon = Reconstruction::from_file(path)?;
    let report = audit(&mut recon, opts);
    Ok((recon, report))
}

fn integrity_check(recon: &Reconstruction) -> Check {
    let i = &recon.integrity;
    let mismatches: u64 = recon.ports.values().map(|p| p.backlog_mismatches).sum();
    let unmatched: u64 = recon.ports.values().map(|p| p.unmatched_dequeues).sum();
    let mut problems = Vec::new();
    if i.parse_errors > 0 {
        problems.push(format!("{} unparseable lines", i.parse_errors));
    }
    if i.seq_gaps > 0 {
        problems.push(format!("{} seq discontinuities", i.seq_gaps));
    }
    if recon.epochs == 1 {
        // Conservation is only meaningful when one engine wrote the stream;
        // sweep traces interleave points through a shared handle.
        if mismatches > 0 {
            problems.push(format!("{mismatches} backlog-conservation mismatches"));
        }
        if unmatched > 0 {
            problems.push(format!("{unmatched} dequeues without a matching enqueue"));
        }
    }
    let status = if problems.is_empty() {
        CheckStatus::Pass
    } else {
        CheckStatus::Fail
    };
    let mut detail = if problems.is_empty() {
        format!(
            "{} events parsed, seq contiguous, byte conservation holds",
            recon.events
        )
    } else {
        problems.join("; ")
    };
    if recon.epochs > 1 {
        detail.push_str(&format!(
            " (multi-epoch trace: {} restarts, conservation not enforced)",
            recon.epochs - 1
        ));
    }
    Check {
        name: "trace_integrity".into(),
        status,
        measured: None,
        limit: None,
        detail,
    }
}

fn delay_bound_checks(
    recon: &mut Reconstruction,
    params: &BoundParams,
    opts: &AuditOptions,
) -> Vec<Check> {
    let need = "needs WFQ weights, mu, rho and a burst period (from run_info or \
                --phi/--mu/--rho/--period-us)";
    let skip_all = |detail: String| {
        vec![
            Check::skip("bound_delay_h", detail.clone()),
            Check::skip("bound_delay_l", detail),
        ]
    };
    if params.weights.len() < 2 || params.mu <= 0.0 || params.rho <= 0.0 || params.period_ps == 0 {
        return skip_all(format!("burst parameters unknown; {need}"));
    }
    let Some(key) = recon.bottleneck_port().cloned() else {
        return skip_all("no packet events in trace".into());
    };
    let Some(port) = recon.ports.get_mut(&key) else {
        return skip_all(format!("bottleneck port {key} missing from reconstruction"));
    };
    let total_bytes: u64 = port.classes.values().map(|c| c.enq_bytes).sum();
    if total_bytes == 0 {
        return skip_all(format!("no bytes enqueued at bottleneck port {key}"));
    }
    let n = params.weights.len();
    let shares: Vec<f64> = (0..n as u64)
        .map(|c| {
            port.classes
                .get(&c)
                .map_or(0.0, |ct| ct.enq_bytes as f64 / total_bytes as f64)
        })
        .collect();
    let period = params.period_ps as f64;
    // Per-class normalized bound for the measured mix.
    let bounds: Vec<f64> = if n == 2 {
        let p = TwoQosParams {
            phi: params.weights[0] / params.weights[1],
            mu: params.mu.min(1.0),
            rho: params.rho.max(params.mu),
        };
        let x = shares[0].clamp(0.0, 1.0);
        vec![delay_h(p, x), delay_l(p, x)]
    } else {
        fluid_delays(&FluidSpec {
            weights: params.weights.clone(),
            shares: shares.clone(),
            mu: params.mu.min(1.0),
            rho: params.rho.max(params.mu),
        })
    };
    (0..n)
        .map(|c| {
            let name = match (n, c) {
                (2, 0) => "bound_delay_h".to_string(),
                (2, 1) => "bound_delay_l".to_string(),
                _ => format!("bound_delay_class{c}"),
            };
            let measured_ps = port
                .classes
                .get(&(c as u64))
                .map_or(0, |ct| ct.max_delay_ps);
            let measured = measured_ps as f64 / period;
            let limit = bounds[c] + opts.bound_tol;
            Check::quantitative(
                &name,
                measured,
                limit,
                format!(
                    "port {key} class {c}: worst queuing delay {:.4} periods vs \
                     bound {:.4} (+{:.2} tol) at measured share {:.3}",
                    measured, bounds[c], opts.bound_tol, shares[c]
                ),
            )
        })
        .collect()
}

fn region_check(recon: &Reconstruction, params: &BoundParams, opts: &AuditOptions) -> Check {
    let name = "admissible_region";
    if params.weights.len() < 2 {
        return Check::skip(name, "WFQ weights unknown (no run_info, no --phi)".into());
    }
    // Realized mix: admitted RPC bytes per qos_run when the trace has an
    // RPC layer, else wire bytes per class at the bottleneck port.
    let n = params.weights.len();
    let (shares, source) = {
        let total: u64 = recon.qos.values().map(|q| q.issued_bytes).sum();
        if total > 0 {
            let s: Vec<f64> = (0..n as u64)
                .map(|q| {
                    recon
                        .qos
                        .get(&q)
                        .map_or(0.0, |st| st.issued_bytes as f64 / total as f64)
                })
                .collect();
            (s, "admitted RPC bytes")
        } else if let Some(key) = recon.bottleneck_port() {
            let port = &recon.ports[key];
            let total: u64 = port.classes.values().map(|c| c.enq_bytes).sum();
            if total == 0 {
                return Check::skip(name, "no traffic in trace".into());
            }
            let s: Vec<f64> = (0..n as u64)
                .map(|c| {
                    port.classes
                        .get(&c)
                        .map_or(0.0, |ct| ct.enq_bytes as f64 / total as f64)
                })
                .collect();
            (s, "bottleneck wire bytes")
        } else {
            return Check::skip(name, "no traffic in trace".into());
        }
    };
    if n == 2 {
        // Lemma 1 closed form: inversion-free iff QoSh-share ≤ φ/(φ+1).
        let phi = params.weights[0] / params.weights[1];
        let boundary = if params.mu > 0.0 && params.rho > 0.0 {
            aequitas_analysis::admissible_region_2qos(TwoQosParams {
                phi,
                mu: params.mu.min(1.0),
                rho: params.rho.max(params.mu),
            })
        } else {
            phi / (phi + 1.0)
        };
        Check::quantitative(
            name,
            shares[0],
            boundary + opts.region_tol,
            format!(
                "QoSh-share {:.3} ({source}) vs region boundary phi/(phi+1) = {:.3} \
                 (+{:.2} tol)",
                shares[0], boundary, opts.region_tol
            ),
        )
    } else {
        if params.mu <= 0.0 || params.rho <= 0.0 {
            return Check::skip(
                name,
                "N-QoS region needs mu and rho (run_info or --mu/--rho)".into(),
            );
        }
        let free = aequitas_analysis::inversion_free(
            &params.weights,
            &shares,
            params.mu.min(1.0),
            params.rho.max(params.mu),
        );
        Check {
            name: name.into(),
            status: if free {
                CheckStatus::Pass
            } else {
                CheckStatus::Fail
            },
            measured: Some(shares[0]),
            limit: None,
            detail: format!(
                "mix {:?} ({source}) is {} under the fluid model",
                shares
                    .iter()
                    .map(|s| (s * 1000.0).round() / 1000.0)
                    .collect::<Vec<_>>(),
                if free { "inversion-free" } else { "NOT inversion-free" }
            ),
        }
    }
}

fn slo_checks(recon: &mut Reconstruction, opts: &AuditOptions) -> Vec<Check> {
    let Some(info) = recon.run_info.clone() else {
        return vec![Check::skip("rnl_slo", "no run_info in trace".into())];
    };
    let targets: Vec<(u64, u64)> = info
        .slos_per_mtu_ps
        .iter()
        .enumerate()
        .filter(|(_, &slo)| slo > 0)
        .map(|(q, &slo)| (q as u64, slo))
        .collect();
    if targets.is_empty() {
        return vec![Check::skip("rnl_slo", "run has no RNL SLO targets".into())];
    }
    let pct = if info.slo_percentile > 0.0 {
        info.slo_percentile
    } else {
        99.9
    };
    targets
        .into_iter()
        .map(|(q, slo)| {
            let name = format!("rnl_slo_qos{q}");
            let Some(stats) = recon.qos.get_mut(&q) else {
                return Check::skip(&name, format!("no completions on QoS {q}"));
            };
            let Some(measured_ps) = stats.rnl_per_mtu_ps.percentile(pct) else {
                return Check::skip(&name, format!("no post-warmup completions on QoS {q}"));
            };
            let limit_ps = slo as f64 * (1.0 + opts.slo_tol);
            Check::quantitative(
                &name,
                measured_ps / 1e6,
                limit_ps / 1e6,
                format!(
                    "p{pct} RNL/MTU {:.3} us vs SLO {:.3} us (+{:.0}% tol) over {} RPCs",
                    measured_ps / 1e6,
                    slo as f64 / 1e6,
                    opts.slo_tol * 100.0,
                    stats.rnl_per_mtu_ps.count()
                ),
            )
        })
        .collect()
}

fn admit_prob_check(recon: &Reconstruction) -> Check {
    let name = "p_admit_bounds";
    if recon.admit.is_empty() {
        return Check::skip(name, "no admit_prob events in trace".into());
    }
    let mut worst: Option<f64> = None;
    let mut updates = 0u64;
    for at in recon.admit.values() {
        updates += at.points.len() as u64;
        if at.min_p <= 0.0 || at.max_p > 1.0 + 1e-9 {
            let bad = if at.min_p <= 0.0 { at.min_p } else { at.max_p };
            worst = Some(worst.map_or(bad, |w: f64| if bad < w { bad } else { w }));
        }
    }
    match worst {
        None => Check {
            name: name.into(),
            status: CheckStatus::Pass,
            measured: None,
            limit: None,
            detail: format!(
                "{updates} Algorithm 1 steps across {} channels, all p in (0, 1]",
                recon.admit.len()
            ),
        },
        Some(bad) => Check {
            name: name.into(),
            status: CheckStatus::Fail,
            measured: Some(bad),
            limit: None,
            detail: format!("admit probability left (0, 1]: saw {bad}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A synthetic 2-QoS trace at fig-8 parameters whose class-0 delay can
    /// be dialed to sit under or over the Eq. 1 bound.
    fn synthetic(delay_h_periods: f64) -> String {
        let period: u64 = 100_000_000;
        let mut t = format!(
            "{{\"seq\":0,\"t_ps\":0,\"type\":\"trace_header\",\"format\":\"aequitas-trace\",\"schema_version\":{}}}\n",
            aequitas_telemetry::TRACE_SCHEMA_VERSION
        );
        t += &format!(
            "{{\"seq\":1,\"t_ps\":0,\"type\":\"run_info\",\"experiment\":\"synthetic\",\"hosts\":3,\
             \"classes\":2,\"weights\":[4,1],\"slos_per_mtu_ps\":[0,0],\"slo_percentile\":99.9,\
             \"warmup_ps\":0,\"duration_ps\":{period},\"senders\":2,\"mu\":0.8,\"rho\":1.2,\
             \"period_ps\":{period}}}\n"
        );
        // Mix: 70% class 0, 30% class 1 (x = 0.7, inside the region).
        let d0 = (delay_h_periods * period as f64) as u64;
        let mut seq = 2;
        let mut line = |s: &str| {
            t += s;
            t += "\n";
        };
        line(&format!(
            "{{\"seq\":{seq},\"t_ps\":100,\"type\":\"pkt_enqueue\",\"node\":\"switch0\",\"port\":2,\
             \"class\":0,\"bytes\":7000,\"depth_pkts\":1,\"backlog_bytes\":7000}}"
        ));
        seq += 1;
        line(&format!(
            "{{\"seq\":{seq},\"t_ps\":200,\"type\":\"pkt_enqueue\",\"node\":\"switch0\",\"port\":2,\
             \"class\":1,\"bytes\":3000,\"depth_pkts\":1,\"backlog_bytes\":10000}}"
        ));
        seq += 1;
        line(&format!(
            "{{\"seq\":{seq},\"t_ps\":{},\"type\":\"pkt_dequeue\",\"node\":\"switch0\",\"port\":2,\
             \"class\":0,\"bytes\":7000,\"backlog_bytes\":3000}}",
            100 + d0
        ));
        seq += 1;
        line(&format!(
            "{{\"seq\":{seq},\"t_ps\":{},\"type\":\"pkt_dequeue\",\"node\":\"switch0\",\"port\":2,\
             \"class\":1,\"bytes\":3000,\"backlog_bytes\":0}}",
            200 + d0
        ));
        t
    }

    fn run(trace: String) -> AuditReport {
        let mut recon = Reconstruction::from_reader(Cursor::new(trace)).unwrap();
        audit(&mut recon, &AuditOptions::default())
    }

    #[test]
    fn in_bound_run_passes() {
        // Eq. 1 at x=0.7 (fig8 params) predicts ~0.033 periods; with the
        // 0.12 tolerance anything under ~0.153 passes.
        let report = run(synthetic(0.10));
        assert_eq!(report.verdict, CheckStatus::Pass, "{:#?}", report.checks);
        let bound_h = report
            .checks
            .iter()
            .find(|c| c.name == "bound_delay_h")
            .unwrap();
        assert_eq!(bound_h.status, CheckStatus::Pass, "{bound_h:?}");
        assert!(bound_h.measured.unwrap() < bound_h.limit.unwrap());
    }

    #[test]
    fn out_of_bound_run_fails() {
        // 2.5 periods of class-0 delay blows past any fig-8 bound.
        let report = run(synthetic(2.5));
        assert_eq!(report.verdict, CheckStatus::Fail);
        let bound_h = report
            .checks
            .iter()
            .find(|c| c.name == "bound_delay_h")
            .unwrap();
        assert_eq!(bound_h.status, CheckStatus::Fail, "{bound_h:?}");
    }

    #[test]
    fn missing_params_skip_not_fail() {
        let t = format!(
            "{{\"seq\":0,\"t_ps\":0,\"type\":\"trace_header\",\"format\":\"aequitas-trace\",\"schema_version\":{}}}\n",
            aequitas_telemetry::TRACE_SCHEMA_VERSION
        );
        let report = run(t);
        assert_eq!(report.verdict, CheckStatus::Pass, "{:#?}", report.checks);
        assert!(report
            .checks
            .iter()
            .all(|c| c.status != CheckStatus::Fail));
    }
}
