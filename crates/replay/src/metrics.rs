//! Parser for the sampled-metrics CSV exported by `--metrics`
//! (`t_us,metric,labels,value`; the labels field is double-quoted whenever
//! it is non-empty because multi-pair label strings embed commas).

use std::collections::BTreeMap;

/// All series from one metrics CSV, keyed by `(metric, labels)`.
#[derive(Debug, Default)]
pub struct MetricsCsv {
    /// Sample points per series, in file order (ascending time per series).
    pub series: BTreeMap<(String, String), Vec<(f64, f64)>>,
}

impl MetricsCsv {
    /// Parse a full CSV document. The header row is mandatory; any
    /// malformed row is a hard error (the exporter never produces one).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "t_us,metric,labels,value")) => {}
            Some((_, other)) => {
                return Err(format!(
                    "bad metrics CSV header: expected 't_us,metric,labels,value', got '{other}'"
                ))
            }
            None => return Err("empty metrics CSV".into()),
        }
        let mut out = MetricsCsv::default();
        for (idx, row) in lines {
            let cols = split_csv(row).ok_or_else(|| format!("line {}: unbalanced quotes", idx + 1))?;
            if cols.len() != 4 {
                return Err(format!(
                    "line {}: expected 4 CSV fields, got {}",
                    idx + 1,
                    cols.len()
                ));
            }
            let t: f64 = cols[0]
                .parse()
                .map_err(|_| format!("line {}: bad t_us '{}'", idx + 1, cols[0]))?;
            let v: f64 = cols[3]
                .parse()
                .map_err(|_| format!("line {}: bad value '{}'", idx + 1, cols[3]))?;
            out.series
                .entry((cols[1].clone(), cols[2].clone()))
                .or_default()
                .push((t, v));
        }
        Ok(out)
    }

    /// Look up one series.
    pub fn get(&self, metric: &str, labels: &str) -> Option<&[(f64, f64)]> {
        self.series
            .get(&(metric.to_string(), labels.to_string()))
            .map(Vec::as_slice)
    }

    /// Total sample rows.
    pub fn rows(&self) -> usize {
        self.series.values().map(Vec::len).sum()
    }
}

/// Split one CSV row honoring double-quoted fields; returns `None` on
/// unbalanced quotes. Quotes are stripped from the output.
fn split_csv(row: &str) -> Option<Vec<String>> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for ch in row.chars() {
        match ch {
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => out.push(std::mem::take(&mut cur)),
            _ => cur.push(ch),
        }
    }
    if in_quotes {
        return None;
    }
    out.push(cur);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_quoted_labels() {
        let csv = "t_us,metric,labels,value\n\
                   0.000,switch.port.backlog_bytes,\"sw=0,port=2\",128\n\
                   10.000,switch.port.backlog_bytes,\"sw=0,port=2\",0\n\
                   0.000,rpc.issued,,3\n";
        let m = MetricsCsv::parse(csv).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(
            m.get("switch.port.backlog_bytes", "sw=0,port=2").unwrap(),
            &[(0.0, 128.0), (10.0, 0.0)]
        );
        assert_eq!(m.get("rpc.issued", "").unwrap(), &[(0.0, 3.0)]);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(MetricsCsv::parse("").is_err());
        assert!(MetricsCsv::parse("nope\n").is_err());
        assert!(MetricsCsv::parse("t_us,metric,labels,value\n1,2,3\n").is_err());
        assert!(MetricsCsv::parse("t_us,metric,labels,value\nx,m,,1\n").is_err());
    }
}
