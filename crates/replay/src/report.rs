//! Report rendering: a deterministic JSON writer (the workspace has no
//! serde) plus the per-run replay/audit report in JSON and human-readable
//! form. Determinism matters — replaying the same trace twice must produce
//! byte-identical reports (guarded by `tests/replay.rs`), so everything
//! iterates ordered maps and floats are formatted via Rust's shortest
//! round-trip `Display`.

use crate::audit::AuditReport;
use crate::reconstruct::{ChannelStats, Reconstruction};
use std::fmt::Write as _;

/// A push-style JSON writer producing compact (single-line-per-call,
/// no-whitespace) output with deterministic field order — the caller's call
/// order is the field order.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` once it has at least one item.
    stack: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn comma(&mut self) {
        if let Some(has_items) = self.stack.last_mut() {
            if *has_items {
                self.buf.push(',');
            }
            *has_items = true;
        }
    }

    /// Write an object key (inside an object).
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.comma();
        let _ = write!(self.buf, "\"{}\":", escape(k));
        // The value that follows must not emit another comma.
        if let Some(has_items) = self.stack.last_mut() {
            *has_items = false;
        }
        self
    }

    /// Open an object (as a value or array element).
    pub fn begin_obj(&mut self) -> &mut Self {
        self.comma();
        self.buf.push('{');
        self.stack.push(false);
        self
    }

    /// Close the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push('}');
        if let Some(has_items) = self.stack.last_mut() {
            *has_items = true;
        }
        self
    }

    /// Open an array.
    pub fn begin_arr(&mut self) -> &mut Self {
        self.comma();
        self.buf.push('[');
        self.stack.push(false);
        self
    }

    /// Close the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push(']');
        if let Some(has_items) = self.stack.last_mut() {
            *has_items = true;
        }
        self
    }

    /// Write a string value.
    pub fn str_val(&mut self, v: &str) -> &mut Self {
        self.comma();
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Write an integer value.
    pub fn u64_val(&mut self, v: u64) -> &mut Self {
        self.comma();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Write a float value (shortest round-trip form; non-finite → null).
    pub fn f64_val(&mut self, v: f64) -> &mut Self {
        self.comma();
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Write a bool value.
    pub fn bool_val(&mut self, v: bool) -> &mut Self {
        self.comma();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Write a null.
    pub fn null_val(&mut self) -> &mut Self {
        self.comma();
        self.buf.push_str("null");
        self
    }

    /// Finish and take the document.
    pub fn finish(self) -> String {
        self.buf
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn quantiles_obj(w: &mut JsonWriter, p: &mut aequitas_stats::Percentiles) {
    w.begin_obj();
    w.key("count").u64_val(p.count() as u64);
    for (k, v) in [
        ("p50", p.p50()),
        ("p99", p.p99()),
        ("p999", p.p999()),
        ("mean", p.mean()),
        ("max", p.max()),
    ] {
        match v {
            // Report in microseconds for readability; ps in, us out.
            Some(v) => w.key(k).f64_val(round6(v / 1e6)),
            None => w.key(k).null_val(),
        };
    }
    w.end_obj();
}

/// Round to 6 decimals so report floats stay short and stable.
fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

fn channel_obj(w: &mut JsonWriter, st: &mut ChannelStats) {
    w.key("issued").u64_val(st.issued);
    w.key("issued_bytes").u64_val(st.issued_bytes);
    w.key("downgraded_in").u64_val(st.downgraded_in);
    w.key("completed").u64_val(st.completed);
    w.key("rnl_per_mtu_us");
    quantiles_obj(w, &mut st.rnl_per_mtu_ps);
    w.key("rnl_us");
    quantiles_obj(w, &mut st.rnl_ps);
}

/// Render the full per-run report as a JSON document.
pub fn report_json(recon: &mut Reconstruction, report: &AuditReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("schema_version").u64_val(recon.schema_version as u64);
    match &recon.run_info {
        Some(info) => {
            w.key("experiment").str_val(&info.experiment);
            w.key("run_info").begin_obj();
            w.key("hosts").u64_val(info.hosts);
            w.key("classes").u64_val(info.classes);
            w.key("weights").begin_arr();
            for &x in &info.weights {
                w.f64_val(x);
            }
            w.end_arr();
            w.key("slos_per_mtu_ps").begin_arr();
            for &x in &info.slos_per_mtu_ps {
                w.u64_val(x);
            }
            w.end_arr();
            w.key("slo_percentile").f64_val(info.slo_percentile);
            w.key("warmup_ps").u64_val(info.warmup_ps);
            w.key("duration_ps").u64_val(info.duration_ps);
            w.key("senders").u64_val(info.senders);
            w.key("mu").f64_val(info.mu);
            w.key("rho").f64_val(info.rho);
            w.key("period_ps").u64_val(info.period_ps);
            w.end_obj();
        }
        None => {
            w.key("experiment").str_val("?");
            w.key("run_info").null_val();
        }
    }
    w.key("events").u64_val(recon.events);
    w.key("epochs").u64_val(recon.epochs);
    w.key("last_t_us").f64_val(round6(recon.last_t_ps as f64 / 1e6));
    w.key("verdict").str_val(report.verdict.as_str());
    w.key("checks").begin_arr();
    for c in &report.checks {
        w.begin_obj();
        w.key("name").str_val(&c.name);
        w.key("status").str_val(c.status.as_str());
        match c.measured {
            Some(v) => w.key("measured").f64_val(round6(v)),
            None => w.key("measured").null_val(),
        };
        match c.limit {
            Some(v) => w.key("limit").f64_val(round6(v)),
            None => w.key("limit").null_val(),
        };
        w.key("detail").str_val(&c.detail);
        w.end_obj();
    }
    w.end_arr();
    w.key("event_counts").begin_obj();
    for (kind, n) in &recon.kind_counts {
        w.key(kind).u64_val(*n);
    }
    w.end_obj();
    w.key("qos").begin_arr();
    for (&q, st) in recon.qos.iter_mut() {
        w.begin_obj();
        w.key("qos").u64_val(q);
        channel_obj(&mut w, st);
        w.end_obj();
    }
    w.end_arr();
    w.key("channels").begin_arr();
    for (&key, st) in recon.channels.iter_mut() {
        w.begin_obj();
        w.key("src").u64_val(key.0);
        w.key("dst").u64_val(key.1);
        w.key("qos").u64_val(key.2);
        channel_obj(&mut w, st);
        w.end_obj();
    }
    w.end_arr();
    w.key("ports").begin_arr();
    for (key, port) in recon.ports.iter_mut() {
        w.begin_obj();
        w.key("node").str_val(&key.node);
        w.key("port").u64_val(key.port);
        w.key("max_backlog_bytes").u64_val(port.max_backlog_bytes);
        w.key("enq_pkts").u64_val(port.enq_pkts);
        w.key("deq_pkts").u64_val(port.deq_pkts);
        w.key("drop_pkts").u64_val(port.drop_pkts);
        w.key("fault_drop_pkts").u64_val(port.fault_drop_pkts);
        w.key("classes").begin_arr();
        for (&c, ct) in port.classes.iter_mut() {
            w.begin_obj();
            w.key("class").u64_val(c);
            w.key("enq_bytes").u64_val(ct.enq_bytes);
            w.key("max_depth_pkts").u64_val(ct.max_depth_pkts);
            w.key("max_delay_us")
                .f64_val(round6(ct.max_delay_ps as f64 / 1e6));
            match ct.delay_ps.p99() {
                Some(v) => w.key("p99_delay_us").f64_val(round6(v / 1e6)),
                None => w.key("p99_delay_us").null_val(),
            };
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
    }
    w.end_arr();
    w.key("admit").begin_arr();
    for (&(host, dst, qos), at) in &recon.admit {
        w.begin_obj();
        w.key("host").u64_val(host);
        w.key("dst").u64_val(dst);
        w.key("qos").u64_val(qos);
        w.key("updates").u64_val(at.points.len() as u64);
        w.key("min_p").f64_val(round6(at.min_p));
        w.key("max_p").f64_val(round6(at.max_p));
        w.key("final_p")
            .f64_val(round6(at.points.last().map_or(0.0, |&(_, p)| p)));
        w.end_obj();
    }
    w.end_arr();
    w.key("faults").begin_obj();
    w.key("link_windows")
        .u64_val(recon.faults.link_windows.values().map(|v| v.len() as u64).sum());
    w.key("quota_windows")
        .u64_val(recon.faults.quota_windows.values().map(|v| v.len() as u64).sum());
    w.key("pkt_drops").u64_val(recon.faults.pkt_drops);
    w.key("corrupt_drops").u64_val(recon.faults.corrupt_drops);
    w.end_obj();
    w.key("warnings").begin_obj();
    w.key("count").u64_val(recon.warn_count);
    w.key("samples").begin_arr();
    for s in &recon.warn_samples {
        w.str_val(s);
    }
    w.end_arr();
    w.end_obj();
    w.end_obj();
    w.finish()
}

/// Render the human-readable verdict report. Returned as a string so the
/// CLI (or harness self-audit) decides where it goes.
pub fn report_text(recon: &mut Reconstruction, report: &AuditReport) -> String {
    let mut out = String::new();
    let exp = recon
        .run_info
        .as_ref()
        .map_or("?".to_string(), |i| i.experiment.clone());
    let _ = writeln!(
        out,
        "audit: experiment={exp} events={} epochs={} last_t={:.3}ms verdict={}",
        recon.events,
        recon.epochs,
        recon.last_t_ps as f64 / 1e9,
        report.verdict.as_str()
    );
    for c in &report.checks {
        let nums = match (c.measured, c.limit) {
            (Some(m), Some(l)) => format!(" [{:.4} vs {:.4}]", m, l),
            _ => String::new(),
        };
        let _ = writeln!(out, "  {:<22} {:<4}{nums} {}", c.name, c.status.as_str(), c.detail);
    }
    for (&q, st) in recon.qos.iter_mut() {
        if let (Some(p50), Some(p99), Some(p999)) = (
            st.rnl_per_mtu_ps.p50(),
            st.rnl_per_mtu_ps.p99(),
            st.rnl_per_mtu_ps.p999(),
        ) {
            let _ = writeln!(
                out,
                "  qos{q}: {} done, RNL/MTU p50 {:.3}us p99 {:.3}us p99.9 {:.3}us",
                st.completed,
                p50 / 1e6,
                p99 / 1e6,
                p999 / 1e6
            );
        }
    }
    // Recovery: when the trace carries fault windows and per-QoS SLOs,
    // report how long after the first fault onset each QoS's windowed p99
    // stayed above its SLO (crate::timeline semantics).
    let onset = recon
        .faults
        .link_windows
        .values()
        .flat_map(|ws| ws.iter().map(|&(start, _)| start))
        .min();
    if let (Some(onset), Some(info)) = (onset, recon.run_info.as_ref()) {
        const RECOVERY_WINDOW_PS: u64 = 500_000_000; // 500 us buckets
        for (&q, points) in &recon.qos_rnl_points {
            let slo = info
                .slos_per_mtu_ps
                .get(q as usize)
                .copied()
                .unwrap_or(0);
            if slo == 0 {
                continue;
            }
            let tl = crate::timeline::windowed(points, RECOVERY_WINDOW_PS);
            let restored = crate::timeline::time_to_restore(&tl, onset, slo as f64);
            let _ = match restored {
                Some(d) => writeln!(
                    out,
                    "  qos{q}: SLO restored {:.3}ms after fault onset ({:.3}ms)",
                    d as f64 / 1e9,
                    onset as f64 / 1e9
                ),
                None => writeln!(
                    out,
                    "  qos{q}: SLO NOT restored within the trace after fault onset ({:.3}ms)",
                    onset as f64 / 1e9
                ),
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_nested_json() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("a").u64_val(1);
        w.key("b").begin_arr();
        w.u64_val(1);
        w.str_val("x\"y");
        w.begin_obj();
        w.key("c").bool_val(true);
        w.end_obj();
        w.end_arr();
        w.key("d").f64_val(0.5);
        w.key("e").null_val();
        w.end_obj();
        let doc = w.finish();
        assert_eq!(doc, "{\"a\":1,\"b\":[1,\"x\\\"y\",{\"c\":true}],\"d\":0.5,\"e\":null}");
        // Our own parser accepts it (objects nested in arrays aside).
        crate::json::parse_object("{\"a\":1,\"d\":0.5,\"e\":null}").unwrap();
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("x").f64_val(f64::NAN);
        w.end_obj();
        assert_eq!(w.finish(), "{\"x\":null}");
    }
}
