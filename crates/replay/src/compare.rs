//! Cross-run analysis: `aequitas-replay analyze --input results/ --out
//! analysis/` replays every trace under the input directory, audits each,
//! writes per-run reports plus a cross-run diff (JSON + text) showing how
//! RNL quantiles (p50/p99/p99.9 per QoS), queue peaks, drops, and verdicts
//! moved against a baseline run.

use crate::audit::{audit, AuditOptions, AuditReport};
use crate::report::{report_json, JsonWriter};
use crate::reconstruct::Reconstruction;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// RNL-per-MTU quantile sketch for one QoS level, in microseconds.
#[derive(Debug, Clone, Copy)]
pub struct Quantiles {
    /// Post-warmup completions behind the sketch.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Mean.
    pub mean: f64,
}

/// The per-run digest compare mode works from.
#[derive(Debug)]
pub struct RunSummary {
    /// Run name (file stem or directory name).
    pub name: String,
    /// Experiment recorded in `run_info` (`?` when absent).
    pub experiment: String,
    /// Audit verdict.
    pub verdict: String,
    /// Names of failed checks.
    pub failed_checks: Vec<String>,
    /// Trace lines consumed.
    pub events: u64,
    /// RNL quantiles per QoS (post-warmup, `qos_run`).
    pub rnl: BTreeMap<u64, Quantiles>,
    /// Peak backlog across all ports, bytes.
    pub max_backlog_bytes: u64,
    /// Tail drops across all ports.
    pub drops: u64,
    /// Fault windows (link + quota) observed.
    pub fault_windows: u64,
    /// Final admit probability averaged across channels (1.0 when no
    /// controller ran).
    pub mean_final_p: f64,
}

impl RunSummary {
    fn build(name: &str, recon: &mut Reconstruction, report: &AuditReport) -> RunSummary {
        let mut rnl = BTreeMap::new();
        for (&q, st) in recon.qos.iter_mut() {
            let p = &mut st.rnl_per_mtu_ps;
            if let (Some(p50), Some(p99), Some(p999), Some(mean)) =
                (p.p50(), p.p99(), p.p999(), p.mean())
            {
                rnl.insert(
                    q,
                    Quantiles {
                        count: p.count() as u64,
                        p50: p50 / 1e6,
                        p99: p99 / 1e6,
                        p999: p999 / 1e6,
                        mean: mean / 1e6,
                    },
                );
            }
        }
        let finals: Vec<f64> = recon
            .admit
            .values()
            .filter_map(|at| at.points.last().map(|&(_, p)| p))
            .collect();
        RunSummary {
            name: name.to_string(),
            experiment: recon
                .run_info
                .as_ref()
                .map_or("?".to_string(), |i| i.experiment.clone()),
            verdict: report.verdict.as_str().to_string(),
            failed_checks: report
                .checks
                .iter()
                .filter(|c| c.status == crate::audit::CheckStatus::Fail)
                .map(|c| c.name.clone())
                .collect(),
            events: recon.events,
            rnl,
            max_backlog_bytes: recon
                .ports
                .values()
                .map(|p| p.max_backlog_bytes)
                .max()
                .unwrap_or(0),
            drops: recon.ports.values().map(|p| p.drop_pkts).sum(),
            fault_windows: recon
                .faults
                .link_windows
                .values()
                .chain(recon.faults.quota_windows.values())
                .map(|v| v.len() as u64)
                .sum(),
            mean_final_p: if finals.is_empty() {
                1.0
            } else {
                finals.iter().sum::<f64>() / finals.len() as f64
            },
        }
    }
}

/// Find the traces under `input`: direct `*.jsonl` children (run name =
/// file stem) plus any `<subdir>/trace.jsonl` (run name = subdir name).
/// Sorted by name so every downstream artifact is deterministic.
pub fn discover_runs(input: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut runs = Vec::new();
    let entries = std::fs::read_dir(input)
        .map_err(|e| format!("cannot read input dir {}: {e}", input.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_file() && name.ends_with(".jsonl") {
            runs.push((name.trim_end_matches(".jsonl").to_string(), path));
        } else if path.is_dir() {
            let nested = path.join("trace.jsonl");
            if nested.is_file() {
                runs.push((name, nested));
            }
        }
    }
    runs.sort();
    Ok(runs)
}

fn pct_delta(base: f64, run: f64) -> f64 {
    if base.abs() < 1e-12 {
        0.0
    } else {
        (run - base) / base * 100.0
    }
}

/// Analyze every run under `input`, writing per-run audit reports and the
/// cross-run comparison into `out`. Returns the comparison text (also
/// written to `out/compare.txt`). `baseline` picks the reference run by
/// name; default is the first in sorted order.
pub fn analyze(
    input: &Path,
    out: &Path,
    baseline: Option<&str>,
    opts: &AuditOptions,
) -> Result<String, String> {
    let runs = discover_runs(input)?;
    if runs.is_empty() {
        return Err(format!(
            "no traces found under {} (expected *.jsonl files or <run>/trace.jsonl)",
            input.display()
        ));
    }
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let mut summaries = Vec::new();
    for (name, path) in &runs {
        let mut recon = Reconstruction::from_file(path)
            .map_err(|e| format!("run '{name}': {e}"))?;
        let report = audit(&mut recon, opts);
        let doc = report_json(&mut recon, &report);
        let report_path = out.join(format!("{name}.audit.json"));
        std::fs::write(&report_path, doc)
            .map_err(|e| format!("cannot write {}: {e}", report_path.display()))?;
        summaries.push(RunSummary::build(name, &mut recon, &report));
    }
    let base_idx = match baseline {
        Some(b) => summaries
            .iter()
            .position(|s| s.name == b)
            .ok_or_else(|| format!("baseline run '{b}' not found"))?,
        None => 0,
    };
    let text = compare_text(&summaries, base_idx);
    let json = compare_json(&summaries, base_idx);
    std::fs::write(out.join("compare.txt"), &text)
        .map_err(|e| format!("cannot write compare.txt: {e}"))?;
    std::fs::write(out.join("compare.json"), json)
        .map_err(|e| format!("cannot write compare.json: {e}"))?;
    Ok(text)
}

fn compare_text(summaries: &[RunSummary], base_idx: usize) -> String {
    let base = &summaries[base_idx];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cross-run analysis: {} runs, baseline '{}'",
        summaries.len(),
        base.name
    );
    for s in summaries {
        let marker = if s.name == base.name { " (baseline)" } else { "" };
        let failed = if s.failed_checks.is_empty() {
            String::new()
        } else {
            format!(" failed=[{}]", s.failed_checks.join(","))
        };
        let _ = writeln!(
            out,
            "\n{}{marker}: experiment={} verdict={}{failed} events={} \
             max_backlog={}B drops={} fault_windows={} mean_final_p={:.3}",
            s.name,
            s.experiment,
            s.verdict,
            s.events,
            s.max_backlog_bytes,
            s.drops,
            s.fault_windows,
            s.mean_final_p
        );
        for (&q, quant) in &s.rnl {
            let mut line = format!(
                "  qos{q} RNL/MTU us: p50 {:.3} p99 {:.3} p99.9 {:.3} mean {:.3} (n={})",
                quant.p50, quant.p99, quant.p999, quant.mean, quant.count
            );
            if s.name != base.name {
                if let Some(bq) = base.rnl.get(&q) {
                    let _ = write!(
                        line,
                        "  | vs baseline: p50 {:+.1}% p99 {:+.1}% p99.9 {:+.1}%",
                        pct_delta(bq.p50, quant.p50),
                        pct_delta(bq.p99, quant.p99),
                        pct_delta(bq.p999, quant.p999)
                    );
                }
            }
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

fn compare_json(summaries: &[RunSummary], base_idx: usize) -> String {
    let base = &summaries[base_idx];
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("baseline").str_val(&base.name);
    w.key("runs").begin_arr();
    for s in summaries {
        w.begin_obj();
        w.key("name").str_val(&s.name);
        w.key("experiment").str_val(&s.experiment);
        w.key("verdict").str_val(&s.verdict);
        w.key("failed_checks").begin_arr();
        for f in &s.failed_checks {
            w.str_val(f);
        }
        w.end_arr();
        w.key("events").u64_val(s.events);
        w.key("max_backlog_bytes").u64_val(s.max_backlog_bytes);
        w.key("drops").u64_val(s.drops);
        w.key("fault_windows").u64_val(s.fault_windows);
        w.key("mean_final_p").f64_val(s.mean_final_p);
        w.key("rnl_per_mtu_us").begin_arr();
        for (&q, quant) in &s.rnl {
            w.begin_obj();
            w.key("qos").u64_val(q);
            w.key("count").u64_val(quant.count);
            w.key("p50").f64_val(quant.p50);
            w.key("p99").f64_val(quant.p99);
            w.key("p999").f64_val(quant.p999);
            w.key("mean").f64_val(quant.mean);
            if s.name != base.name {
                if let Some(bq) = base.rnl.get(&q) {
                    w.key("delta_p50_pct").f64_val(pct_delta(bq.p50, quant.p50));
                    w.key("delta_p99_pct").f64_val(pct_delta(bq.p99, quant.p99));
                    w.key("delta_p999_pct")
                        .f64_val(pct_delta(bq.p999, quant.p999));
                }
            }
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_trace(dir: &Path, name: &str, rnl_scale: u64) {
        let mut t = format!(
            "{{\"seq\":0,\"t_ps\":0,\"type\":\"trace_header\",\"format\":\"aequitas-trace\",\"schema_version\":{}}}\n",
            aequitas_telemetry::TRACE_SCHEMA_VERSION
        );
        for i in 0..10u64 {
            t += &format!(
                "{{\"seq\":{},\"t_ps\":{},\"type\":\"rpc_complete\",\"host\":0,\"dst\":2,\
                 \"qos_run\":0,\"downgraded\":false,\"size_bytes\":4096,\"rnl_ps\":{},\
                 \"rnl_per_mtu_ps\":{}}}\n",
                i + 1,
                1000 + i,
                rnl_scale * (i + 1),
                rnl_scale * (i + 1)
            );
        }
        std::fs::write(dir.join(format!("{name}.jsonl")), t).unwrap();
    }

    #[test]
    fn analyze_diffs_quantiles_across_runs() {
        let dir = std::env::temp_dir().join("aequitas-replay-compare-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_trace(&dir, "a-base", 1_000_000);
        write_trace(&dir, "b-slow", 2_000_000);
        let out = dir.join("analysis");
        let text = analyze(&dir, &out, None, &AuditOptions::default()).unwrap();
        assert!(text.contains("baseline 'a-base'"), "{text}");
        assert!(text.contains("+100.0%"), "{text}");
        assert!(out.join("a-base.audit.json").is_file());
        assert!(out.join("b-slow.audit.json").is_file());
        assert!(out.join("compare.json").is_file());
        let cj = std::fs::read_to_string(out.join("compare.json")).unwrap();
        assert!(cj.contains("\"delta_p99_pct\":100"), "{cj}");
        // Determinism: analyzing again produces identical bytes.
        let text2 = analyze(&dir, &out, None, &AuditOptions::default()).unwrap();
        assert_eq!(text, text2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_baseline_is_an_error() {
        let dir = std::env::temp_dir().join("aequitas-replay-compare-test2");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_trace(&dir, "only", 1_000_000);
        let err = analyze(&dir, &dir.join("x"), Some("nope"), &AuditOptions::default())
            .unwrap_err();
        assert!(err.contains("baseline run 'nope' not found"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
