//! `aequitas-replay` — replay, audit, and compare Aequitas telemetry.
//!
//! ```text
//! aequitas-replay replay  --trace t.jsonl [--metrics m.csv] [--json out.json]
//! aequitas-replay audit   --trace t.jsonl [--json out.json]
//!                         [--phi X --mu X --rho X --period-us N]
//!                         [--bound-tol X] [--slo-tol X] [--region-tol X]
//! aequitas-replay analyze --input results/ --out analysis/ [--baseline NAME]
//! aequitas-replay schema
//! ```
//!
//! Exit codes: 0 = success (audit verdict PASS), 1 = audit verdict FAIL,
//! 2 = usage, I/O, or schema error.

use aequitas_replay::audit::{audit, AuditOptions, CheckStatus};
use aequitas_replay::compare::analyze;
use aequitas_replay::metrics::MetricsCsv;
use aequitas_replay::reconstruct::Reconstruction;
use aequitas_replay::report::{report_json, report_text};
use std::path::PathBuf;

const USAGE: &str = "usage:
  aequitas-replay replay  --trace T.jsonl [--metrics M.csv] [--json OUT.json]
  aequitas-replay audit   --trace T.jsonl [--metrics M.csv] [--json OUT.json]
                          [--phi X] [--mu X] [--rho X] [--period-us N]
                          [--bound-tol X] [--slo-tol X] [--region-tol X]
  aequitas-replay analyze --input DIR --out DIR [--baseline NAME]
  aequitas-replay schema

replay   reconstruct a trace (queues, RNL, p_admit, faults) and summarize it
audit    reconstruct + check against the paper's bounds; exits 1 on FAIL
analyze  audit every trace under --input and diff them against a baseline
schema   print the trace schema version this build understands";

fn fail(msg: &str) -> ! {
    eprintln!("aequitas-replay: {msg}");
    std::process::exit(2);
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| v.to_string());
                if value.is_some() {
                    it.next();
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn value_of(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.value_of(name).map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("bad value for --{name}: '{v}'")))
        })
    }

    fn require(&self, name: &str) -> PathBuf {
        PathBuf::from(
            self.value_of(name)
                .unwrap_or_else(|| fail(&format!("missing required --{name}\n\n{USAGE}"))),
        )
    }
}

fn audit_options(args: &Args) -> AuditOptions {
    let mut opts = AuditOptions {
        phi: args.parsed("phi"),
        mu: args.parsed("mu"),
        rho: args.parsed("rho"),
        period_ps: args.parsed::<u64>("period-us").map(|us| us * 1_000_000),
        ..AuditOptions::default()
    };
    if let Some(t) = args.parsed("bound-tol") {
        opts.bound_tol = t;
    }
    if let Some(t) = args.parsed("slo-tol") {
        opts.slo_tol = t;
    }
    if let Some(t) = args.parsed("region-tol") {
        opts.region_tol = t;
    }
    opts
}

/// Load the trace (and optional metrics CSV, which is parsed for validity
/// and cross-checked against the reconstruction where possible).
fn load(args: &Args) -> Reconstruction {
    let trace = args.require("trace");
    let recon = match Reconstruction::from_file(&trace) {
        Ok(r) => r,
        Err(e) => fail(&e),
    };
    if let Some(metrics) = args.value_of("metrics") {
        let text = std::fs::read_to_string(metrics)
            .unwrap_or_else(|e| fail(&format!("cannot read metrics CSV {metrics}: {e}")));
        let csv = MetricsCsv::parse(&text).unwrap_or_else(|e| fail(&format!("{metrics}: {e}")));
        println!(
            "metrics: {} series, {} samples",
            csv.series.len(),
            csv.rows()
        );
        // Cross-check: sampled backlog gauges must agree with the backlog
        // timeline replayed from packet events (single-epoch traces only —
        // sweep traces interleave engines through one handle).
        if recon.epochs == 1 {
            let mut checked = 0u64;
            let mut mismatches = 0u64;
            for ((metric, labels), points) in &csv.series {
                if metric != "switch.port.backlog_bytes" && metric != "host.nic.backlog_bytes" {
                    continue;
                }
                let Some(key) = port_key_from_labels(metric, labels) else {
                    continue;
                };
                let Some(port) = recon.ports.get(&key) else {
                    continue;
                };
                for &(t_us, v) in points {
                    checked += 1;
                    if port.backlog_at((t_us * 1e6) as u64) as f64 != v {
                        mismatches += 1;
                    }
                }
            }
            if checked > 0 {
                println!("metrics cross-check: {checked} backlog samples, {mismatches} mismatches");
                if mismatches > 0 {
                    fail("metrics CSV disagrees with the trace's replayed backlog");
                }
            }
        }
    }
    recon
}

/// Map a backlog gauge's label string (`sw=0,port=2` / `host=1`) to the
/// trace's port key.
fn port_key_from_labels(
    metric: &str,
    labels: &str,
) -> Option<aequitas_replay::reconstruct::PortKey> {
    let mut node_id = None;
    let mut port = 0u64;
    let mut kind = "";
    for pair in labels.split(',') {
        let (k, v) = pair.split_once('=')?;
        match k {
            "sw" => {
                kind = "switch";
                node_id = v.parse::<u64>().ok();
            }
            "host" => {
                kind = "host";
                node_id = v.parse::<u64>().ok();
            }
            "port" => port = v.parse().ok()?,
            _ => {}
        }
    }
    if metric.starts_with("host") && kind != "host" {
        return None;
    }
    Some(aequitas_replay::reconstruct::PortKey {
        node: format!("{kind}{}", node_id?),
        port,
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        fail(USAGE);
    };
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "schema" => {
            println!(
                "trace schema version: {}",
                aequitas_telemetry::TRACE_SCHEMA_VERSION
            );
        }
        "replay" => {
            let mut recon = load(&args);
            let report = audit(&mut recon, &audit_options(&args));
            if let Some(out) = args.value_of("json") {
                let doc = report_json(&mut recon, &report);
                std::fs::write(out, doc)
                    .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
            }
            print!("{}", report_text(&mut recon, &report));
            // replay mode reports the audit but only fails on broken
            // streams, not on bound violations.
            let integrity_ok = report
                .checks
                .iter()
                .any(|c| c.name == "trace_integrity" && c.status == CheckStatus::Pass);
            if !integrity_ok {
                std::process::exit(2);
            }
        }
        "audit" => {
            let mut recon = load(&args);
            let report = audit(&mut recon, &audit_options(&args));
            if let Some(out) = args.value_of("json") {
                let doc = report_json(&mut recon, &report);
                std::fs::write(out, doc)
                    .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
            }
            print!("{}", report_text(&mut recon, &report));
            if report.verdict != CheckStatus::Pass {
                std::process::exit(1);
            }
        }
        "analyze" => {
            let input = args.require("input");
            let out = args.require("out");
            match analyze(&input, &out, args.value_of("baseline"), &audit_options(&args)) {
                Ok(text) => print!("{text}"),
                Err(e) => fail(&e),
            }
        }
        other => fail(&format!("unknown command '{other}'\n\n{USAGE}")),
    }
    if !args.positional.is_empty() {
        // Unconsumed positionals are almost always a typo'd flag value.
        fail(&format!("unexpected argument '{}'", args.positional[0]));
    }
}
