//! Raw trace-line access: parse one JSONL line into a typed-enough event
//! record and enforce the stream's schema contract (a `trace_header` first
//! line carrying a supported `schema_version`).

use crate::json::{parse_object, JsonValue};
use aequitas_telemetry::TRACE_SCHEMA_VERSION;

/// One parsed trace line. Field lookup is by key; the leading
/// `seq`/`t_ps`/`type` triple every record carries is hoisted out.
#[derive(Debug, Clone)]
pub struct RawEvent {
    /// Monotone per-stream sequence number.
    pub seq: u64,
    /// Simulated timestamp in picoseconds.
    pub t_ps: u64,
    /// The event's `type` tag (e.g. `pkt_enqueue`).
    pub kind: String,
    /// The remaining fields, in serialized order.
    pub fields: Vec<(String, JsonValue)>,
}

impl RawEvent {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
    /// Numeric field as f64.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }
    /// Numeric field as non-negative integer.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }
    /// String field.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }
    /// Boolean field.
    pub fn bool(&self, key: &str) -> Option<bool> {
        self.get(key)?.as_bool()
    }
    /// Array field as f64s (all elements must be numeric).
    pub fn arr_f64(&self, key: &str) -> Option<Vec<f64>> {
        match self.get(key)? {
            JsonValue::Arr(items) => items.iter().map(JsonValue::as_f64).collect(),
            _ => None,
        }
    }
    /// Array field as u64s.
    pub fn arr_u64(&self, key: &str) -> Option<Vec<u64>> {
        match self.get(key)? {
            JsonValue::Arr(items) => items.iter().map(JsonValue::as_u64).collect(),
            _ => None,
        }
    }
}

/// Parse one trace line. Errors describe what is wrong with the line, not
/// where in the file it sits — callers add line numbers.
pub fn parse_line(line: &str) -> Result<RawEvent, String> {
    let mut fields = parse_object(line)?;
    let lead = |fields: &[(String, JsonValue)], idx: usize, key: &str| -> Result<f64, String> {
        match fields.get(idx) {
            Some((k, v)) if k == key => v
                .as_f64()
                .ok_or_else(|| format!("field '{key}' is not numeric")),
            _ => Err(format!("line does not start with seq,t_ps,type: missing '{key}'")),
        }
    };
    let seq = lead(&fields, 0, "seq")? as u64;
    let t_ps = lead(&fields, 1, "t_ps")? as u64;
    let kind = match fields.get(2) {
        Some((k, JsonValue::Str(s))) if k == "type" => s.clone(),
        _ => return Err("line does not start with seq,t_ps,type: missing 'type'".into()),
    };
    fields.drain(..3);
    Ok(RawEvent {
        seq,
        t_ps,
        kind,
        fields,
    })
}

/// Validate the stream header (must be the first line of every v2+ trace)
/// and return the schema version it declares. Errors are worded for humans:
/// a missing header means a pre-versioning trace, a version mismatch means
/// this binary is too old or too new for the file.
pub fn check_header(first: &RawEvent) -> Result<u32, String> {
    if first.kind != "trace_header" {
        return Err(format!(
            "trace does not start with a trace_header line (found '{}'); \
             this looks like a pre-v2 (unversioned) trace, which aequitas-replay \
             does not support — re-run the experiment with a current build",
            first.kind
        ));
    }
    let version = first
        .u64("schema_version")
        .ok_or("trace_header is missing a numeric schema_version field")? as u32;
    if version != TRACE_SCHEMA_VERSION {
        return Err(format!(
            "unsupported trace schema version {version} (this build understands \
             version {TRACE_SCHEMA_VERSION}); regenerate the trace or use a matching \
             aequitas-replay build"
        ));
    }
    Ok(version)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_checks_header() {
        let ev = parse_line(
            "{\"seq\":0,\"t_ps\":0,\"type\":\"trace_header\",\"format\":\"aequitas-trace\",\"schema_version\":2}",
        )
        .unwrap();
        assert_eq!(ev.seq, 0);
        assert_eq!(check_header(&ev).unwrap(), TRACE_SCHEMA_VERSION);
    }

    #[test]
    fn rejects_wrong_version_and_missing_header() {
        let ev = parse_line(
            "{\"seq\":0,\"t_ps\":0,\"type\":\"trace_header\",\"format\":\"aequitas-trace\",\"schema_version\":99}",
        )
        .unwrap();
        let err = check_header(&ev).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");

        let ev =
            parse_line("{\"seq\":0,\"t_ps\":100,\"type\":\"pkt_enqueue\",\"node\":\"host0\"}")
                .unwrap();
        let err = check_header(&ev).unwrap_err();
        assert!(err.contains("pre-v2"), "{err}");
    }

    #[test]
    fn field_accessors() {
        let ev = parse_line(
            "{\"seq\":4,\"t_ps\":77,\"type\":\"run_info\",\"experiment\":\"x\",\"weights\":[4,1],\"mu\":0.8,\"down\":false}",
        )
        .unwrap();
        assert_eq!(ev.t_ps, 77);
        assert_eq!(ev.str("experiment"), Some("x"));
        assert_eq!(ev.arr_f64("weights").unwrap(), vec![4.0, 1.0]);
        assert_eq!(ev.num("mu"), Some(0.8));
        assert_eq!(ev.bool("down"), Some(false));
        assert_eq!(ev.u64("missing"), None);
    }
}
