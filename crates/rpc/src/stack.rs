//! The per-host RPC stack.

use aequitas::{AdmissionController, AequitasConfig, QuotaBucket, TenantId};
use aequitas_netsim::{HostCtx, HostId, Packet};
use aequitas_sim_core::{SimDuration, SimTime};
use aequitas_telemetry::{labels, MetricId, Telemetry, TraceEvent};
use aequitas_transport::{Transport, TransportConfig};
use aequitas_workloads::{size_in_mtus, Priority, QosClass, QosMapping};

/// The admission policy plugged into the stack.
pub enum Policy {
    /// No admission control: RPCs always run on their requested QoS
    /// (the paper's "w/o Aequitas" baseline after Phase 1 alignment).
    Static,
    /// Aequitas Phase 2: Algorithm 1 admission control.
    Aequitas(AdmissionController),
    /// Ablation: Algorithm 1 decisions, but unadmitted RPCs are **dropped**
    /// (rejected back to the application) instead of downgraded — the
    /// traditional admission-control model the paper departs from.
    AequitasDropExcess(AdmissionController),
    /// Aequitas augmented with the §5.2 quota-server extension: RPCs
    /// covered by the tenant's granted token rate bypass the admission
    /// coin flip (they are within a guaranteed share); the rest compete
    /// through Algorithm 1 as usual.
    AequitasWithQuota {
        /// The Algorithm 1 controller for beyond-quota traffic.
        controller: AdmissionController,
        /// This host's tenant.
        tenant: TenantId,
        /// QoS level the quota applies to.
        quota_qos: u8,
        /// Token bucket refilled at the granted rate.
        bucket: QuotaBucket,
        /// Offered bytes on `quota_qos` since the last usage report.
        offered_since_report: u64,
    },
}

impl Policy {
    /// Build the Aequitas policy from a config and seed.
    pub fn aequitas(config: AequitasConfig, seed: u64) -> Policy {
        Policy::Aequitas(AdmissionController::new(config, seed))
    }

    /// Build the quota-augmented policy. The bucket starts at rate 0 until
    /// the first grant arrives.
    pub fn aequitas_with_quota(
        config: AequitasConfig,
        seed: u64,
        tenant: TenantId,
        quota_qos: u8,
    ) -> Policy {
        Policy::AequitasWithQuota {
            controller: AdmissionController::new(config, seed),
            tenant,
            quota_qos,
            bucket: QuotaBucket::new(0.0, 0.01, SimTime::ZERO),
            offered_since_report: 0,
        }
    }
}

/// Timer token reserved by the RPC stack for its retry queue. Sits below
/// [`aequitas_transport::TRANSPORT_TIMER_BASE`] (`1 << 62`, transport-owned)
/// and far above the small token values application drivers use.
pub const RPC_RETRY_TIMER: u64 = 1 << 61;

/// Per-RPC retry policy applied when the transport abandons a message
/// (its own per-segment retry budget ran out — see
/// [`aequitas_transport::TransportConfig::max_retries`]).
///
/// Retries back off exponentially and are *deadline-propagating*: a retry
/// is never re-issued at or past the caller's deadline, so a retried RPC
/// cannot outlive the deadline budget it was issued under.
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Total send attempts per RPC, including the first. 1 disables
    /// RPC-level retries entirely.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub backoff: SimDuration,
    /// Multiplier applied to the backoff per further retry.
    pub backoff_factor: f64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 4,
            backoff: SimDuration::from_us(200),
            backoff_factor: 2.0,
        }
    }
}

impl RetryConfig {
    /// Backoff before attempt `next_attempt` (2-based: the first retry is
    /// attempt 2 and waits `backoff`; each later one multiplies by
    /// `backoff_factor`).
    fn delay_before(&self, next_attempt: u32) -> SimDuration {
        debug_assert!(next_attempt >= 2);
        let exp = (next_attempt - 2).min(30);
        self.backoff
            .mul_f64(self.backoff_factor.max(1.0).powi(exp as i32))
    }
}

/// An RPC abandoned for good: every transport attempt failed and the retry
/// budget or the caller's deadline ran out.
#[derive(Debug, Clone, Copy)]
pub struct RpcFailure {
    /// The id returned by `issue_rpc` for the original attempt.
    pub rpc_id: u64,
    /// Sending host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Application priority class.
    pub priority: Priority,
    /// Payload size in bytes.
    pub size_bytes: u64,
    /// When the first attempt was issued.
    pub first_issued_at: SimTime,
    /// When the stack gave up.
    pub failed_at: SimTime,
    /// Send attempts made (>= 1).
    pub attempts: u32,
}

/// A completed RPC with its full QoS history and RNL.
#[derive(Debug, Clone, Copy)]
pub struct RpcCompletion {
    /// Sender-unique RPC id (the id `issue_rpc` returned; stable across
    /// stack-level retries).
    pub rpc_id: u64,
    /// Sending host (the channel's source).
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Application priority class.
    pub priority: Priority,
    /// The QoS the application's priority mapped to.
    pub qos_requested: QosClass,
    /// The QoS the RPC actually ran on (differs when downgraded).
    pub qos_run: QosClass,
    /// Whether admission control downgraded the RPC (surfaced to the
    /// application, Algorithm 1 lines 10–11).
    pub downgraded: bool,
    /// Payload size in bytes.
    pub size_bytes: u64,
    /// RNL `t0`: first byte handed to the transport (the *first* attempt
    /// when the stack retried — RNL spans the whole retry saga).
    pub issued_at: SimTime,
    /// RNL `t1`: last byte acknowledged.
    pub completed_at: SimTime,
    /// Send attempts it took (1 = completed without RPC-level retries).
    pub attempts: u32,
}

impl RpcCompletion {
    /// The RPC Network Latency.
    pub fn rnl(&self) -> SimDuration {
        self.completed_at.since(self.issued_at)
    }

    /// RNL divided by size in MTUs (the paper's normalized latency).
    pub fn rnl_per_mtu(&self) -> SimDuration {
        self.rnl() / size_in_mtus(self.size_bytes)
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingRpc {
    priority: Priority,
    qos_requested: QosClass,
    qos_run: QosClass,
    downgraded: bool,
    dst: HostId,
    size_bytes: u64,
    /// Id `issue_rpc` returned (retried attempts get fresh transport ids).
    first_rpc_id: u64,
    first_issued_at: SimTime,
    deadline: Option<SimTime>,
    /// 1-based attempt number of the in-flight transport message.
    attempt: u32,
}

/// A retry waiting for its backoff to elapse.
#[derive(Debug, Clone, Copy)]
struct QueuedRetry {
    due: SimTime,
    dst: HostId,
    priority: Priority,
    size_bytes: u64,
    first_rpc_id: u64,
    first_issued_at: SimTime,
    deadline: Option<SimTime>,
    /// Attempt number this retry will run as.
    attempt: u32,
}

/// Outstanding-RPC table keyed by rpc id. Ids are allocated monotonically
/// (`(host << 32) + counter`), so a ring offset from the oldest live id
/// replaces hashing: insert is a `push_back`, lookup is a subtract + index.
/// Completed slots become `None` and the front is trimmed lazily, so the
/// ring length tracks the *span* of outstanding ids, which windowing keeps
/// small.
#[derive(Debug, Default)]
struct PendingTable {
    base: u64,
    ring: std::collections::VecDeque<Option<PendingRpc>>,
    live: usize,
}

impl PendingTable {
    /// Insert `info` under `id`; ids must arrive in allocation order.
    fn insert(&mut self, id: u64, info: PendingRpc) {
        if self.ring.is_empty() {
            self.base = id;
        }
        debug_assert_eq!(id, self.base + self.ring.len() as u64);
        self.ring.push_back(Some(info));
        self.live += 1;
    }

    fn remove(&mut self, id: u64) -> Option<PendingRpc> {
        let idx = id.checked_sub(self.base)? as usize;
        let info = self.ring.get_mut(idx)?.take()?;
        self.live -= 1;
        while let Some(None) = self.ring.front() {
            self.ring.pop_front();
            self.base += 1;
        }
        Some(info)
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// Interned metric handles for this stack's hot-path telemetry sites.
///
/// Gauges refreshed by [`RpcStack::sample_metrics`] are registered eagerly
/// when telemetry attaches (the harness refreshes them before every sampling
/// tick, so the slots would exist by the first snapshot either way). Event
/// counters and histograms stay `None` until their first hit so slot
/// creation — and therefore the exported CSV — matches the old string-keyed
/// path byte for byte.
struct StackMetricIds {
    outstanding: MetricId,
    queued_messages: MetricId,
    unacked_packets: MetricId,
    /// Present iff an admission policy is active (see
    /// [`RpcStack::admission_counters`]).
    ctl_issued: Option<MetricId>,
    ctl_downgraded: Option<MetricId>,
    rejected: Option<MetricId>,
    downgraded: Option<MetricId>,
    retry_scheduled: Option<MetricId>,
    failed: Option<MetricId>,
    retried: Option<MetricId>,
    /// Indexed by `qos_run`; sized to the mapping's level count.
    issued: Vec<Option<MetricId>>,
    rnl_hist: Vec<Option<MetricId>>,
    completed: Vec<Option<MetricId>>,
}

/// Per-host RPC stack: priority→QoS mapping, admission policy, transport.
pub struct RpcStack {
    host: HostId,
    mapping: QosMapping,
    policy: Policy,
    transport: Transport,
    pending: PendingTable,
    completions: Vec<RpcCompletion>,
    next_rpc_id: u64,
    dropped: u64,
    dropped_bytes: u64,
    retry: RetryConfig,
    /// Sorted by `due` ascending (ties keep insertion order).
    retry_queue: Vec<QueuedRetry>,
    /// Earliest armed [`RPC_RETRY_TIMER`] deadline, to avoid re-arming.
    retry_timer_at: Option<SimTime>,
    rpc_failures: Vec<RpcFailure>,
    telemetry: Telemetry,
    metric_ids: Option<StackMetricIds>,
}

impl RpcStack {
    /// Build a stack for `host`.
    pub fn new(
        host: HostId,
        mapping: QosMapping,
        policy: Policy,
        transport_config: TransportConfig,
    ) -> Self {
        if let Policy::Aequitas(ctl) = &policy {
            assert_eq!(
                ctl.config().levels(),
                mapping.levels(),
                "policy and mapping must agree on the number of QoS levels"
            );
        }
        RpcStack {
            host,
            mapping,
            policy,
            transport: Transport::new(host, transport_config),
            pending: PendingTable::default(),
            completions: Vec::new(),
            next_rpc_id: (host.0 as u64) << 32,
            dropped: 0,
            dropped_bytes: 0,
            retry: RetryConfig::default(),
            retry_queue: Vec::new(),
            retry_timer_at: None,
            rpc_failures: Vec::new(),
            telemetry: Telemetry::disabled(),
            metric_ids: None,
        }
    }

    /// Replace the RPC-level retry policy.
    pub fn set_retry_config(&mut self, retry: RetryConfig) {
        assert!(retry.max_attempts >= 1);
        assert!(retry.backoff_factor >= 1.0);
        self.retry = retry;
    }

    /// The retry policy in use.
    pub fn retry_config(&self) -> &RetryConfig {
        &self.retry
    }

    /// Attach a telemetry handle to the stack and propagate it to the
    /// transport and the admission controller (if any): RPC issue/complete
    /// events, cwnd updates, retransmissions, and admit-probability steps
    /// all flow through the same handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.transport.set_telemetry(telemetry.clone());
        let host = self.host.0;
        match &mut self.policy {
            Policy::Static => {}
            Policy::Aequitas(ctl)
            | Policy::AequitasDropExcess(ctl)
            | Policy::AequitasWithQuota {
                controller: ctl, ..
            } => ctl.attach_telemetry(telemetry.clone(), host),
        }
        let has_controller = !matches!(self.policy, Policy::Static);
        let levels = self.mapping.levels();
        self.metric_ids = telemetry.with_metrics(|m| {
            let l = labels(&[("host", &host.to_string())]);
            StackMetricIds {
                outstanding: m.gauge_id("rpc.outstanding", l.clone()),
                queued_messages: m.gauge_id("transport.queued_messages", l.clone()),
                unacked_packets: m.gauge_id("transport.unacked_packets", l.clone()),
                ctl_issued: has_controller.then(|| m.gauge_id("controller.issued", l.clone())),
                ctl_downgraded: has_controller.then(|| m.gauge_id("controller.downgraded", l)),
                rejected: None,
                downgraded: None,
                retry_scheduled: None,
                failed: None,
                retried: None,
                issued: vec![None; levels],
                rnl_hist: vec![None; levels],
                completed: vec![None; levels],
            }
        });
        self.telemetry = telemetry;
    }

    /// This host.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The QoS mapping in use.
    pub fn mapping(&self) -> &QosMapping {
        &self.mapping
    }

    /// Issue an RPC of `size_bytes` with `priority` toward `dst`. Returns
    /// the RPC id.
    pub fn issue_rpc(
        &mut self,
        ctx: &mut HostCtx,
        dst: HostId,
        priority: Priority,
        size_bytes: u64,
    ) -> u64 {
        self.issue_rpc_with_deadline(ctx, dst, priority, size_bytes, None)
    }

    /// Like [`RpcStack::issue_rpc`] but with a caller deadline. The deadline
    /// propagates into the retry layer: if the transport abandons the
    /// message, it is retried (with exponential backoff) only while the
    /// next attempt would still start *before* the deadline; otherwise the
    /// RPC fails and is reported through [`RpcStack::take_rpc_failures`].
    pub fn issue_rpc_with_deadline(
        &mut self,
        ctx: &mut HostCtx,
        dst: HostId,
        priority: Priority,
        size_bytes: u64,
        deadline: Option<SimTime>,
    ) -> u64 {
        let now = ctx.now();
        self.issue_attempt(ctx, dst, priority, size_bytes, deadline, 1, None, now)
    }

    /// One send attempt (`attempt` is 1-based; retries pass the original
    /// id and issue time so completions and failures stay correlated with
    /// what the caller saw).
    #[allow(clippy::too_many_arguments)]
    fn issue_attempt(
        &mut self,
        ctx: &mut HostCtx,
        dst: HostId,
        priority: Priority,
        size_bytes: u64,
        deadline: Option<SimTime>,
        attempt: u32,
        first_rpc_id: Option<u64>,
        first_issued_at: SimTime,
    ) -> u64 {
        let qos_requested = self.mapping.qos_for(priority);
        let (qos_run, downgraded) = match &mut self.policy {
            Policy::Static => (qos_requested, false),
            Policy::Aequitas(ctl) => {
                let d = ctl.on_issue(
                    ctx.now(),
                    dst.0,
                    qos_requested.0,
                    size_in_mtus(size_bytes),
                );
                (QosClass(d.qos_run), d.downgraded)
            }
            Policy::AequitasDropExcess(ctl) => {
                let d = ctl.on_issue(
                    ctx.now(),
                    dst.0,
                    qos_requested.0,
                    size_in_mtus(size_bytes),
                );
                if d.downgraded {
                    // Reject: the RPC never enters the network.
                    self.dropped += 1;
                    self.dropped_bytes += size_bytes;
                    let host = self.host.0;
                    if let Some(ids) = self.metric_ids.as_mut() {
                        self.telemetry.with_metrics(|m| {
                            let id = *ids.rejected.get_or_insert_with(|| {
                                m.counter_id(
                                    "rpc.rejected",
                                    labels(&[("host", &host.to_string())]),
                                )
                            });
                            m.counter_add_id(id, 1);
                        });
                    }
                    if let Some(id) = first_rpc_id {
                        // A rejected *retry* is a terminal failure for the
                        // original RPC, not a silent drop.
                        self.rpc_failures.push(RpcFailure {
                            rpc_id: id,
                            src: self.host,
                            dst,
                            priority,
                            size_bytes,
                            first_issued_at,
                            failed_at: ctx.now(),
                            attempts: attempt,
                        });
                    }
                    return u64::MAX;
                }
                (QosClass(d.qos_run), false)
            }
            Policy::AequitasWithQuota {
                controller,
                quota_qos,
                bucket,
                offered_since_report,
                ..
            } => {
                if qos_requested.0 == *quota_qos {
                    *offered_since_report += size_bytes;
                    if bucket.try_consume(size_bytes, ctx.now()) {
                        // Within the tenant's guaranteed share: admit.
                        (qos_requested, false)
                    } else {
                        let d = controller.on_issue(
                            ctx.now(),
                            dst.0,
                            qos_requested.0,
                            size_in_mtus(size_bytes),
                        );
                        (QosClass(d.qos_run), d.downgraded)
                    }
                } else {
                    let d = controller.on_issue(
                        ctx.now(),
                        dst.0,
                        qos_requested.0,
                        size_in_mtus(size_bytes),
                    );
                    (QosClass(d.qos_run), d.downgraded)
                }
            }
        };
        let rpc_id = self.next_rpc_id;
        self.next_rpc_id += 1;
        self.pending.insert(
            rpc_id,
            PendingRpc {
                priority,
                qos_requested,
                qos_run,
                downgraded,
                dst,
                size_bytes,
                first_rpc_id: first_rpc_id.unwrap_or(rpc_id),
                first_issued_at,
                deadline,
                attempt,
            },
        );
        if self.telemetry.is_enabled() {
            self.telemetry.emit(
                ctx.now(),
                TraceEvent::RpcIssue {
                    host: self.host.0,
                    dst: dst.0,
                    qos_req: qos_requested.0,
                    qos_run: qos_run.0,
                    downgraded,
                    size_bytes,
                    p_admit: self.admit_probability(dst, qos_requested),
                },
            );
            let host = self.host.0;
            if let Some(ids) = self.metric_ids.as_mut() {
                self.telemetry.with_metrics(|m| {
                    let id = *ids.issued[qos_run.0 as usize].get_or_insert_with(|| {
                        m.counter_id(
                            "rpc.issued",
                            labels(&[
                                ("host", &host.to_string()),
                                ("qos", &qos_run.0.to_string()),
                            ]),
                        )
                    });
                    m.counter_add_id(id, 1);
                    if downgraded {
                        let id = *ids.downgraded.get_or_insert_with(|| {
                            m.counter_id(
                                "rpc.downgraded",
                                labels(&[("host", &host.to_string())]),
                            )
                        });
                        m.counter_add_id(id, 1);
                    }
                });
            }
        }
        self.transport
            .send_message(ctx, dst, qos_run.0, rpc_id, size_bytes);
        rpc_id
    }

    /// Forward a packet to the transport; harvest completions. Returns
    /// `true` if the packet belonged to the transport.
    pub fn handle_packet(&mut self, ctx: &mut HostCtx, pkt: Packet) -> bool {
        let consumed = self.transport.handle_packet(ctx, pkt);
        self.harvest(ctx);
        consumed
    }

    /// Forward a timer to the transport or the retry queue; harvest
    /// completions. Returns `true` if the token belonged to the stack
    /// (transport or retry layer).
    pub fn handle_timer(&mut self, ctx: &mut HostCtx, token: u64) -> bool {
        if token == RPC_RETRY_TIMER {
            self.fire_retries(ctx);
            self.harvest(ctx);
            return true;
        }
        let consumed = self.transport.handle_timer(ctx, token);
        self.harvest(ctx);
        consumed
    }

    /// Drain completed RPCs recorded since the last call.
    pub fn take_completions(&mut self) -> Vec<RpcCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Drain RPCs that failed for good (retry budget or deadline exhausted)
    /// since the last call.
    pub fn take_rpc_failures(&mut self) -> Vec<RpcFailure> {
        std::mem::take(&mut self.rpc_failures)
    }

    /// Admit probability currently maintained toward `(dst, qos)` (1.0 when
    /// the policy is static).
    pub fn admit_probability(&self, dst: HostId, qos: QosClass) -> f64 {
        match &self.policy {
            Policy::Static => 1.0,
            Policy::Aequitas(ctl) | Policy::AequitasDropExcess(ctl) => {
                ctl.admit_probability(dst.0, qos.0)
            }
            Policy::AequitasWithQuota { controller, .. } => {
                controller.admit_probability(dst.0, qos.0)
            }
        }
    }

    /// Quota-extension control plane: drain the usage report for this
    /// host's tenant, if the quota policy is active.
    pub fn take_usage_report(&mut self) -> Option<aequitas::UsageReport> {
        if let Policy::AequitasWithQuota {
            tenant,
            offered_since_report,
            ..
        } = &mut self.policy
        {
            let bytes = std::mem::take(offered_since_report);
            Some(aequitas::UsageReport {
                tenant: *tenant,
                offered_bytes: bytes,
            })
        } else {
            None
        }
    }

    /// Quota-extension control plane: apply a new grant.
    pub fn apply_grant(&mut self, grant: aequitas::Grant, now: SimTime) {
        if let Policy::AequitasWithQuota { bucket, .. } = &mut self.policy {
            bucket.set_rate(grant.rate_bps, now);
        }
    }

    /// The underlying transport (read access for experiments).
    pub fn transport(&self) -> &Transport {
        &self.transport
    }

    /// RPCs issued but not yet completed or failed (includes retries
    /// waiting out their backoff).
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.retry_queue.len()
    }

    /// RPCs rejected by the drop-excess ablation policy, and their bytes.
    pub fn dropped(&self) -> (u64, u64) {
        (self.dropped, self.dropped_bytes)
    }

    /// Issue-time admission counters `(issued, downgraded)` from the
    /// controller, if one is active. Completion streams under-count
    /// downgrades during overload (downgraded RPCs languish in the
    /// scavenger backlog), so downgrade *rates* must come from here.
    pub fn admission_counters(&self) -> Option<(u64, u64)> {
        match &self.policy {
            Policy::Static => None,
            Policy::Aequitas(ctl) | Policy::AequitasDropExcess(ctl) => {
                Some((ctl.issued(), ctl.downgraded()))
            }
            Policy::AequitasWithQuota { controller, .. } => {
                Some((controller.issued(), controller.downgraded()))
            }
        }
    }

    fn harvest(&mut self, ctx: &mut HostCtx) {
        for done in self.transport.take_completions() {
            let Some(info) = self.pending.remove(done.msg_id) else {
                debug_assert!(false, "completion for unknown rpc {}", done.msg_id);
                continue;
            };
            let completion = RpcCompletion {
                rpc_id: info.first_rpc_id,
                src: self.host,
                dst: done.flow.dst,
                priority: info.priority,
                qos_requested: info.qos_requested,
                qos_run: info.qos_run,
                downgraded: info.downgraded,
                size_bytes: done.size_bytes,
                issued_at: info.first_issued_at,
                completed_at: done.completed_at,
                attempts: info.attempt,
            };
            match &mut self.policy {
                Policy::Aequitas(ctl)
                | Policy::AequitasDropExcess(ctl)
                | Policy::AequitasWithQuota {
                    controller: ctl, ..
                } => {
                    ctl.on_completion(
                        completion.completed_at,
                        completion.dst.0,
                        completion.qos_run.0,
                        size_in_mtus(completion.size_bytes),
                        completion.rnl(),
                    );
                }
                Policy::Static => {}
            }
            if self.telemetry.is_enabled() {
                let rnl = completion.rnl();
                self.telemetry.emit(
                    completion.completed_at,
                    TraceEvent::RpcComplete {
                        host: self.host.0,
                        dst: completion.dst.0,
                        qos_run: completion.qos_run.0,
                        downgraded: completion.downgraded,
                        size_bytes: completion.size_bytes,
                        rnl_ps: rnl.as_ps(),
                        rnl_per_mtu_ps: completion.rnl_per_mtu().as_ps(),
                    },
                );
                if let Some(ids) = self.metric_ids.as_mut() {
                    let qos = completion.qos_run.0;
                    self.telemetry.with_metrics(|m| {
                        let hid = *ids.rnl_hist[qos as usize].get_or_insert_with(|| {
                            m.hist_id(
                                "rpc.rnl_per_mtu_ns",
                                labels(&[("qos", &qos.to_string())]),
                            )
                        });
                        m.hist_record_id(hid, completion.rnl_per_mtu().as_ns());
                        let cid = *ids.completed[qos as usize].get_or_insert_with(|| {
                            m.counter_id(
                                "rpc.completed",
                                labels(&[("qos", &qos.to_string())]),
                            )
                        });
                        m.counter_add_id(cid, 1);
                    });
                }
            }
            self.completions.push(completion);
        }
        for f in self.transport.take_failures() {
            let Some(info) = self.pending.remove(f.msg_id) else {
                debug_assert!(false, "failure for unknown rpc {}", f.msg_id);
                continue;
            };
            let next_attempt = info.attempt + 1;
            let due = f.failed_at + self.retry.delay_before(next_attempt.max(2));
            let within_budget = next_attempt <= self.retry.max_attempts;
            // Deadline propagation: never start an attempt that would run
            // at or past the caller's deadline.
            let within_deadline = info.deadline.is_none_or(|d| due < d);
            if within_budget && within_deadline {
                let retry = QueuedRetry {
                    due,
                    dst: info.dst,
                    priority: info.priority,
                    size_bytes: info.size_bytes,
                    first_rpc_id: info.first_rpc_id,
                    first_issued_at: info.first_issued_at,
                    deadline: info.deadline,
                    attempt: next_attempt,
                };
                let pos = self.retry_queue.partition_point(|r| r.due <= due);
                self.retry_queue.insert(pos, retry);
                let host = self.host.0;
                if let Some(ids) = self.metric_ids.as_mut() {
                    self.telemetry.with_metrics(|m| {
                        let id = *ids.retry_scheduled.get_or_insert_with(|| {
                            m.counter_id(
                                "rpc.retry_scheduled",
                                labels(&[("host", &host.to_string())]),
                            )
                        });
                        m.counter_add_id(id, 1);
                    });
                }
                self.arm_retry_timer(ctx);
            } else {
                if self.telemetry.is_enabled() {
                    self.telemetry.emit(
                        f.failed_at,
                        TraceEvent::Warn {
                            component: "rpc".into(),
                            // metric: terminal-failure diagnostics — an RPC
                            // reaches this at most once, not per event.
                            message: format!(
                                "rpc {:#x} to host {} failed after {} attempts ({})",
                                info.first_rpc_id,
                                info.dst.0,
                                info.attempt,
                                if within_budget {
                                    "deadline exceeded"
                                } else {
                                    "retry budget exhausted"
                                },
                            ),
                        },
                    );
                    let host = self.host.0;
                    if let Some(ids) = self.metric_ids.as_mut() {
                        self.telemetry.with_metrics(|m| {
                            let id = *ids.failed.get_or_insert_with(|| {
                                m.counter_id(
                                    "rpc.failed",
                                    labels(&[("host", &host.to_string())]),
                                )
                            });
                            m.counter_add_id(id, 1);
                        });
                    }
                }
                self.rpc_failures.push(RpcFailure {
                    rpc_id: info.first_rpc_id,
                    src: self.host,
                    dst: info.dst,
                    priority: info.priority,
                    size_bytes: info.size_bytes,
                    first_issued_at: info.first_issued_at,
                    failed_at: f.failed_at,
                    attempts: info.attempt,
                });
            }
        }
    }

    /// Re-issue every retry whose backoff has elapsed, then re-arm the
    /// timer for the next one.
    fn fire_retries(&mut self, ctx: &mut HostCtx) {
        self.retry_timer_at = None;
        while let Some(first) = self.retry_queue.first() {
            if first.due > ctx.now() {
                break;
            }
            let r = self.retry_queue.remove(0);
            let host = self.host.0;
            if let Some(ids) = self.metric_ids.as_mut() {
                self.telemetry.with_metrics(|m| {
                    let id = *ids.retried.get_or_insert_with(|| {
                        m.counter_id("rpc.retried", labels(&[("host", &host.to_string())]))
                    });
                    m.counter_add_id(id, 1);
                });
            }
            self.issue_attempt(
                ctx,
                r.dst,
                r.priority,
                r.size_bytes,
                r.deadline,
                r.attempt,
                Some(r.first_rpc_id),
                r.first_issued_at,
            );
        }
        self.arm_retry_timer(ctx);
    }

    fn arm_retry_timer(&mut self, ctx: &mut HostCtx) {
        if let Some(first) = self.retry_queue.first() {
            if self.retry_timer_at.is_none_or(|t| first.due < t) {
                ctx.set_timer(first.due, RPC_RETRY_TIMER);
                self.retry_timer_at = Some(first.due);
            }
        }
    }

    /// Refresh this stack's gauges in the telemetry registry (outstanding
    /// RPCs, cumulative issue/downgrade counts, transport queue depths). The
    /// harness calls this right before each sampling tick; a no-op when
    /// telemetry is disabled.
    pub fn sample_metrics(&self) {
        let Some(ids) = &self.metric_ids else {
            return;
        };
        self.telemetry.with_metrics(|m| {
            m.gauge_set_id(ids.outstanding, self.pending.len() as f64);
            m.gauge_set_id(ids.queued_messages, self.transport.queued_messages() as f64);
            m.gauge_set_id(ids.unacked_packets, self.transport.unacked_packets() as f64);
            if let Some((issued, downgraded)) = self.admission_counters() {
                if let (Some(i), Some(d)) = (ids.ctl_issued, ids.ctl_downgraded) {
                    m.gauge_set_id(i, issued as f64);
                    m.gauge_set_id(d, downgraded as f64);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequitas::SloTarget;
    use aequitas_netsim::{Engine, EngineConfig, HostAgent, LinkSpec, Topology};

    /// Minimal agent for stack unit tests: issues scripted RPCs, a few at
    /// start and one more per completion, so admission decisions interleave
    /// with feedback.
    struct TestHost {
        stack: RpcStack,
        script: Vec<(HostId, Priority, u64)>,
        next: usize,
        done: Vec<RpcCompletion>,
    }

    impl TestHost {
        fn issue_upto(&mut self, ctx: &mut HostCtx, k: usize) {
            while self.next < self.script.len() && self.next < k {
                let (dst, prio, size) = self.script[self.next];
                self.next += 1;
                self.stack.issue_rpc(ctx, dst, prio, size);
            }
        }
        fn harvest(&mut self, ctx: &mut HostCtx) {
            let got = self.stack.take_completions();
            if !got.is_empty() {
                self.done.extend(got);
                let k = self.next + self.done.len().max(1);
                self.issue_upto(ctx, k.min(self.next + 8));
            }
        }
    }

    impl HostAgent for TestHost {
        fn on_start(&mut self, ctx: &mut HostCtx) {
            self.issue_upto(ctx, 4);
        }
        fn on_packet(&mut self, ctx: &mut HostCtx, pkt: Packet) {
            self.stack.handle_packet(ctx, pkt);
            self.harvest(ctx);
        }
        fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
            self.stack.handle_timer(ctx, token);
            self.harvest(ctx);
        }
    }

    fn run_pair(script: Vec<(HostId, Priority, u64)>, policy: Policy) -> Vec<RpcCompletion> {
        let topo = Topology::star(2, LinkSpec::default_100g());
        let mk = |host: usize, policy: Policy, script: Vec<(HostId, Priority, u64)>| TestHost {
            stack: RpcStack::new(
                HostId(host),
                QosMapping::three_level(),
                policy,
                TransportConfig::default(),
            ),
            script,
            next: 0,
            done: Vec::new(),
        };
        let agents = vec![mk(0, policy, script), mk(1, Policy::Static, vec![])];
        let mut eng = Engine::new(topo, agents, EngineConfig::default_3qos());
        eng.run_until(SimTime::from_ms(200));
        let a = &mut eng.agents_mut()[0];
        let mut done = std::mem::take(&mut a.done);
        done.extend(a.stack.take_completions());
        done
    }

    #[test]
    fn static_policy_maps_priorities_bijectively() {
        let done = run_pair(
            vec![
                (HostId(1), Priority::PerformanceCritical, 32_768),
                (HostId(1), Priority::NonCritical, 32_768),
                (HostId(1), Priority::BestEffort, 32_768),
            ],
            Policy::Static,
        );
        assert_eq!(done.len(), 3);
        for c in &done {
            let want = match c.priority {
                Priority::PerformanceCritical => QosClass::HIGH,
                Priority::NonCritical => QosClass::MEDIUM,
                Priority::BestEffort => QosClass::LOW,
            };
            assert_eq!(c.qos_requested, want);
            assert_eq!(c.qos_run, want);
            assert!(!c.downgraded);
            assert!(c.rnl() > SimDuration::ZERO);
        }
    }

    #[test]
    fn aequitas_policy_feeds_back_and_downgrades() {
        // An SLO so tight no RPC can meet it: the controller must start
        // downgrading PC traffic to QoSl once completions arrive.
        let config = AequitasConfig::three_qos(
            SloTarget::per_mtu(SimDuration::from_ns(1), 99.0),
            SloTarget::per_mtu(SimDuration::from_ns(1), 99.0),
        );
        let script: Vec<_> = (0..300)
            .map(|_| (HostId(1), Priority::PerformanceCritical, 32_768))
            .collect();
        let done = run_pair(script, Policy::aequitas(config, 7));
        assert_eq!(done.len(), 300);
        let downgraded = done.iter().filter(|c| c.downgraded).count();
        assert!(
            downgraded > 50,
            "expected substantial downgrading, got {downgraded}/300"
        );
        // Downgraded RPCs run on the scavenger class.
        for c in done.iter().filter(|c| c.downgraded) {
            assert_eq!(c.qos_run, QosClass::LOW);
            assert_eq!(c.qos_requested, QosClass::HIGH);
        }
    }

    #[test]
    fn generous_slo_admits_everything() {
        let config = AequitasConfig::three_qos(
            SloTarget::per_mtu(SimDuration::from_ms(100), 99.9),
            SloTarget::per_mtu(SimDuration::from_ms(100), 99.9),
        );
        let script: Vec<_> = (0..100)
            .map(|_| (HostId(1), Priority::PerformanceCritical, 32_768))
            .collect();
        let done = run_pair(script, Policy::aequitas(config, 8));
        assert_eq!(done.len(), 100);
        assert!(done.iter().all(|c| !c.downgraded));
    }

    #[test]
    fn rnl_per_mtu_normalizes() {
        let done = run_pair(
            vec![(HostId(1), Priority::PerformanceCritical, 32_768)],
            Policy::Static,
        );
        let c = &done[0];
        assert_eq!(c.rnl_per_mtu().as_ps(), c.rnl().as_ps() / 8);
    }

    #[test]
    fn outstanding_tracks_pending() {
        let topo = Topology::star(2, LinkSpec::default_100g());
        let agents = vec![
            TestHost {
                stack: RpcStack::new(
                    HostId(0),
                    QosMapping::three_level(),
                    Policy::Static,
                    TransportConfig::default(),
                ),
                script: vec![(HostId(1), Priority::NonCritical, 8192)],
                next: 0,
                done: Vec::new(),
            },
            TestHost {
                stack: RpcStack::new(
                    HostId(1),
                    QosMapping::three_level(),
                    Policy::Static,
                    TransportConfig::default(),
                ),
                script: vec![],
                next: 0,
                done: Vec::new(),
            },
        ];
        let mut eng = Engine::new(topo, agents, EngineConfig::default_3qos());
        eng.run_until(SimTime::from_ms(10));
        assert_eq!(eng.agents()[0].stack.outstanding(), 0);
    }
}

#[cfg(test)]
mod retry_tests {
    use super::*;
    use aequitas_netsim::faults::{FaultPlan, LinkFlap, LinkSel};
    use aequitas_netsim::{Engine, EngineConfig, HostAgent, LinkSpec, Topology};
    use std::sync::Arc;

    /// Issues a fixed batch of RPCs at start and collects completions and
    /// failures — the retry layer does everything else.
    struct RetryHost {
        stack: RpcStack,
        send: Vec<(HostId, Priority, u64, Option<SimTime>)>,
        done: Vec<RpcCompletion>,
        failed: Vec<RpcFailure>,
    }

    impl RetryHost {
        fn new(host: usize, retry: RetryConfig) -> RetryHost {
            // A transport that abandons quickly, so the RPC layer is the
            // one riding out the outage.
            let config = TransportConfig {
                max_retries: 1,
                max_rto: SimDuration::from_ms(1),
                ..TransportConfig::default()
            };
            let mut stack = RpcStack::new(
                HostId(host),
                QosMapping::three_level(),
                Policy::Static,
                config,
            );
            stack.set_retry_config(retry);
            RetryHost {
                stack,
                send: Vec::new(),
                done: Vec::new(),
                failed: Vec::new(),
            }
        }

        fn harvest(&mut self) {
            self.done.extend(self.stack.take_completions());
            self.failed.extend(self.stack.take_rpc_failures());
        }
    }

    impl HostAgent for RetryHost {
        fn on_start(&mut self, ctx: &mut HostCtx) {
            for (dst, prio, size, deadline) in std::mem::take(&mut self.send) {
                self.stack
                    .issue_rpc_with_deadline(ctx, dst, prio, size, deadline);
            }
        }
        fn on_packet(&mut self, ctx: &mut HostCtx, pkt: Packet) {
            self.stack.handle_packet(ctx, pkt);
            self.harvest();
        }
        fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
            self.stack.handle_timer(ctx, token);
            self.harvest();
        }
    }

    /// Star(2) with host 0's uplink down for `down` starting at t=0.
    fn run_flapped(
        down: SimDuration,
        retry: RetryConfig,
        send: Vec<(HostId, Priority, u64, Option<SimTime>)>,
    ) -> RetryHost {
        let plan = FaultPlan {
            flaps: vec![LinkFlap {
                link: LinkSel::HostUp(0),
                first_down: SimTime::ZERO,
                down,
                period: SimDuration::from_secs_f64(10.0),
                count: 1,
            }],
            ..FaultPlan::default()
        }
        .validated()
        .unwrap();
        let mut cfg = EngineConfig::default_3qos();
        cfg.faults = Some(Arc::new(plan));
        let mut sender = RetryHost::new(0, retry.clone());
        sender.send = send;
        let agents = vec![sender, RetryHost::new(1, retry)];
        let topo = Topology::star(2, LinkSpec::default_100g());
        let mut eng = Engine::new(topo, agents, cfg);
        eng.run_until(SimTime::from_ms(200));
        let mut h = std::mem::replace(&mut eng.agents_mut()[0], RetryHost::new(0, RetryConfig::default()));
        h.harvest();
        h
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let r = RetryConfig {
            max_attempts: 8,
            backoff: SimDuration::from_us(100),
            backoff_factor: 2.0,
        };
        assert_eq!(r.delay_before(2), SimDuration::from_us(100));
        assert_eq!(r.delay_before(3), SimDuration::from_us(200));
        assert_eq!(r.delay_before(5), SimDuration::from_us(800));
        // The exponent clamps instead of overflowing.
        assert!(r.delay_before(u32::MAX) > SimDuration::ZERO);
    }

    #[test]
    fn transport_abandonment_is_retried_to_completion() {
        // The link is down long enough that the fast-abandoning transport
        // gives up several times; the RPC layer's backoff outlives the
        // outage and the RPC completes.
        let retry = RetryConfig {
            max_attempts: 16,
            backoff: SimDuration::from_us(500),
            backoff_factor: 2.0,
        };
        let h = run_flapped(
            SimDuration::from_ms(4),
            retry,
            vec![(HostId(1), Priority::PerformanceCritical, 32_768, None)],
        );
        assert_eq!(h.failed.len(), 0, "{:?}", h.failed);
        assert_eq!(h.done.len(), 1);
        let c = &h.done[0];
        assert!(c.attempts >= 2, "expected retries, got {} attempts", c.attempts);
        assert_eq!(c.issued_at, SimTime::ZERO, "RNL must span the retry saga");
        assert!(c.completed_at >= SimTime::from_ms(4), "{:?}", c.completed_at);
    }

    #[test]
    fn deadline_bounds_retry_lifetime() {
        // An outage longer than the deadline: the stack must stop retrying
        // before the deadline rather than ride the full (huge) budget.
        let retry = RetryConfig {
            max_attempts: 1000,
            backoff: SimDuration::from_us(500),
            backoff_factor: 2.0,
        };
        let deadline = SimTime::from_ms(4);
        let h = run_flapped(
            SimDuration::from_ms(50),
            retry,
            vec![(HostId(1), Priority::PerformanceCritical, 32_768, Some(deadline))],
        );
        assert_eq!(h.done.len(), 0);
        assert_eq!(h.failed.len(), 1, "{:?}", h.failed);
        let f = &h.failed[0];
        assert!(
            f.failed_at <= deadline,
            "gave up at {:?}, after the {:?} deadline",
            f.failed_at,
            deadline
        );
        assert!(f.attempts >= 1);
        assert_eq!(f.first_issued_at, SimTime::ZERO);
    }

    #[test]
    fn retry_budget_bounds_attempts() {
        let retry = RetryConfig {
            max_attempts: 3,
            backoff: SimDuration::from_us(200),
            backoff_factor: 2.0,
        };
        let h = run_flapped(
            SimDuration::from_ms(100),
            retry,
            vec![(HostId(1), Priority::PerformanceCritical, 32_768, None)],
        );
        assert_eq!(h.done.len(), 0);
        assert_eq!(h.failed.len(), 1);
        assert_eq!(h.failed[0].attempts, 3);
    }

    #[test]
    fn healthy_runs_never_retry() {
        let retry = RetryConfig::default();
        let mut sender = RetryHost::new(0, retry.clone());
        sender.send = (0..20)
            .map(|_| (HostId(1), Priority::PerformanceCritical, 32_768u64, None))
            .collect();
        let agents = vec![sender, RetryHost::new(1, retry)];
        let topo = Topology::star(2, LinkSpec::default_100g());
        let mut eng = Engine::new(topo, agents, EngineConfig::default_3qos());
        eng.run_until(SimTime::from_ms(50));
        let h = &mut eng.agents_mut()[0];
        h.harvest();
        assert_eq!(h.done.len(), 20);
        assert!(h.failed.is_empty());
        assert!(h.done.iter().all(|c| c.attempts == 1));
        assert_eq!(h.stack.outstanding(), 0);
    }
}

#[cfg(test)]
mod quota_tests {
    use super::*;
    use aequitas::{Grant, SloTarget, TenantId};
    use aequitas_netsim::{Engine, EngineConfig, HostAgent, LinkSpec, Topology};
    use aequitas_transport::TransportConfig;

    /// Issues one 32 KB PC RPC per completion (self-clocked) through a
    /// quota-augmented stack with an impossible SLO: only quota tokens can
    /// keep traffic on QoSh.
    struct QuotaHost {
        stack: RpcStack,
        remaining: usize,
        done: Vec<RpcCompletion>,
    }

    impl HostAgent for QuotaHost {
        fn on_start(&mut self, ctx: &mut HostCtx) {
            if self.remaining > 0 {
                self.remaining -= 1;
                self.stack
                    .issue_rpc(ctx, HostId(1), Priority::PerformanceCritical, 32_768);
            }
        }
        fn on_packet(&mut self, ctx: &mut HostCtx, pkt: Packet) {
            self.stack.handle_packet(ctx, pkt);
            for c in self.stack.take_completions() {
                self.done.push(c);
                if self.remaining > 0 {
                    self.remaining -= 1;
                    self.stack
                        .issue_rpc(ctx, HostId(1), Priority::PerformanceCritical, 32_768);
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
            self.stack.handle_timer(ctx, token);
        }
    }

    fn impossible_slo() -> AequitasConfig {
        AequitasConfig::two_qos(SloTarget::per_mtu(
            aequitas_sim_core::SimDuration::from_ns(1),
            99.0,
        ))
    }

    fn run_quota(grant_bps: f64, n_rpcs: usize) -> Vec<RpcCompletion> {
        let mut policy = Policy::aequitas_with_quota(impossible_slo(), 5, TenantId(0), 0);
        if let Policy::AequitasWithQuota { bucket, .. } = &mut policy {
            bucket.set_rate(grant_bps, SimTime::ZERO);
        }
        let stack = RpcStack::new(
            HostId(0),
            QosMapping::two_level(),
            policy,
            TransportConfig::default(),
        );
        let topo = Topology::star(2, LinkSpec::default_100g());
        let sink = RpcStack::new(
            HostId(1),
            QosMapping::two_level(),
            Policy::Static,
            TransportConfig::default(),
        );
        let agents = vec![
            QuotaHost {
                stack,
                remaining: n_rpcs,
                done: Vec::new(),
            },
            QuotaHost {
                stack: sink,
                remaining: 0,
                done: Vec::new(),
            },
        ];
        let mut eng = Engine::new(topo, agents, EngineConfig::default_2qos());
        eng.run_until(SimTime::from_ms(100));
        std::mem::take(&mut eng.agents_mut()[0].done)
    }

    #[test]
    fn quota_tokens_bypass_admission() {
        // A generous grant (50 Gbps, above the ~37 Gbps self-clocked
        // demand) keeps every RPC on QoSh even though the SLO is impossible
        // (p_admit at floor).
        let done = run_quota(50e9 / 8.0, 200);
        assert_eq!(done.len(), 200);
        let on_high = done.iter().filter(|c| c.qos_run == QosClass::HIGH).count();
        assert!(
            on_high > 190,
            "quota-covered traffic must stay on QoSh: {on_high}/200"
        );
    }

    #[test]
    fn zero_grant_behaves_like_plain_aequitas() {
        let done = run_quota(0.0, 200);
        assert_eq!(done.len(), 200);
        let downgraded = done.iter().filter(|c| c.downgraded).count();
        assert!(
            downgraded > 150,
            "without tokens the impossible SLO should downgrade nearly all: {downgraded}/200"
        );
    }

    #[test]
    fn usage_reports_track_offered_bytes() {
        let mut policy = Policy::aequitas_with_quota(impossible_slo(), 6, TenantId(3), 0);
        if let Policy::AequitasWithQuota { bucket, .. } = &mut policy {
            bucket.set_rate(1e9, SimTime::ZERO);
        }
        let mut stack = RpcStack::new(
            HostId(0),
            QosMapping::two_level(),
            policy,
            TransportConfig::default(),
        );
        // No network needed: issue through a throwaway engine context is
        // not possible here, so check the report plumbing directly after
        // applying a grant.
        assert!(stack.take_usage_report().is_some());
        let rep = stack.take_usage_report().unwrap();
        assert_eq!(rep.tenant, TenantId(3));
        assert_eq!(rep.offered_bytes, 0);
        stack.apply_grant(Grant { rate_bps: 5.0 }, SimTime::ZERO);
    }
}
