#![warn(missing_docs)]

//! The RPC stack: where Aequitas lives (Fig. 6 of the paper).
//!
//! Applications issue RPCs on channels annotated with a [`Priority`]; the
//! stack maps priority to a requested QoS (Phase 1), consults the admission
//! policy for an admit-or-downgrade decision (Phase 2), hands the message to
//! the transport, and — when the transport reports completion — computes the
//! RPC Network Latency (RNL) and feeds it back into the policy.
//!
//! Two components:
//!
//! * [`RpcStack`] — the per-host stack combining mapping, policy, transport,
//!   and RNL bookkeeping.
//! * [`WorkloadHost`] — a ready-made [`HostAgent`] that drives an
//!   [`ArrivalProcess`]/[`TrafficPattern`]/size-distribution workload
//!   through an `RpcStack`; all macro experiments use it.

pub mod driver;
pub mod stack;

pub use driver::{PrioritySpec, WorkloadHost, WorkloadSpec};
pub use stack::{
    Policy, RetryConfig, RpcCompletion, RpcFailure, RpcStack, RPC_RETRY_TIMER,
};

pub use aequitas_workloads::{ArrivalProcess, Priority, QosClass, QosMapping, TrafficPattern};
