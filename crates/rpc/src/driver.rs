//! A ready-made host agent that drives a workload through an [`RpcStack`].

use crate::stack::{RpcCompletion, RpcStack};
use aequitas_netsim::{HostAgent, HostCtx, HostId, Packet};
use aequitas_sim_core::{SimRng, SimTime};
use aequitas_workloads::{ArrivalProcess, ArrivalState, Priority, SizeDist, TrafficPattern};
use aequitas_sim_core::BitRate;

/// One priority class within a workload: its share of offered *bytes* and
/// the size distribution of its RPCs.
#[derive(Debug, Clone)]
pub struct PrioritySpec {
    /// The priority class.
    pub priority: Priority,
    /// Share of offered bytes (relative weight).
    pub byte_share: f64,
    /// RPC size distribution for this class.
    pub sizes: SizeDist,
}

/// A complete workload description for one sending host.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// When RPCs are issued.
    pub arrival: ArrivalProcess,
    /// Who they are sent to.
    pub pattern: TrafficPattern,
    /// The per-priority mix (byte shares need not sum to 1; they are
    /// normalized).
    pub classes: Vec<PrioritySpec>,
    /// Stop issuing (but keep serving) after this time, if set.
    pub stop: Option<SimTime>,
}

const ARRIVAL_TIMER: u64 = 1;

/// A [`HostAgent`] that issues RPCs per a [`WorkloadSpec`] through an
/// [`RpcStack`] and accumulates completions for the experiment harness.
pub struct WorkloadHost {
    stack: RpcStack,
    spec: Option<WorkloadSpec>,
    arrivals: Option<ArrivalState>,
    /// Relative per-class RPC-count weights (byte share / mean size).
    count_weights: Vec<f64>,
    rng: SimRng,
    n_hosts: usize,
    next_arrival: Option<SimTime>,
    completions: Vec<RpcCompletion>,
    issued: u64,
}

impl WorkloadHost {
    /// Build an agent. `spec: None` makes a pure receiver. `line_rate` must
    /// match the host's NIC rate (loads are expressed relative to it).
    pub fn new(
        stack: RpcStack,
        spec: Option<WorkloadSpec>,
        n_hosts: usize,
        line_rate: BitRate,
        seed: u64,
    ) -> Self {
        let mut count_weights = Vec::new();
        let arrivals = spec.as_ref().map(|s| {
            assert!(!s.classes.is_empty(), "workload needs at least one class");
            count_weights = s
                .classes
                .iter()
                .map(|c| {
                    assert!(c.byte_share >= 0.0);
                    c.byte_share / c.sizes.mean_bytes()
                })
                .collect();
            let share_total: f64 = s.classes.iter().map(|c| c.byte_share).sum();
            let weight_total: f64 = count_weights.iter().sum();
            assert!(share_total > 0.0 && weight_total > 0.0);
            let mean_bytes = share_total / weight_total;
            ArrivalState::new(s.arrival.clone(), line_rate, mean_bytes)
        });
        WorkloadHost {
            stack,
            spec,
            arrivals,
            count_weights,
            rng: SimRng::new(seed ^ 0x5EED_0001),
            n_hosts,
            next_arrival: None,
            completions: Vec::new(),
            issued: 0,
        }
    }

    /// The underlying stack.
    pub fn stack(&self) -> &RpcStack {
        &self.stack
    }

    /// Mutable access to the stack.
    pub fn stack_mut(&mut self) -> &mut RpcStack {
        &mut self.stack
    }

    /// All completions harvested so far (sender side).
    pub fn completions(&self) -> &[RpcCompletion] {
        &self.completions
    }

    /// Drain harvested completions.
    pub fn take_completions(&mut self) -> Vec<RpcCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// RPCs issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Adjust one workload class's byte share at runtime (the knob an
    /// application turns when it reacts to downgrade notifications —
    /// Algorithm 1 surfaces downgrades so apps can re-mark traffic).
    /// Count weights and the arrival process's mean size stay consistent.
    pub fn set_byte_share(&mut self, class_idx: usize, byte_share: f64) {
        let Some(spec) = self.spec.as_mut() else {
            return;
        };
        assert!(class_idx < spec.classes.len());
        assert!(byte_share >= 0.0);
        spec.classes[class_idx].byte_share = byte_share;
        self.count_weights = spec
            .classes
            .iter()
            .map(|c| {
                if c.byte_share <= 0.0 {
                    0.0
                } else {
                    c.byte_share / c.sizes.mean_bytes()
                }
            })
            .collect();
        // Keep at least one sendable class.
        assert!(
            self.count_weights.iter().any(|&w| w > 0.0),
            "at least one class must keep a positive share"
        );
    }

    /// Current byte share of a class.
    pub fn byte_share(&self, class_idx: usize) -> f64 {
        self.spec
            .as_ref()
            .map(|s| s.classes[class_idx].byte_share)
            .unwrap_or(0.0)
    }

    fn schedule_next(&mut self, ctx: &mut HostCtx) {
        let Some(arrivals) = self.arrivals.as_mut() else {
            return;
        };
        let spec = self.spec.as_ref().expect("spec exists with arrivals");
        if self.next_arrival.is_none() {
            let mut t = arrivals.next_arrival(&mut self.rng);
            // The very first sample can land at time 0 exactly; keep it.
            if let Some(stop) = spec.stop {
                if t >= stop {
                    return;
                }
            }
            if t < ctx.now() {
                t = ctx.now();
            }
            self.next_arrival = Some(t);
            ctx.set_timer(t, ARRIVAL_TIMER);
        }
    }

    fn fire_arrivals(&mut self, ctx: &mut HostCtx) {
        let Some(t) = self.next_arrival else {
            return;
        };
        if t > ctx.now() {
            return;
        }
        self.next_arrival = None;
        // Issue the RPC due now.
        let spec = self.spec.as_ref().expect("sender has a spec");
        if spec.stop.is_none_or(|stop| ctx.now() < stop) {
            let class_idx = self.rng.weighted_index(&self.count_weights);
            let class = &spec.classes[class_idx];
            let size = class.sizes.sample(&mut self.rng);
            let priority = class.priority;
            if let Some(dst) = spec
                .pattern
                .pick_dst(ctx.host().0, self.n_hosts, &mut self.rng)
            {
                self.stack
                    .issue_rpc(ctx, HostId(dst), priority, size.max(1));
                self.issued += 1;
            }
        } else {
            return; // past stop: no more arrivals
        }
        self.schedule_next(ctx);
    }

    fn harvest(&mut self) {
        self.completions.extend(self.stack.take_completions());
    }
}

impl HostAgent for WorkloadHost {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        if self
            .spec
            .as_ref()
            .is_some_and(|s| s.pattern.is_sender(ctx.host().0))
        {
            self.schedule_next(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut HostCtx, pkt: Packet) {
        self.stack.handle_packet(ctx, pkt);
        self.harvest();
    }

    fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
        if !self.stack.handle_timer(ctx, token) && token == ARRIVAL_TIMER {
            self.fire_arrivals(ctx);
        }
        self.harvest();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Policy;
    use aequitas_netsim::{Engine, EngineConfig, LinkSpec, Topology};
    use aequitas_transport::TransportConfig;
    use aequitas_workloads::QosMapping;

    fn line_rate() -> BitRate {
        BitRate::from_gbps(100)
    }

    fn mk_host(
        host: usize,
        spec: Option<WorkloadSpec>,
        n_hosts: usize,
        seed: u64,
    ) -> WorkloadHost {
        let stack = RpcStack::new(
            HostId(host),
            QosMapping::three_level(),
            Policy::Static,
            TransportConfig::default(),
        );
        WorkloadHost::new(stack, spec, n_hosts, line_rate(), seed + host as u64)
    }

    fn uniform_spec(load: f64, dst: usize) -> WorkloadSpec {
        WorkloadSpec {
            arrival: ArrivalProcess::Poisson { load },
            pattern: TrafficPattern::ManyToOne { dst },
            classes: vec![PrioritySpec {
                priority: Priority::PerformanceCritical,
                byte_share: 1.0,
                sizes: SizeDist::Fixed(32_768),
            }],
            stop: None,
        }
    }

    #[test]
    fn offered_load_matches_spec() {
        let topo = Topology::star(2, LinkSpec::default_100g());
        let agents = vec![
            mk_host(0, Some(uniform_spec(0.5, 1)), 2, 1),
            mk_host(1, None, 2, 2),
        ];
        let mut eng = Engine::new(topo, agents, EngineConfig::default_3qos());
        let dur = 0.02;
        eng.run_until(SimTime::from_secs_f64(dur));
        let issued = eng.agents()[0].issued();
        let expect = 0.5 * 100e9 * dur / (32_768.0 * 8.0);
        let got = issued as f64;
        assert!(
            (got - expect).abs() / expect < 0.1,
            "issued {got}, expected ~{expect}"
        );
        // At load 0.5 everything should complete promptly.
        let done = eng.agents()[0].completions().len();
        assert!(done as f64 > got * 0.95, "done {done} of {got}");
    }

    #[test]
    fn byte_shares_respected_across_classes() {
        // 60/30/10 byte mix with different fixed sizes: check issued byte
        // proportions.
        let spec = WorkloadSpec {
            arrival: ArrivalProcess::Poisson { load: 0.3 },
            pattern: TrafficPattern::ManyToOne { dst: 1 },
            classes: vec![
                PrioritySpec {
                    priority: Priority::PerformanceCritical,
                    byte_share: 0.6,
                    sizes: SizeDist::Fixed(8_192),
                },
                PrioritySpec {
                    priority: Priority::NonCritical,
                    byte_share: 0.3,
                    sizes: SizeDist::Fixed(32_768),
                },
                PrioritySpec {
                    priority: Priority::BestEffort,
                    byte_share: 0.1,
                    sizes: SizeDist::Fixed(65_536),
                },
            ],
            stop: None,
        };
        let topo = Topology::star(2, LinkSpec::default_100g());
        let agents = vec![mk_host(0, Some(spec), 2, 3), mk_host(1, None, 2, 4)];
        let mut eng = Engine::new(topo, agents, EngineConfig::default_3qos());
        eng.run_until(SimTime::from_ms(50));
        let mut bytes = [0u64; 3];
        for c in eng.agents()[0].completions() {
            let idx = match c.priority {
                Priority::PerformanceCritical => 0,
                Priority::NonCritical => 1,
                Priority::BestEffort => 2,
            };
            bytes[idx] += c.size_bytes;
        }
        let total: u64 = bytes.iter().sum();
        assert!(total > 0);
        let shares: Vec<f64> = bytes.iter().map(|&b| b as f64 / total as f64).collect();
        assert!((shares[0] - 0.6).abs() < 0.06, "{shares:?}");
        assert!((shares[1] - 0.3).abs() < 0.05, "{shares:?}");
        assert!((shares[2] - 0.1).abs() < 0.04, "{shares:?}");
    }

    #[test]
    fn stop_time_halts_issuing() {
        let mut spec = uniform_spec(0.5, 1);
        spec.stop = Some(SimTime::from_ms(1));
        let topo = Topology::star(2, LinkSpec::default_100g());
        let agents = vec![mk_host(0, Some(spec), 2, 5), mk_host(1, None, 2, 6)];
        let mut eng = Engine::new(topo, agents, EngineConfig::default_3qos());
        eng.run_until(SimTime::from_ms(20));
        let issued = eng.agents()[0].issued();
        let expect_1ms = 0.5 * 100e9 * 0.001 / (32_768.0 * 8.0);
        assert!(
            (issued as f64) < expect_1ms * 1.2,
            "issued {issued} should reflect the 1 ms stop (~{expect_1ms})"
        );
        // Everything issued completes.
        assert_eq!(eng.agents()[0].completions().len() as u64, issued);
    }

    #[test]
    fn receiver_never_issues() {
        let topo = Topology::star(2, LinkSpec::default_100g());
        let agents = vec![
            mk_host(0, Some(uniform_spec(0.2, 1)), 2, 7),
            mk_host(1, None, 2, 8),
        ];
        let mut eng = Engine::new(topo, agents, EngineConfig::default_3qos());
        eng.run_until(SimTime::from_ms(5));
        assert_eq!(eng.agents()[1].issued(), 0);
        assert!(eng.agents()[0].issued() > 0);
    }

    #[test]
    fn overload_keeps_issuing_and_rnl_grows() {
        // Two senders at 0.8 load each into one receiver: 1.6x overload.
        // Later RPCs should see much larger RNL than the earliest ones.
        let topo = Topology::star(3, LinkSpec::default_100g());
        let agents = vec![
            mk_host(0, Some(uniform_spec(0.8, 2)), 3, 9),
            mk_host(1, Some(uniform_spec(0.8, 2)), 3, 10),
            mk_host(2, None, 3, 11),
        ];
        let mut eng = Engine::new(topo, agents, EngineConfig::default_3qos());
        eng.run_until(SimTime::from_ms(20));
        let done = eng.agents()[0].completions();
        assert!(done.len() > 100);
        let early: f64 = done[..20]
            .iter()
            .map(|c| c.rnl().as_us_f64())
            .sum::<f64>()
            / 20.0;
        let late: f64 = done[done.len() - 20..]
            .iter()
            .map(|c| c.rnl().as_us_f64())
            .sum::<f64>()
            / 20.0;
        assert!(
            late > early * 3.0,
            "overload should inflate RNL: early {early:.1}us late {late:.1}us"
        );
    }
}
