//! Deterministic, seeded fault plans for the Aequitas simulator.
//!
//! A [`FaultPlan`] describes adverse fabric conditions — link down/up flaps,
//! per-link Bernoulli and burst packet loss, packet corruption, added latency
//! jitter, and quota-server unavailability windows. Every decision the plan
//! makes is a **pure function of `(seed, time, entity)`**: there is no
//! mutable RNG stream, so the verdict for a given packet on a given link at a
//! given time does not depend on event ordering, thread count, or how many
//! other faults fired before it. Two runs with the same seed and plan are
//! byte-identical, and the `simsan` feature cannot perturb them (lint rule
//! AQ001: no ambient randomness).
//!
//! The plan is consumed by `aequitas-netsim` (links honor fault state,
//! `PortStats` counts fault drops/corruptions), by the experiments harness
//! (quota-server outage windows), and is loadable from a TOML subset via
//! [`FaultPlan::from_toml_str`] (see `scripts/chaos_smoke.sh` and the README
//! for the schema).

mod toml;

pub use toml::parse_document;

use aequitas_sim_core::{SimDuration, SimTime};

/// A directed link in the simulated fabric, identified by its transmitting
/// endpoint. Fault rules select links with [`LinkSel`]; the engine queries
/// with concrete `LinkId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// The uplink from host `h`'s NIC into the fabric.
    HostUp(usize),
    /// A switch egress port (toward a host or another switch).
    SwitchPort {
        /// Switch index.
        switch: usize,
        /// Egress port index on that switch.
        port: usize,
    },
}

impl LinkId {
    /// A stable 64-bit key for hashing (pure-function determinism).
    fn entity_key(self) -> u64 {
        match self {
            LinkId::HostUp(h) => 0x4000_0000_0000_0000 | h as u64,
            LinkId::SwitchPort { switch, port } => {
                0x8000_0000_0000_0000 | ((switch as u64) << 20) | port as u64
            }
        }
    }
}

/// Which links a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSel {
    /// Every link in the fabric.
    Any,
    /// One host uplink.
    HostUp(usize),
    /// One switch egress port.
    SwitchPort {
        /// Switch index.
        switch: usize,
        /// Egress port index.
        port: usize,
    },
}

impl LinkSel {
    /// Does this selector cover `link`?
    pub fn matches(self, link: LinkId) -> bool {
        match (self, link) {
            (LinkSel::Any, _) => true,
            (LinkSel::HostUp(a), LinkId::HostUp(b)) => a == b,
            (
                LinkSel::SwitchPort { switch: s, port: p },
                LinkId::SwitchPort { switch, port },
            ) => s == switch && p == port,
            _ => false,
        }
    }

    /// Parse the TOML form: `"any"`, `"host:<h>"`, or `"switch:<s>:<p>"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "any" {
            return Ok(LinkSel::Any);
        }
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["host", h] => h
                .parse()
                .map(LinkSel::HostUp)
                .map_err(|_| format!("bad host index in link selector {s:?}")),
            ["switch", sw, p] => {
                let switch = sw
                    .parse()
                    .map_err(|_| format!("bad switch index in link selector {s:?}"))?;
                let port = p
                    .parse()
                    .map_err(|_| format!("bad port index in link selector {s:?}"))?;
                Ok(LinkSel::SwitchPort { switch, port })
            }
            _ => Err(format!(
                "bad link selector {s:?} (expected \"any\", \"host:<h>\", or \"switch:<s>:<p>\")"
            )),
        }
    }
}

/// A periodic link down/up flap: the link is down during
/// `[first_down + k*period, first_down + k*period + down)` for `k < count`.
#[derive(Debug, Clone, Copy)]
pub struct LinkFlap {
    /// Links this flap applies to.
    pub link: LinkSel,
    /// Start of the first down window.
    pub first_down: SimTime,
    /// Length of each down window.
    pub down: SimDuration,
    /// Distance between successive down-window starts (>= `down`).
    pub period: SimDuration,
    /// Number of down windows.
    pub count: u32,
}

impl LinkFlap {
    /// The down window containing `now`, if any.
    fn window_at(&self, now: SimTime) -> Option<(SimTime, SimTime)> {
        if self.count == 0 || now < self.first_down {
            return None;
        }
        let period = self.period.max(SimDuration::from_ps(1));
        let k = now.since(self.first_down).div_duration(period);
        if k >= self.count as u64 {
            return None;
        }
        let start = self.first_down + period * k;
        let end = start + self.down;
        (now >= start && now < end).then_some((start, end))
    }
}

/// Elevated loss during deterministically-chosen burst windows.
#[derive(Debug, Clone, Copy)]
pub struct BurstLoss {
    /// Time is bucketed into windows of this length.
    pub period: SimDuration,
    /// Fraction of windows (per link) that are bursts, in `[0, 1]`.
    pub frac: f64,
    /// Loss probability inside a burst window.
    pub prob: f64,
}

/// Per-link packet loss: a base Bernoulli probability plus optional bursts.
#[derive(Debug, Clone, Copy)]
pub struct LossRule {
    /// Links this rule applies to.
    pub link: LinkSel,
    /// Baseline per-packet loss probability.
    pub prob: f64,
    /// Optional burst elevation.
    pub burst: Option<BurstLoss>,
}

/// Per-link packet corruption (the frame is destroyed — the receiver's CRC
/// would reject it — but it is counted separately from clean loss).
#[derive(Debug, Clone, Copy)]
pub struct CorruptRule {
    /// Links this rule applies to.
    pub link: LinkSel,
    /// Per-packet corruption probability.
    pub prob: f64,
}

/// Per-link added latency jitter: each packet is delayed by an extra
/// `uniform[0, max)` drawn from the deterministic hash stream.
#[derive(Debug, Clone, Copy)]
pub struct JitterRule {
    /// Links this rule applies to.
    pub link: LinkSel,
    /// Maximum extra propagation delay.
    pub max: SimDuration,
}

/// A half-open time window `[start, end)`.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

impl Window {
    /// Is `now` inside the window?
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end
    }
}

/// What the fault layer decided for one packet on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Deliver normally.
    Deliver,
    /// The packet is lost in transit.
    Lose,
    /// The packet is corrupted in transit (dropped, counted separately).
    Corrupt,
}

/// A complete, deterministic fault plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the pure-function hash streams.
    pub seed: u64,
    /// Link down/up flaps.
    pub flaps: Vec<LinkFlap>,
    /// Packet loss rules.
    pub loss: Vec<LossRule>,
    /// Packet corruption rules.
    pub corrupt: Vec<CorruptRule>,
    /// Latency jitter rules.
    pub jitter: Vec<JitterRule>,
    /// Quota-server unavailability windows.
    pub quota_outages: Vec<Window>,
}

// Domain-separation salts so the loss, corruption, jitter, and burst streams
// are mutually independent even on the same (seed, link, packet).
const SALT_LOSS: u64 = 0x10_55;
const SALT_CORRUPT: u64 = 0xC0_44;
const SALT_JITTER: u64 = 0x71_77;
const SALT_BURST: u64 = 0xB0_57;

/// One round of splitmix64 — the same finalizer `SimRng` seeds with, reused
/// here as a stateless hash so fault decisions need no mutable stream.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` as a pure function of the inputs.
fn hash01(seed: u64, salt: u64, rule: usize, entity: u64, x: u64) -> f64 {
    let h = splitmix64(
        splitmix64(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ splitmix64(entity.wrapping_add(rule as u64))
            ^ x,
    );
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// Parse a plan from the fault-plan TOML subset (see the README schema).
    pub fn from_toml_str(text: &str) -> Result<Self, String> {
        toml::plan_from_toml(text)
    }

    /// Load a plan from a TOML file.
    pub fn from_toml_file(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading fault plan {}: {e}", path.display()))?;
        Self::from_toml_str(&text)
    }

    /// Sanity-check probabilities and window shapes; returns `self` for
    /// chaining. Panics on malformed plans (they are operator input).
    pub fn validated(self) -> Self {
        for f in &self.flaps {
            assert!(f.down <= f.period, "flap down window longer than period");
        }
        for l in &self.loss {
            assert!((0.0..=1.0).contains(&l.prob), "loss prob out of range");
            if let Some(b) = &l.burst {
                assert!((0.0..=1.0).contains(&b.frac), "burst frac out of range");
                assert!((0.0..=1.0).contains(&b.prob), "burst prob out of range");
                assert!(b.period > SimDuration::ZERO, "burst period must be positive");
            }
        }
        for c in &self.corrupt {
            assert!((0.0..=1.0).contains(&c.prob), "corrupt prob out of range");
        }
        for w in &self.quota_outages {
            assert!(w.start < w.end, "empty quota outage window");
        }
        self
    }

    /// Does the plan contain any per-packet or per-link fabric faults? Lets
    /// the engine skip all fault queries on the hot path when false.
    pub fn affects_fabric(&self) -> bool {
        !(self.flaps.is_empty()
            && self.loss.is_empty()
            && self.corrupt.is_empty()
            && self.jitter.is_empty())
    }

    /// Is `link` down at `now`?
    pub fn link_down(&self, link: LinkId, now: SimTime) -> bool {
        self.flaps
            .iter()
            .any(|f| f.link.matches(link) && f.window_at(now).is_some())
    }

    /// When the down window covering `now` ends (the latest end across all
    /// matching flaps, so overlapping flaps coalesce). Returns `now` when the
    /// link is not down — callers re-check after waking.
    pub fn link_up_at(&self, link: LinkId, now: SimTime) -> SimTime {
        let mut up = now;
        // Chase overlapping/chained windows: a wake at one window's end may
        // land inside another flap's window.
        loop {
            let mut advanced = false;
            for f in &self.flaps {
                if f.link.matches(link) {
                    if let Some((_, end)) = f.window_at(up) {
                        if end > up {
                            up = end;
                            advanced = true;
                        }
                    }
                }
            }
            if !advanced {
                return up;
            }
        }
    }

    /// Decide the fate of packet `pkt_id` crossing `link` at `now`.
    /// Corruption is evaluated before clean loss so the two counters are
    /// disjoint.
    pub fn packet_fate(&self, link: LinkId, pkt_id: u64, now: SimTime) -> PacketFate {
        let entity = link.entity_key();
        for (i, c) in self.corrupt.iter().enumerate() {
            if c.link.matches(link)
                && c.prob > 0.0
                && hash01(self.seed, SALT_CORRUPT, i, entity, pkt_id) < c.prob
            {
                return PacketFate::Corrupt;
            }
        }
        for (i, l) in self.loss.iter().enumerate() {
            if !l.link.matches(link) {
                continue;
            }
            let mut prob = l.prob;
            if let Some(b) = &l.burst {
                let bucket = now
                    .since(SimTime::ZERO)
                    .div_duration(b.period.max(SimDuration::from_ps(1)));
                if hash01(self.seed, SALT_BURST, i, entity, bucket) < b.frac {
                    prob = prob.max(b.prob);
                }
            }
            if prob > 0.0 && hash01(self.seed, SALT_LOSS, i, entity, pkt_id) < prob {
                return PacketFate::Lose;
            }
        }
        PacketFate::Deliver
    }

    /// Extra propagation delay for packet `pkt_id` crossing `link`.
    pub fn extra_delay(&self, link: LinkId, pkt_id: u64) -> SimDuration {
        let entity = link.entity_key();
        let mut extra = SimDuration::ZERO;
        for (i, j) in self.jitter.iter().enumerate() {
            if j.link.matches(link) && j.max > SimDuration::ZERO {
                extra += j.max.mul_f64(hash01(self.seed, SALT_JITTER, i, entity, pkt_id));
            }
        }
        extra
    }

    /// Is the quota server unreachable at `now`?
    pub fn quota_server_down(&self, now: SimTime) -> bool {
        self.quota_outages.iter().any(|w| w.contains(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_us(v)
    }

    fn dus(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    fn flap_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            flaps: vec![LinkFlap {
                link: LinkSel::SwitchPort { switch: 0, port: 2 },
                first_down: us(100),
                down: dus(50),
                period: dus(200),
                count: 2,
            }],
            ..FaultPlan::default()
        }
    }

    #[test]
    fn flap_windows_are_periodic_and_bounded() {
        let p = flap_plan();
        let l = LinkId::SwitchPort { switch: 0, port: 2 };
        assert!(!p.link_down(l, us(99)));
        assert!(p.link_down(l, us(100)));
        assert!(p.link_down(l, us(149)));
        assert!(!p.link_down(l, us(150)));
        assert!(p.link_down(l, us(300))); // second window
        assert!(!p.link_down(l, us(500))); // count exhausted
        assert!(!p.link_down(LinkId::HostUp(0), us(120))); // other link
        assert_eq!(p.link_up_at(l, us(120)), us(150));
    }

    #[test]
    fn overlapping_flap_windows_coalesce_for_wakeup() {
        let mut p = flap_plan();
        p.flaps.push(LinkFlap {
            link: LinkSel::Any,
            first_down: us(140),
            down: dus(30),
            period: dus(1000),
            count: 1,
        });
        let l = LinkId::SwitchPort { switch: 0, port: 2 };
        // First flap ends at 150, second covers [140,170): wake must chase
        // through to 170.
        assert_eq!(p.link_up_at(l, us(120)), us(170));
    }

    #[test]
    fn loss_rate_matches_probability() {
        let p = FaultPlan {
            seed: 42,
            loss: vec![LossRule {
                link: LinkSel::Any,
                prob: 0.3,
                burst: None,
            }],
            ..FaultPlan::default()
        };
        let l = LinkId::HostUp(0);
        let lost = (0..20_000)
            .filter(|&i| p.packet_fate(l, i, us(1)) == PacketFate::Lose)
            .count();
        let rate = lost as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn fate_is_pure_function_of_inputs() {
        let p = FaultPlan {
            seed: 3,
            loss: vec![LossRule {
                link: LinkSel::Any,
                prob: 0.5,
                burst: Some(BurstLoss {
                    period: dus(10),
                    frac: 0.5,
                    prob: 0.9,
                }),
            }],
            jitter: vec![JitterRule {
                link: LinkSel::Any,
                max: dus(2),
            }],
            ..FaultPlan::default()
        };
        let l = LinkId::SwitchPort { switch: 1, port: 3 };
        for pkt in 0..100u64 {
            // Same inputs, same answers — regardless of query order.
            assert_eq!(p.packet_fate(l, pkt, us(5)), p.packet_fate(l, pkt, us(5)));
            assert_eq!(p.extra_delay(l, pkt), p.extra_delay(l, pkt));
        }
        // Different seed decorrelates.
        let p2 = FaultPlan { seed: 4, ..p.clone() };
        let same = (0..1000u64)
            .filter(|&i| p.packet_fate(l, i, us(5)) == p2.packet_fate(l, i, us(5)))
            .count();
        assert!(same < 1000, "seed change must alter some verdicts");
    }

    #[test]
    fn burst_windows_elevate_loss() {
        let p = FaultPlan {
            seed: 9,
            loss: vec![LossRule {
                link: LinkSel::Any,
                prob: 0.0,
                burst: Some(BurstLoss {
                    period: dus(100),
                    frac: 0.5,
                    prob: 1.0,
                }),
            }],
            ..FaultPlan::default()
        };
        let l = LinkId::HostUp(1);
        // Each 100us bucket is either all-loss or no-loss; roughly half the
        // buckets burst.
        let mut burst_buckets = 0;
        for bucket in 0..200u64 {
            let t = SimTime::from_us(bucket * 100 + 50);
            let lost = (0..32).filter(|&i| p.packet_fate(l, bucket * 1000 + i, t) == PacketFate::Lose).count();
            assert!(lost == 0 || lost == 32, "bucket must be uniform, got {lost}/32");
            if lost == 32 {
                burst_buckets += 1;
            }
        }
        assert!((40..=160).contains(&burst_buckets), "{burst_buckets} burst buckets");
    }

    #[test]
    fn corruption_and_loss_are_distinct_fates() {
        let p = FaultPlan {
            seed: 11,
            loss: vec![LossRule { link: LinkSel::Any, prob: 0.2, burst: None }],
            corrupt: vec![CorruptRule { link: LinkSel::Any, prob: 0.2 }],
            ..FaultPlan::default()
        };
        let l = LinkId::HostUp(0);
        let mut lose = 0;
        let mut corrupt = 0;
        for i in 0..10_000 {
            match p.packet_fate(l, i, us(1)) {
                PacketFate::Lose => lose += 1,
                PacketFate::Corrupt => corrupt += 1,
                PacketFate::Deliver => {}
            }
        }
        assert!(lose > 1000 && corrupt > 1000, "lose={lose} corrupt={corrupt}");
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let p = FaultPlan {
            seed: 5,
            jitter: vec![JitterRule { link: LinkSel::HostUp(0), max: dus(3) }],
            ..FaultPlan::default()
        };
        for i in 0..1000u64 {
            let d = p.extra_delay(LinkId::HostUp(0), i);
            assert!(d < dus(3));
        }
        assert_eq!(p.extra_delay(LinkId::HostUp(1), 0), SimDuration::ZERO);
    }

    #[test]
    fn quota_outage_windows() {
        let p = FaultPlan {
            quota_outages: vec![Window { start: us(10), end: us(20) }],
            ..FaultPlan::default()
        };
        assert!(!p.quota_server_down(us(9)));
        assert!(p.quota_server_down(us(10)));
        assert!(p.quota_server_down(us(19)));
        assert!(!p.quota_server_down(us(20)));
    }

    #[test]
    fn link_selector_parsing() {
        assert_eq!(LinkSel::parse("any").unwrap(), LinkSel::Any);
        assert_eq!(LinkSel::parse("host:3").unwrap(), LinkSel::HostUp(3));
        assert_eq!(
            LinkSel::parse("switch:0:2").unwrap(),
            LinkSel::SwitchPort { switch: 0, port: 2 }
        );
        assert!(LinkSel::parse("spine:1").is_err());
        assert!(LinkSel::parse("host:x").is_err());
    }

    proptest! {
        /// The fate of any packet never depends on the query time except
        /// through burst buckets (here: no bursts configured).
        #[test]
        fn prop_fate_time_invariant_without_bursts(
            seed in 0u64..1000, pkt in 0u64..100_000, t1 in 0u64..10_000, t2 in 0u64..10_000
        ) {
            let p = FaultPlan {
                seed,
                loss: vec![LossRule { link: LinkSel::Any, prob: 0.5, burst: None }],
                ..FaultPlan::default()
            };
            let l = LinkId::HostUp(0);
            prop_assert_eq!(p.packet_fate(l, pkt, us(t1)), p.packet_fate(l, pkt, us(t2)));
        }
    }
}
