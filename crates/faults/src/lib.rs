//! Deterministic, seeded fault plans for the Aequitas simulator.
//!
//! A [`FaultPlan`] describes adverse fabric conditions — link down/up flaps,
//! whole-switch and correlated pod-level outages, *gray* degradations (a
//! link silently running at a fraction of its capacity, with jitter ramps
//! that creep up over a window), per-link Bernoulli and burst packet loss,
//! packet corruption, added latency jitter, and quota-server unavailability
//! windows. Every decision the plan
//! makes is a **pure function of `(seed, time, entity)`**: there is no
//! mutable RNG stream, so the verdict for a given packet on a given link at a
//! given time does not depend on event ordering, thread count, or how many
//! other faults fired before it. Two runs with the same seed and plan are
//! byte-identical, and the `simsan` feature cannot perturb them (lint rule
//! AQ001: no ambient randomness).
//!
//! The plan is consumed by `aequitas-netsim` (links honor fault state,
//! `PortStats` counts fault drops/corruptions), by the experiments harness
//! (quota-server outage windows), and is loadable from a TOML subset via
//! [`FaultPlan::from_toml_str`] (see `scripts/chaos_smoke.sh` and the README
//! for the schema).

mod toml;

pub use toml::parse_document;

use aequitas_sim_core::{SimDuration, SimTime};

/// A directed link in the simulated fabric, identified by its transmitting
/// endpoint. Fault rules select links with [`LinkSel`]; the engine queries
/// with concrete `LinkId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// The uplink from host `h`'s NIC into the fabric.
    HostUp(usize),
    /// A switch egress port (toward a host or another switch).
    SwitchPort {
        /// Switch index.
        switch: usize,
        /// Egress port index on that switch.
        port: usize,
    },
}

impl LinkId {
    /// A stable 64-bit key for hashing (pure-function determinism).
    fn entity_key(self) -> u64 {
        match self {
            LinkId::HostUp(h) => 0x4000_0000_0000_0000 | h as u64,
            LinkId::SwitchPort { switch, port } => {
                0x8000_0000_0000_0000 | ((switch as u64) << 20) | port as u64
            }
        }
    }
}

/// Which links a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSel {
    /// Every link in the fabric.
    Any,
    /// One host uplink.
    HostUp(usize),
    /// One switch egress port.
    SwitchPort {
        /// Switch index.
        switch: usize,
        /// Egress port index.
        port: usize,
    },
    /// Every egress port of one switch.
    Switch(usize),
    /// Every egress port of every leaf/aggregation switch in one pod.
    /// Requires [`FaultPlan::pod_layout`] so switch ids resolve to pods.
    Pod(usize),
}

impl LinkSel {
    /// Does this selector cover `link`? Pod selectors need the plan's
    /// [`PodLayout`]; without one they match nothing (validation rejects
    /// plans that pair pod selectors with a missing layout).
    pub fn matches_in(self, link: LinkId, layout: Option<&PodLayout>) -> bool {
        match (self, link) {
            (LinkSel::Any, _) => true,
            (LinkSel::HostUp(a), LinkId::HostUp(b)) => a == b,
            (
                LinkSel::SwitchPort { switch: s, port: p },
                LinkId::SwitchPort { switch, port },
            ) => s == switch && p == port,
            (LinkSel::Switch(s), LinkId::SwitchPort { switch, .. }) => s == switch,
            (LinkSel::Pod(p), LinkId::SwitchPort { switch, .. }) => {
                layout.and_then(|l| l.pod_of_switch(switch)) == Some(p)
            }
            _ => false,
        }
    }

    /// [`LinkSel::matches_in`] without pod-layout context (pod selectors
    /// match nothing).
    pub fn matches(self, link: LinkId) -> bool {
        self.matches_in(link, None)
    }

    /// Parse the TOML form: `"any"`, `"host:<h>"`, `"switch:<s>"` (whole
    /// switch), `"switch:<s>:<p>"` (one port), or `"pod:<p>"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "any" {
            return Ok(LinkSel::Any);
        }
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["host", h] => h
                .parse()
                .map(LinkSel::HostUp)
                .map_err(|_| format!("bad host index in link selector {s:?}")),
            ["switch", sw] => sw
                .parse()
                .map(LinkSel::Switch)
                .map_err(|_| format!("bad switch index in link selector {s:?}")),
            ["pod", p] => p
                .parse()
                .map(LinkSel::Pod)
                .map_err(|_| format!("bad pod index in link selector {s:?}")),
            ["switch", sw, p] => {
                let switch = sw
                    .parse()
                    .map_err(|_| format!("bad switch index in link selector {s:?}"))?;
                let port = p
                    .parse()
                    .map_err(|_| format!("bad port index in link selector {s:?}"))?;
                Ok(LinkSel::SwitchPort { switch, port })
            }
            _ => Err(format!(
                "bad link selector {s:?} (expected \"any\", \"host:<h>\", \"switch:<s>\", \
                 \"switch:<s>:<p>\", or \"pod:<p>\")"
            )),
        }
    }

    /// Does this selector require a [`PodLayout`] to resolve?
    fn needs_pod_layout(self) -> bool {
        matches!(self, LinkSel::Pod(_))
    }
}

/// How switch ids map onto pods. Mirrors `Topology::clos` (and
/// `ShardSpec::clos_pods`): leaves are `0..pods*leaves_per_pod` pod-major,
/// pod spines follow pod-major, core switches come last and belong to no
/// pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodLayout {
    /// Number of pods.
    pub pods: usize,
    /// Leaf (ToR) switches per pod.
    pub leaves_per_pod: usize,
    /// Aggregation (spine) switches per pod.
    pub spines_per_pod: usize,
}

impl PodLayout {
    /// The pod containing switch `switch`, or `None` for core switches
    /// (and any id past the fabric).
    pub fn pod_of_switch(&self, switch: usize) -> Option<usize> {
        let num_leaves = self.pods * self.leaves_per_pod;
        if switch < num_leaves {
            return Some(switch / self.leaves_per_pod.max(1));
        }
        let spine = switch - num_leaves;
        if spine < self.pods * self.spines_per_pod {
            return Some(spine / self.spines_per_pod.max(1));
        }
        None
    }
}

/// A periodic link down/up flap: the link is down during
/// `[first_down + k*period, first_down + k*period + down)` for `k < count`.
#[derive(Debug, Clone, Copy)]
pub struct LinkFlap {
    /// Links this flap applies to.
    pub link: LinkSel,
    /// Start of the first down window.
    pub first_down: SimTime,
    /// Length of each down window.
    pub down: SimDuration,
    /// Distance between successive down-window starts (>= `down`).
    pub period: SimDuration,
    /// Number of down windows.
    pub count: u32,
}

impl LinkFlap {
    /// The down window containing `now`, if any. `period` must be positive
    /// — [`FaultPlan::validated`] rejects zero periods instead of this
    /// method silently clamping them (a clamped 1 ps period would turn a
    /// TOML typo into a permanently-down link).
    fn window_at(&self, now: SimTime) -> Option<(SimTime, SimTime)> {
        if self.count == 0 || now < self.first_down {
            return None;
        }
        let k = now.since(self.first_down).div_duration(self.period);
        if k >= self.count as u64 {
            return None;
        }
        let start = self.first_down + self.period * k;
        let end = start + self.down;
        (now >= start && now < end).then_some((start, end))
    }
}

/// Elevated loss during deterministically-chosen burst windows.
#[derive(Debug, Clone, Copy)]
pub struct BurstLoss {
    /// Time is bucketed into windows of this length.
    pub period: SimDuration,
    /// Fraction of windows (per link) that are bursts, in `[0, 1]`.
    pub frac: f64,
    /// Loss probability inside a burst window.
    pub prob: f64,
}

/// Per-link packet loss: a base Bernoulli probability plus optional bursts.
#[derive(Debug, Clone, Copy)]
pub struct LossRule {
    /// Links this rule applies to.
    pub link: LinkSel,
    /// Baseline per-packet loss probability.
    pub prob: f64,
    /// Optional burst elevation.
    pub burst: Option<BurstLoss>,
}

/// Per-link packet corruption (the frame is destroyed — the receiver's CRC
/// would reject it — but it is counted separately from clean loss).
#[derive(Debug, Clone, Copy)]
pub struct CorruptRule {
    /// Links this rule applies to.
    pub link: LinkSel,
    /// Per-packet corruption probability.
    pub prob: f64,
}

/// Per-link added latency jitter: each packet is delayed by an extra
/// `uniform[0, max)` drawn from the deterministic hash stream.
#[derive(Debug, Clone, Copy)]
pub struct JitterRule {
    /// Links this rule applies to.
    pub link: LinkSel,
    /// Maximum extra propagation delay.
    pub max: SimDuration,
}

/// A half-open time window `[start, end)`.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

impl Window {
    /// Is `now` inside the window?
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end
    }
}

/// A whole-switch outage: every egress port of `switch` is down during the
/// window. Packets already queued behind the dead ports stay buffered (and
/// may tail-drop) — the switch blackholes, it does not drain gracefully.
#[derive(Debug, Clone, Copy)]
pub struct SwitchOutage {
    /// The switch whose egress ports all go dark.
    pub switch: usize,
    /// The outage window.
    pub window: Window,
}

/// A correlated pod-level outage: every egress port of every leaf and
/// aggregation switch in `pod` is down during the window. Requires
/// [`FaultPlan::pod_layout`].
#[derive(Debug, Clone, Copy)]
pub struct PodOutage {
    /// The failing pod.
    pub pod: usize,
    /// The outage window.
    pub window: Window,
}

/// A gray failure: during `window`, matching links serialize at
/// `rate_frac` of their configured capacity, and per-packet jitter ramps
/// linearly from zero at `window.start` up to `jitter_ramp` at
/// `window.end` — creeping degradation rather than a clean step, the
/// failure mode health checks miss.
#[derive(Debug, Clone, Copy)]
pub struct GrayDegrade {
    /// Links this degradation applies to.
    pub link: LinkSel,
    /// When the link is degraded.
    pub window: Window,
    /// Effective capacity as a fraction of the configured rate, in
    /// `(0, 1]` (1.0 = rate untouched, jitter ramp only).
    pub rate_frac: f64,
    /// Peak extra per-packet delay, reached at the end of the window; each
    /// packet draws `uniform[0, ramp(now))` from the hash stream.
    pub jitter_ramp: SimDuration,
}

/// What the fault layer decided for one packet on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Deliver normally.
    Deliver,
    /// The packet is lost in transit.
    Lose,
    /// The packet is corrupted in transit (dropped, counted separately).
    Corrupt,
}

/// A complete, deterministic fault plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the pure-function hash streams.
    pub seed: u64,
    /// Link down/up flaps.
    pub flaps: Vec<LinkFlap>,
    /// Packet loss rules.
    pub loss: Vec<LossRule>,
    /// Packet corruption rules.
    pub corrupt: Vec<CorruptRule>,
    /// Latency jitter rules.
    pub jitter: Vec<JitterRule>,
    /// Quota-server unavailability windows.
    pub quota_outages: Vec<Window>,
    /// Whole-switch outages.
    pub switch_outages: Vec<SwitchOutage>,
    /// Correlated pod-level outages (require [`FaultPlan::pod_layout`]).
    pub pod_outages: Vec<PodOutage>,
    /// Gray degradations: fractional capacity and/or jitter ramps.
    pub gray: Vec<GrayDegrade>,
    /// How switch ids map onto pods; required by pod outages and
    /// `pod:<p>` selectors, ignored otherwise.
    pub pod_layout: Option<PodLayout>,
}

// Domain-separation salts so the loss, corruption, jitter, burst, and gray
// streams are mutually independent even on the same (seed, link, packet).
const SALT_LOSS: u64 = 0x10_55;
const SALT_CORRUPT: u64 = 0xC0_44;
const SALT_JITTER: u64 = 0x71_77;
const SALT_BURST: u64 = 0xB0_57;
const SALT_GRAY: u64 = 0x64_4A;

/// One round of splitmix64 — the same finalizer `SimRng` seeds with, reused
/// here as a stateless hash so fault decisions need no mutable stream.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` as a pure function of the inputs.
fn hash01(seed: u64, salt: u64, rule: usize, entity: u64, x: u64) -> f64 {
    let h = splitmix64(
        splitmix64(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ splitmix64(entity.wrapping_add(rule as u64))
            ^ x,
    );
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// Parse a plan from the fault-plan TOML subset (see the README schema).
    pub fn from_toml_str(text: &str) -> Result<Self, String> {
        toml::plan_from_toml(text)
    }

    /// Load a plan from a TOML file.
    pub fn from_toml_file(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading fault plan {}: {e}", path.display()))?;
        Self::from_toml_str(&text)
    }

    /// Sanity-check probabilities, periods, and window shapes; returns
    /// `self` for chaining. Malformed plans are operator input, so errors
    /// are contextful [`Err`]s naming the offending rule, never panics
    /// (the same no-panic-on-input policy lint rule AQ017 enforces for
    /// replay code).
    pub fn validated(self) -> Result<Self, String> {
        fn prob(v: f64, what: String) -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{what} out of range [0, 1]: {v}"))
            }
        }
        fn window(w: &Window, what: String) -> Result<(), String> {
            if w.start < w.end {
                Ok(())
            } else {
                Err(format!(
                    "{what} window is empty: start {} ps >= end {} ps",
                    w.start.as_ps(),
                    w.end.as_ps()
                ))
            }
        }
        let layout = self.pod_layout;
        if let Some(l) = &layout {
            if l.pods == 0 || l.leaves_per_pod == 0 {
                return Err(format!(
                    "pod layout is degenerate: pods={} leaves_per_pod={}",
                    l.pods, l.leaves_per_pod
                ));
            }
        }
        let need_layout = |sel: LinkSel, what: String| -> Result<(), String> {
            if sel.needs_pod_layout() && layout.is_none() {
                Err(format!(
                    "{what} uses a pod selector but the plan has no pod layout \
                     (set pods / leaves_per_pod / spines_per_pod)"
                ))
            } else {
                Ok(())
            }
        };
        for (i, f) in self.flaps.iter().enumerate() {
            let at = format!("[[link_flap]] #{i} ({:?})", f.link);
            if f.period == SimDuration::ZERO {
                return Err(format!("{at}: period must be positive"));
            }
            if f.down == SimDuration::ZERO {
                return Err(format!("{at}: down window must be positive"));
            }
            if f.down > f.period {
                return Err(format!(
                    "{at}: down window ({} ps) longer than period ({} ps)",
                    f.down.as_ps(),
                    f.period.as_ps()
                ));
            }
            need_layout(f.link, at)?;
        }
        for (i, l) in self.loss.iter().enumerate() {
            let at = format!("[[loss]] #{i} ({:?})", l.link);
            prob(l.prob, format!("{at}: prob"))?;
            if let Some(b) = &l.burst {
                prob(b.frac, format!("{at}: burst frac"))?;
                prob(b.prob, format!("{at}: burst prob"))?;
                if b.period == SimDuration::ZERO {
                    return Err(format!("{at}: burst period must be positive"));
                }
            }
            need_layout(l.link, at)?;
        }
        for (i, c) in self.corrupt.iter().enumerate() {
            let at = format!("[[corrupt]] #{i} ({:?})", c.link);
            prob(c.prob, format!("{at}: prob"))?;
            need_layout(c.link, at)?;
        }
        for (i, j) in self.jitter.iter().enumerate() {
            let at = format!("[[jitter]] #{i} ({:?})", j.link);
            if j.max == SimDuration::ZERO {
                return Err(format!("{at}: max must be positive"));
            }
            need_layout(j.link, at)?;
        }
        for (i, w) in self.quota_outages.iter().enumerate() {
            window(w, format!("[[quota_outage]] #{i}"))?;
        }
        for (i, o) in self.switch_outages.iter().enumerate() {
            window(&o.window, format!("[[switch_outage]] #{i} (switch {})", o.switch))?;
        }
        for (i, o) in self.pod_outages.iter().enumerate() {
            let at = format!("[[pod_outage]] #{i} (pod {})", o.pod);
            window(&o.window, at.clone())?;
            match &layout {
                None => {
                    return Err(format!(
                        "{at}: pod outages need a pod layout \
                         (set pods / leaves_per_pod / spines_per_pod)"
                    ))
                }
                Some(l) if o.pod >= l.pods => {
                    return Err(format!("{at}: pod index >= pods ({})", l.pods))
                }
                Some(_) => {}
            }
        }
        for (i, g) in self.gray.iter().enumerate() {
            let at = format!("[[gray_degrade]] #{i} ({:?})", g.link);
            window(&g.window, at.clone())?;
            if !(g.rate_frac > 0.0 && g.rate_frac <= 1.0) {
                return Err(format!(
                    "{at}: rate_frac must be in (0, 1], got {}",
                    g.rate_frac
                ));
            }
            if !(g.rate_frac < 1.0) && g.jitter_ramp == SimDuration::ZERO {
                return Err(format!(
                    "{at}: rule has no effect (rate_frac 1.0 and no jitter ramp)"
                ));
            }
            need_layout(g.link, at)?;
        }
        Ok(self)
    }

    /// Does the plan contain any per-packet or per-link fabric faults? Lets
    /// the engine skip all fault queries on the hot path when false.
    pub fn affects_fabric(&self) -> bool {
        // Exhaustive destructuring: adding a `FaultPlan` field without
        // deciding whether it belongs in this predicate is a compile error
        // (a forgotten entry would silently disable the fault kind on the
        // hot path).
        let FaultPlan {
            seed: _,
            flaps,
            loss,
            corrupt,
            jitter,
            quota_outages: _, // control-plane only: never queried per-packet
            switch_outages,
            pod_outages,
            gray,
            pod_layout: _, // shape metadata, not a fault source
        } = self;
        !(flaps.is_empty()
            && loss.is_empty()
            && corrupt.is_empty()
            && jitter.is_empty()
            && switch_outages.is_empty()
            && pod_outages.is_empty()
            && gray.is_empty())
    }

    /// The end of the latest down window covering `now` on `link`
    /// (flaps, whole-switch outages, and pod outages all count), or `None`
    /// when the link is up.
    fn down_until(&self, link: LinkId, now: SimTime) -> Option<SimTime> {
        let layout = self.pod_layout.as_ref();
        let mut until: Option<SimTime> = None;
        let mut bump = |end: SimTime| until = Some(until.map_or(end, |u| u.max(end)));
        for f in &self.flaps {
            if f.link.matches_in(link, layout) {
                if let Some((_, end)) = f.window_at(now) {
                    bump(end);
                }
            }
        }
        if let LinkId::SwitchPort { switch, .. } = link {
            for o in &self.switch_outages {
                if o.switch == switch && o.window.contains(now) {
                    bump(o.window.end);
                }
            }
            if !self.pod_outages.is_empty() {
                if let Some(pod) = layout.and_then(|l| l.pod_of_switch(switch)) {
                    for o in &self.pod_outages {
                        if o.pod == pod && o.window.contains(now) {
                            bump(o.window.end);
                        }
                    }
                }
            }
        }
        until
    }

    /// Is `link` down at `now`?
    pub fn link_down(&self, link: LinkId, now: SimTime) -> bool {
        self.down_until(link, now).is_some()
    }

    /// When the down window covering `now` ends (the latest end across all
    /// matching flaps and outages, chased through overlaps so chained
    /// windows coalesce). Returns `now` when the link is not down — callers
    /// re-check after waking.
    pub fn link_up_at(&self, link: LinkId, now: SimTime) -> SimTime {
        let mut up = now;
        // A wake at one window's end may land inside another rule's window.
        while let Some(end) = self.down_until(link, up) {
            debug_assert!(end > up, "down window must extend past its interior");
            up = end;
        }
        up
    }

    /// Effective capacity of `link` at `now` as a fraction of its
    /// configured rate: the minimum `rate_frac` across matching gray rules
    /// whose window covers `now` (1.0 = healthy). The engine stretches
    /// serialization time by the reciprocal.
    pub fn gray_rate_frac(&self, link: LinkId, now: SimTime) -> f64 {
        let layout = self.pod_layout.as_ref();
        let mut frac = 1.0f64;
        for g in &self.gray {
            if g.window.contains(now) && g.link.matches_in(link, layout) {
                frac = frac.min(g.rate_frac);
            }
        }
        frac
    }

    /// Decide the fate of packet `pkt_id` crossing `link` at `now`.
    /// Corruption is evaluated before clean loss so the two counters are
    /// disjoint.
    pub fn packet_fate(&self, link: LinkId, pkt_id: u64, now: SimTime) -> PacketFate {
        let layout = self.pod_layout.as_ref();
        let entity = link.entity_key();
        for (i, c) in self.corrupt.iter().enumerate() {
            if c.link.matches_in(link, layout)
                && c.prob > 0.0
                && hash01(self.seed, SALT_CORRUPT, i, entity, pkt_id) < c.prob
            {
                return PacketFate::Corrupt;
            }
        }
        for (i, l) in self.loss.iter().enumerate() {
            if !l.link.matches_in(link, layout) {
                continue;
            }
            let mut prob = l.prob;
            if let Some(b) = &l.burst {
                // Burst period is validated positive.
                let bucket = now.since(SimTime::ZERO).div_duration(b.period);
                if hash01(self.seed, SALT_BURST, i, entity, bucket) < b.frac {
                    prob = prob.max(b.prob);
                }
            }
            if prob > 0.0 && hash01(self.seed, SALT_LOSS, i, entity, pkt_id) < prob {
                return PacketFate::Lose;
            }
        }
        PacketFate::Deliver
    }

    /// Extra propagation delay for packet `pkt_id` crossing `link` at
    /// `now`: run-long uniform jitter rules plus gray jitter *ramps*, whose
    /// cap grows linearly from zero at the window start to `jitter_ramp` at
    /// the window end. The draw itself stays a pure function of
    /// `(seed, link, pkt_id)`; only the cap depends on time.
    pub fn extra_delay(&self, link: LinkId, pkt_id: u64, now: SimTime) -> SimDuration {
        let layout = self.pod_layout.as_ref();
        let entity = link.entity_key();
        let mut extra = SimDuration::ZERO;
        for (i, j) in self.jitter.iter().enumerate() {
            if j.link.matches_in(link, layout) && j.max > SimDuration::ZERO {
                extra += j.max.mul_f64(hash01(self.seed, SALT_JITTER, i, entity, pkt_id));
            }
        }
        for (i, g) in self.gray.iter().enumerate() {
            if g.jitter_ramp > SimDuration::ZERO
                && g.window.contains(now)
                && g.link.matches_in(link, layout)
            {
                let span = g.window.end.since(g.window.start).as_ps();
                let elapsed = now.since(g.window.start).as_ps();
                // Windows are validated non-empty, so span > 0.
                let cap = g.jitter_ramp.mul_f64(elapsed as f64 / span as f64);
                extra += cap.mul_f64(hash01(self.seed, SALT_GRAY, i, entity, pkt_id));
            }
        }
        extra
    }

    /// Is the quota server unreachable at `now`?
    pub fn quota_server_down(&self, now: SimTime) -> bool {
        self.quota_outages.iter().any(|w| w.contains(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_us(v)
    }

    fn dus(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    fn flap_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            flaps: vec![LinkFlap {
                link: LinkSel::SwitchPort { switch: 0, port: 2 },
                first_down: us(100),
                down: dus(50),
                period: dus(200),
                count: 2,
            }],
            ..FaultPlan::default()
        }
    }

    #[test]
    fn flap_windows_are_periodic_and_bounded() {
        let p = flap_plan();
        let l = LinkId::SwitchPort { switch: 0, port: 2 };
        assert!(!p.link_down(l, us(99)));
        assert!(p.link_down(l, us(100)));
        assert!(p.link_down(l, us(149)));
        assert!(!p.link_down(l, us(150)));
        assert!(p.link_down(l, us(300))); // second window
        assert!(!p.link_down(l, us(500))); // count exhausted
        assert!(!p.link_down(LinkId::HostUp(0), us(120))); // other link
        assert_eq!(p.link_up_at(l, us(120)), us(150));
    }

    #[test]
    fn overlapping_flap_windows_coalesce_for_wakeup() {
        let mut p = flap_plan();
        p.flaps.push(LinkFlap {
            link: LinkSel::Any,
            first_down: us(140),
            down: dus(30),
            period: dus(1000),
            count: 1,
        });
        let l = LinkId::SwitchPort { switch: 0, port: 2 };
        // First flap ends at 150, second covers [140,170): wake must chase
        // through to 170.
        assert_eq!(p.link_up_at(l, us(120)), us(170));
    }

    #[test]
    fn loss_rate_matches_probability() {
        let p = FaultPlan {
            seed: 42,
            loss: vec![LossRule {
                link: LinkSel::Any,
                prob: 0.3,
                burst: None,
            }],
            ..FaultPlan::default()
        };
        let l = LinkId::HostUp(0);
        let lost = (0..20_000)
            .filter(|&i| p.packet_fate(l, i, us(1)) == PacketFate::Lose)
            .count();
        let rate = lost as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn fate_is_pure_function_of_inputs() {
        let p = FaultPlan {
            seed: 3,
            loss: vec![LossRule {
                link: LinkSel::Any,
                prob: 0.5,
                burst: Some(BurstLoss {
                    period: dus(10),
                    frac: 0.5,
                    prob: 0.9,
                }),
            }],
            jitter: vec![JitterRule {
                link: LinkSel::Any,
                max: dus(2),
            }],
            ..FaultPlan::default()
        };
        let l = LinkId::SwitchPort { switch: 1, port: 3 };
        for pkt in 0..100u64 {
            // Same inputs, same answers — regardless of query order.
            assert_eq!(p.packet_fate(l, pkt, us(5)), p.packet_fate(l, pkt, us(5)));
            assert_eq!(p.extra_delay(l, pkt, us(5)), p.extra_delay(l, pkt, us(5)));
        }
        // Different seed decorrelates.
        let p2 = FaultPlan { seed: 4, ..p.clone() };
        let same = (0..1000u64)
            .filter(|&i| p.packet_fate(l, i, us(5)) == p2.packet_fate(l, i, us(5)))
            .count();
        assert!(same < 1000, "seed change must alter some verdicts");
    }

    #[test]
    fn burst_windows_elevate_loss() {
        let p = FaultPlan {
            seed: 9,
            loss: vec![LossRule {
                link: LinkSel::Any,
                prob: 0.0,
                burst: Some(BurstLoss {
                    period: dus(100),
                    frac: 0.5,
                    prob: 1.0,
                }),
            }],
            ..FaultPlan::default()
        };
        let l = LinkId::HostUp(1);
        // Each 100us bucket is either all-loss or no-loss; roughly half the
        // buckets burst.
        let mut burst_buckets = 0;
        for bucket in 0..200u64 {
            let t = SimTime::from_us(bucket * 100 + 50);
            let lost = (0..32).filter(|&i| p.packet_fate(l, bucket * 1000 + i, t) == PacketFate::Lose).count();
            assert!(lost == 0 || lost == 32, "bucket must be uniform, got {lost}/32");
            if lost == 32 {
                burst_buckets += 1;
            }
        }
        assert!((40..=160).contains(&burst_buckets), "{burst_buckets} burst buckets");
    }

    #[test]
    fn corruption_and_loss_are_distinct_fates() {
        let p = FaultPlan {
            seed: 11,
            loss: vec![LossRule { link: LinkSel::Any, prob: 0.2, burst: None }],
            corrupt: vec![CorruptRule { link: LinkSel::Any, prob: 0.2 }],
            ..FaultPlan::default()
        };
        let l = LinkId::HostUp(0);
        let mut lose = 0;
        let mut corrupt = 0;
        for i in 0..10_000 {
            match p.packet_fate(l, i, us(1)) {
                PacketFate::Lose => lose += 1,
                PacketFate::Corrupt => corrupt += 1,
                PacketFate::Deliver => {}
            }
        }
        assert!(lose > 1000 && corrupt > 1000, "lose={lose} corrupt={corrupt}");
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let p = FaultPlan {
            seed: 5,
            jitter: vec![JitterRule { link: LinkSel::HostUp(0), max: dus(3) }],
            ..FaultPlan::default()
        };
        for i in 0..1000u64 {
            let d = p.extra_delay(LinkId::HostUp(0), i, us(1));
            assert!(d < dus(3));
        }
        assert_eq!(p.extra_delay(LinkId::HostUp(1), 0, us(1)), SimDuration::ZERO);
    }

    #[test]
    fn quota_outage_windows() {
        let p = FaultPlan {
            quota_outages: vec![Window { start: us(10), end: us(20) }],
            ..FaultPlan::default()
        };
        assert!(!p.quota_server_down(us(9)));
        assert!(p.quota_server_down(us(10)));
        assert!(p.quota_server_down(us(19)));
        assert!(!p.quota_server_down(us(20)));
    }

    #[test]
    fn link_selector_parsing() {
        assert_eq!(LinkSel::parse("any").unwrap(), LinkSel::Any);
        assert_eq!(LinkSel::parse("host:3").unwrap(), LinkSel::HostUp(3));
        assert_eq!(
            LinkSel::parse("switch:0:2").unwrap(),
            LinkSel::SwitchPort { switch: 0, port: 2 }
        );
        assert_eq!(LinkSel::parse("switch:4").unwrap(), LinkSel::Switch(4));
        assert_eq!(LinkSel::parse("pod:1").unwrap(), LinkSel::Pod(1));
        assert!(LinkSel::parse("spine:1").is_err());
        assert!(LinkSel::parse("host:x").is_err());
        assert!(LinkSel::parse("pod:x").is_err());
        assert!(LinkSel::parse("switch:1:2:3").is_err());
    }

    // -- window-math edge cases ---------------------------------------------

    #[test]
    fn flap_with_down_equal_to_period_is_continuously_down() {
        let p = FaultPlan {
            flaps: vec![LinkFlap {
                link: LinkSel::HostUp(0),
                first_down: us(100),
                down: dus(50),
                period: dus(50),
                count: 3,
            }],
            ..FaultPlan::default()
        }
        .validated()
        .expect("down == period is a legal back-to-back flap");
        let l = LinkId::HostUp(0);
        // Back-to-back windows [100,150) [150,200) [200,250): no gap.
        for t in 100..250 {
            assert!(p.link_down(l, us(t)), "t={t}");
        }
        assert!(!p.link_down(l, us(250)));
        // The wake chases through all three chained windows at once.
        assert_eq!(p.link_up_at(l, us(101)), us(250));
    }

    #[test]
    fn flap_last_window_boundary_and_count_exhaustion() {
        let p = flap_plan(); // first_down 100us, down 50us, period 200us, count 2
        let l = LinkId::SwitchPort { switch: 0, port: 2 };
        // Last (second) window is [300, 350).
        assert!(p.link_down(l, us(349)));
        assert!(!p.link_down(l, us(350)), "last-window end is exclusive");
        // Exactly at the start of what would be window 3: count exhausted.
        assert!(!p.link_down(l, us(500)));
        assert!(!p.link_down(l, us(10_000)));
        // Wake from inside the last window lands exactly at its end.
        assert_eq!(p.link_up_at(l, us(300)), us(350));
        assert_eq!(p.link_up_at(l, us(350)), us(350));
    }

    // -- validation ---------------------------------------------------------

    #[test]
    fn zero_period_flap_is_rejected_not_clamped() {
        let err = FaultPlan {
            flaps: vec![LinkFlap {
                link: LinkSel::HostUp(0),
                first_down: us(1),
                down: SimDuration::ZERO,
                period: SimDuration::ZERO,
                count: 1,
            }],
            ..FaultPlan::default()
        }
        .validated()
        .unwrap_err();
        assert!(err.contains("period must be positive"), "{err}");
        assert!(err.contains("[[link_flap]] #0"), "names the rule: {err}");
    }

    #[test]
    fn validation_errors_name_the_offending_rule() {
        let err = FaultPlan {
            jitter: vec![
                JitterRule { link: LinkSel::Any, max: dus(1) },
                JitterRule { link: LinkSel::HostUp(3), max: SimDuration::ZERO },
            ],
            ..FaultPlan::default()
        }
        .validated()
        .unwrap_err();
        assert!(err.contains("[[jitter]] #1"), "{err}");

        let err = FaultPlan {
            gray: vec![GrayDegrade {
                link: LinkSel::Switch(2),
                window: Window { start: us(10), end: us(20) },
                rate_frac: 1.5,
                jitter_ramp: SimDuration::ZERO,
            }],
            ..FaultPlan::default()
        }
        .validated()
        .unwrap_err();
        assert!(err.contains("rate_frac"), "{err}");

        let err = FaultPlan {
            pod_outages: vec![PodOutage {
                pod: 0,
                window: Window { start: us(10), end: us(20) },
            }],
            ..FaultPlan::default()
        }
        .validated()
        .unwrap_err();
        assert!(err.contains("pod layout"), "{err}");

        let err = FaultPlan {
            switch_outages: vec![SwitchOutage {
                switch: 1,
                window: Window { start: us(20), end: us(20) },
            }],
            ..FaultPlan::default()
        }
        .validated()
        .unwrap_err();
        assert!(err.contains("window is empty"), "{err}");
    }

    // -- new fault kinds ----------------------------------------------------

    #[test]
    fn switch_outage_downs_every_port_of_that_switch_only() {
        let p = FaultPlan {
            switch_outages: vec![SwitchOutage {
                switch: 2,
                window: Window { start: us(100), end: us(200) },
            }],
            ..FaultPlan::default()
        }
        .validated()
        .unwrap();
        for port in 0..8 {
            let l = LinkId::SwitchPort { switch: 2, port };
            assert!(!p.link_down(l, us(99)));
            assert!(p.link_down(l, us(100)));
            assert!(p.link_down(l, us(199)));
            assert!(!p.link_down(l, us(200)));
            assert_eq!(p.link_up_at(l, us(150)), us(200));
        }
        assert!(!p.link_down(LinkId::SwitchPort { switch: 1, port: 0 }, us(150)));
        assert!(!p.link_down(LinkId::HostUp(2), us(150)));
        assert!(p.affects_fabric());
    }

    fn layout222() -> PodLayout {
        PodLayout { pods: 2, leaves_per_pod: 2, spines_per_pod: 2 }
    }

    #[test]
    fn pod_layout_maps_clos_switch_ids() {
        let l = layout222();
        // Leaves 0..4 pod-major, spines 4..8 pod-major, cores 8+ podless.
        assert_eq!(l.pod_of_switch(0), Some(0));
        assert_eq!(l.pod_of_switch(1), Some(0));
        assert_eq!(l.pod_of_switch(2), Some(1));
        assert_eq!(l.pod_of_switch(3), Some(1));
        assert_eq!(l.pod_of_switch(4), Some(0));
        assert_eq!(l.pod_of_switch(5), Some(0));
        assert_eq!(l.pod_of_switch(6), Some(1));
        assert_eq!(l.pod_of_switch(7), Some(1));
        assert_eq!(l.pod_of_switch(8), None);
        assert_eq!(l.pod_of_switch(9), None);
    }

    #[test]
    fn pod_outage_downs_every_switch_in_the_pod() {
        let p = FaultPlan {
            pod_outages: vec![PodOutage {
                pod: 1,
                window: Window { start: us(50), end: us(90) },
            }],
            pod_layout: Some(layout222()),
            ..FaultPlan::default()
        }
        .validated()
        .unwrap();
        for switch in [2usize, 3, 6, 7] {
            assert!(
                p.link_down(LinkId::SwitchPort { switch, port: 0 }, us(60)),
                "switch {switch} is in pod 1"
            );
        }
        for switch in [0usize, 1, 4, 5, 8] {
            assert!(
                !p.link_down(LinkId::SwitchPort { switch, port: 0 }, us(60)),
                "switch {switch} is outside pod 1"
            );
        }
        assert!(!p.link_down(LinkId::SwitchPort { switch: 2, port: 0 }, us(90)));
    }

    #[test]
    fn overlapping_switch_outage_and_flap_coalesce_for_wakeup() {
        let mut p = flap_plan(); // flap on switch 0 port 2: [100,150)
        p.switch_outages.push(SwitchOutage {
            switch: 0,
            window: Window { start: us(140), end: us(180) },
        });
        let p = p.validated().unwrap();
        let l = LinkId::SwitchPort { switch: 0, port: 2 };
        assert_eq!(p.link_up_at(l, us(120)), us(180));
    }

    #[test]
    fn gray_rate_frac_is_windowed_and_takes_the_minimum() {
        let p = FaultPlan {
            gray: vec![
                GrayDegrade {
                    link: LinkSel::Switch(1),
                    window: Window { start: us(100), end: us(300) },
                    rate_frac: 0.5,
                    jitter_ramp: SimDuration::ZERO,
                },
                GrayDegrade {
                    link: LinkSel::SwitchPort { switch: 1, port: 3 },
                    window: Window { start: us(200), end: us(400) },
                    rate_frac: 0.1,
                    jitter_ramp: SimDuration::ZERO,
                },
            ],
            ..FaultPlan::default()
        }
        .validated()
        .unwrap();
        let port3 = LinkId::SwitchPort { switch: 1, port: 3 };
        let port0 = LinkId::SwitchPort { switch: 1, port: 0 };
        assert_eq!(p.gray_rate_frac(port3, us(50)), 1.0);
        assert_eq!(p.gray_rate_frac(port3, us(150)), 0.5);
        assert_eq!(p.gray_rate_frac(port3, us(250)), 0.1, "overlap takes the min");
        assert_eq!(p.gray_rate_frac(port3, us(350)), 0.1);
        assert_eq!(p.gray_rate_frac(port3, us(400)), 1.0);
        assert_eq!(p.gray_rate_frac(port0, us(250)), 0.5);
        assert_eq!(p.gray_rate_frac(LinkId::HostUp(1), us(250)), 1.0);
        // A gray-degraded link is slow, not down.
        assert!(!p.link_down(port3, us(250)));
        assert!(p.affects_fabric());
    }

    #[test]
    fn gray_jitter_ramps_up_over_the_window() {
        let p = FaultPlan {
            seed: 21,
            gray: vec![GrayDegrade {
                link: LinkSel::HostUp(0),
                window: Window { start: us(1000), end: us(2000) },
                rate_frac: 1.0,
                jitter_ramp: dus(10),
            }],
            ..FaultPlan::default()
        }
        .validated()
        .unwrap();
        let l = LinkId::HostUp(0);
        let max_at = |t: u64| {
            (0..2000u64)
                .map(|i| p.extra_delay(l, i, us(t)))
                .max()
                .unwrap()
        };
        assert_eq!(max_at(999), SimDuration::ZERO, "before the window");
        // Early in the window the cap is ~1% of the ramp; near the end ~99%.
        assert!(max_at(1010) <= dus(10).mul_f64(0.011));
        let late = max_at(1990);
        assert!(late > dus(10).mul_f64(0.9), "late cap {late:?}");
        assert!(late < dus(10), "never exceeds the ramp");
        assert_eq!(max_at(2000), SimDuration::ZERO, "after the window");
        // Determinism: same (pkt, t) -> same draw.
        assert_eq!(p.extra_delay(l, 7, us(1500)), p.extra_delay(l, 7, us(1500)));
    }

    #[test]
    fn affects_fabric_is_exhaustive_over_fault_kinds() {
        let w = Window { start: us(1), end: us(2) };
        assert!(!FaultPlan::default().affects_fabric());
        // Quota outages are control-plane only.
        let quota = FaultPlan { quota_outages: vec![w], ..FaultPlan::default() };
        assert!(!quota.affects_fabric());
        // Every fabric-side fault kind flips the predicate on its own.
        let fabric_plans = [
            FaultPlan {
                flaps: vec![LinkFlap {
                    link: LinkSel::Any,
                    first_down: us(1),
                    down: dus(1),
                    period: dus(2),
                    count: 1,
                }],
                ..FaultPlan::default()
            },
            FaultPlan {
                loss: vec![LossRule { link: LinkSel::Any, prob: 0.1, burst: None }],
                ..FaultPlan::default()
            },
            FaultPlan {
                corrupt: vec![CorruptRule { link: LinkSel::Any, prob: 0.1 }],
                ..FaultPlan::default()
            },
            FaultPlan {
                jitter: vec![JitterRule { link: LinkSel::Any, max: dus(1) }],
                ..FaultPlan::default()
            },
            FaultPlan {
                switch_outages: vec![SwitchOutage { switch: 0, window: w }],
                ..FaultPlan::default()
            },
            FaultPlan {
                pod_outages: vec![PodOutage { pod: 0, window: w }],
                pod_layout: Some(layout222()),
                ..FaultPlan::default()
            },
            FaultPlan {
                gray: vec![GrayDegrade {
                    link: LinkSel::Any,
                    window: w,
                    rate_frac: 0.5,
                    jitter_ramp: SimDuration::ZERO,
                }],
                ..FaultPlan::default()
            },
        ];
        for (i, plan) in fabric_plans.into_iter().enumerate() {
            let plan = plan.validated().unwrap_or_else(|e| panic!("plan {i}: {e}"));
            assert!(plan.affects_fabric(), "fabric fault kind {i}");
        }
    }

    proptest! {
        /// The fate of any packet never depends on the query time except
        /// through burst buckets (here: no bursts configured).
        #[test]
        fn prop_fate_time_invariant_without_bursts(
            seed in 0u64..1000, pkt in 0u64..100_000, t1 in 0u64..10_000, t2 in 0u64..10_000
        ) {
            let p = FaultPlan {
                seed,
                loss: vec![LossRule { link: LinkSel::Any, prob: 0.5, burst: None }],
                ..FaultPlan::default()
            };
            let l = LinkId::HostUp(0);
            prop_assert_eq!(p.packet_fate(l, pkt, us(t1)), p.packet_fate(l, pkt, us(t2)));
        }
    }
}
