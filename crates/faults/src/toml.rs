//! A minimal TOML-subset parser for fault plans.
//!
//! The workspace is fully offline (no external crates), so fault plans are
//! written in a restricted TOML dialect this module parses directly:
//!
//! * top-level `key = value` pairs,
//! * `[[table]]` array-of-tables headers,
//! * values: quoted strings, integers, floats, booleans,
//! * `#` comments and blank lines.
//!
//! Unknown keys and tables are **errors**, not warnings — a typo in a chaos
//! plan silently disabling a fault would invalidate an experiment.

use crate::{
    BurstLoss, CorruptRule, FaultPlan, GrayDegrade, JitterRule, LinkFlap, LinkSel, LossRule,
    PodLayout, PodOutage, SwitchOutage, Window,
};
use aequitas_sim_core::{SimDuration, SimTime};

/// One parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A boolean literal.
    Bool(bool),
}

impl Value {
    fn as_u64(&self, key: &str) -> Result<u64, String> {
        match self {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            _ => Err(format!("key {key:?}: expected a non-negative integer, got {self:?}")),
        }
    }

    fn as_f64(&self, key: &str) -> Result<f64, String> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(format!("key {key:?}: expected a number, got {self:?}")),
        }
    }

    fn as_str(&self, key: &str) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(format!("key {key:?}: expected a string, got {self:?}")),
        }
    }
}

/// A flat table: the keys set in one `[[section]]` body (or at the root).
pub type Table = Vec<(String, Value)>;

/// A parsed document: root-level keys plus `[[name]]` tables in order.
#[derive(Debug, Default)]
pub struct Document {
    /// Keys set before the first `[[table]]` header.
    pub root: Table,
    /// Array-of-tables sections in file order.
    pub tables: Vec<(String, Table)>,
}

fn parse_value(raw: &str, line_no: usize) -> Result<Value, String> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| format!("line {line_no}: unterminated string"))?;
        if inner.contains('"') || inner.contains('\\') {
            return Err(format!("line {line_no}: escapes are not supported in strings"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(format!("line {line_no}: cannot parse value {raw:?}"))
}

/// Parse the restricted TOML dialect into a [`Document`].
pub fn parse_document(text: &str) -> Result<Document, String> {
    let mut doc = Document::default();
    // Index into doc.tables of the section currently being filled.
    let mut current: Option<usize> = None;
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        // Strip comments. Strings may not contain '#', so this split is safe
        // in this dialect.
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let name = header
                .strip_suffix("]]")
                .ok_or_else(|| format!("line {line_no}: malformed table header"))?
                .trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!("line {line_no}: bad table name {name:?}"));
            }
            doc.tables.push((name.to_string(), Table::new()));
            current = Some(doc.tables.len() - 1);
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {line_no}: plain [table] sections are not supported; use [[table]]"
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: expected key = value"))?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {line_no}: bad key {key:?}"));
        }
        let value = parse_value(value, line_no)?;
        let table = match current {
            Some(idx) => &mut doc.tables[idx].1,
            None => &mut doc.root,
        };
        table.push((key.to_string(), value));
    }
    Ok(doc)
}

/// Look up a key in a table, enforcing single assignment.
fn get<'a>(table: &'a Table, key: &str) -> Result<Option<&'a Value>, String> {
    let mut found = None;
    for (k, v) in table {
        if k == key {
            if found.is_some() {
                return Err(format!("key {key:?} set more than once"));
            }
            found = Some(v);
        }
    }
    Ok(found)
}

fn require<'a>(table: &'a Table, section: &str, key: &str) -> Result<&'a Value, String> {
    get(table, key)?.ok_or_else(|| format!("[[{section}]]: missing required key {key:?}"))
}

fn reject_unknown(table: &Table, section: &str, known: &[&str]) -> Result<(), String> {
    for (k, _) in table {
        if !known.contains(&k.as_str()) {
            return Err(format!("[[{section}]]: unknown key {k:?} (known: {known:?})"));
        }
    }
    Ok(())
}

fn link_of(table: &Table, section: &str) -> Result<LinkSel, String> {
    LinkSel::parse(require(table, section, "link")?.as_str("link")?)
}

fn us_duration(table: &Table, section: &str, key: &str) -> Result<SimDuration, String> {
    Ok(SimDuration::from_us_f64(require(table, section, key)?.as_f64(key)?))
}

fn window_of(table: &Table, section: &str) -> Result<Window, String> {
    Ok(Window {
        start: SimTime::ZERO + us_duration(table, section, "start_us")?,
        end: SimTime::ZERO + us_duration(table, section, "end_us")?,
    })
}

/// Build a [`FaultPlan`] from fault-plan TOML. Schema (all times relative to
/// sim start):
///
/// ```toml
/// seed = 42                      # optional, default 0
/// pods = 2                       # optional pod layout for "pod:<p>" selectors
/// leaves_per_pod = 2             # and [[pod_outage]]; all three keys together,
/// spines_per_pod = 2             # mirroring Topology::clos switch-id order
///
/// [[link_flap]]
/// link = "switch:0:2"            # "any" | "host:<h>" | "switch:<s>" |
///                                # "switch:<s>:<p>" | "pod:<p>"
/// first_down_us = 1000.0
/// down_us = 200.0
/// period_us = 1000.0
/// count = 3
///
/// [[loss]]
/// link = "any"
/// prob = 0.01
/// burst_period_us = 100.0        # optional; all three burst keys together
/// burst_frac = 0.1
/// burst_prob = 0.5
///
/// [[corrupt]]
/// link = "host:0"
/// prob = 0.001
///
/// [[jitter]]
/// link = "any"
/// max_ns = 500.0
///
/// [[quota_outage]]
/// start_us = 5000.0
/// end_us = 9000.0
///
/// [[switch_outage]]              # every port of the switch blackholes
/// switch = 3
/// start_us = 4000.0
/// end_us = 8000.0
///
/// [[pod_outage]]                 # every leaf/spine of the pod blackholes;
/// pod = 1                        # requires the pod layout root keys
/// start_us = 4000.0
/// end_us = 8000.0
///
/// [[gray_degrade]]               # link runs slow, not down
/// link = "switch:1:3"
/// start_us = 4000.0
/// end_us = 8000.0
/// rate_frac = 0.25               # optional, default 1.0 (no rate change)
/// jitter_ramp_ns = 500.0         # optional, default 0: per-packet jitter cap
///                                # grows linearly from 0 to this over the window
/// ```
pub fn plan_from_toml(text: &str) -> Result<FaultPlan, String> {
    let doc = parse_document(text)?;
    reject_unknown(
        &doc.root,
        "root",
        &["seed", "pods", "leaves_per_pod", "spines_per_pod"],
    )?;
    let pod_layout = {
        let pods = get(&doc.root, "pods")?;
        let leaves = get(&doc.root, "leaves_per_pod")?;
        let spines = get(&doc.root, "spines_per_pod")?;
        match (pods, leaves, spines) {
            (None, None, None) => None,
            (Some(p), Some(l), Some(s)) => Some(PodLayout {
                pods: p.as_u64("pods")? as usize,
                leaves_per_pod: l.as_u64("leaves_per_pod")? as usize,
                spines_per_pod: s.as_u64("spines_per_pod")? as usize,
            }),
            _ => {
                return Err(
                    "pod layout requires all of pods, leaves_per_pod, spines_per_pod".to_string(),
                )
            }
        }
    };
    let mut plan = FaultPlan {
        seed: match get(&doc.root, "seed")? {
            Some(v) => v.as_u64("seed")?,
            None => 0,
        },
        pod_layout,
        ..FaultPlan::default()
    };
    for (name, table) in &doc.tables {
        match name.as_str() {
            "link_flap" => {
                reject_unknown(
                    table,
                    name,
                    &["link", "first_down_us", "down_us", "period_us", "count"],
                )?;
                plan.flaps.push(LinkFlap {
                    link: link_of(table, name)?,
                    first_down: SimTime::ZERO + us_duration(table, name, "first_down_us")?,
                    down: us_duration(table, name, "down_us")?,
                    period: us_duration(table, name, "period_us")?,
                    count: require(table, name, "count")?.as_u64("count")? as u32,
                });
            }
            "loss" => {
                reject_unknown(
                    table,
                    name,
                    &["link", "prob", "burst_period_us", "burst_frac", "burst_prob"],
                )?;
                let burst = match get(table, "burst_period_us")? {
                    Some(p) => Some(BurstLoss {
                        period: SimDuration::from_us_f64(p.as_f64("burst_period_us")?),
                        frac: require(table, name, "burst_frac")?.as_f64("burst_frac")?,
                        prob: require(table, name, "burst_prob")?.as_f64("burst_prob")?,
                    }),
                    None => {
                        if get(table, "burst_frac")?.is_some()
                            || get(table, "burst_prob")?.is_some()
                        {
                            return Err(
                                "[[loss]]: burst_frac/burst_prob require burst_period_us"
                                    .to_string(),
                            );
                        }
                        None
                    }
                };
                plan.loss.push(LossRule {
                    link: link_of(table, name)?,
                    prob: require(table, name, "prob")?.as_f64("prob")?,
                    burst,
                });
            }
            "corrupt" => {
                reject_unknown(table, name, &["link", "prob"])?;
                plan.corrupt.push(CorruptRule {
                    link: link_of(table, name)?,
                    prob: require(table, name, "prob")?.as_f64("prob")?,
                });
            }
            "jitter" => {
                reject_unknown(table, name, &["link", "max_ns"])?;
                let max_ns = require(table, name, "max_ns")?.as_f64("max_ns")?;
                plan.jitter.push(JitterRule {
                    link: link_of(table, name)?,
                    max: SimDuration::from_ps((max_ns * 1000.0) as u64),
                });
            }
            "quota_outage" => {
                reject_unknown(table, name, &["start_us", "end_us"])?;
                plan.quota_outages.push(window_of(table, name)?);
            }
            "switch_outage" => {
                reject_unknown(table, name, &["switch", "start_us", "end_us"])?;
                plan.switch_outages.push(SwitchOutage {
                    switch: require(table, name, "switch")?.as_u64("switch")? as usize,
                    window: window_of(table, name)?,
                });
            }
            "pod_outage" => {
                reject_unknown(table, name, &["pod", "start_us", "end_us"])?;
                plan.pod_outages.push(PodOutage {
                    pod: require(table, name, "pod")?.as_u64("pod")? as usize,
                    window: window_of(table, name)?,
                });
            }
            "gray_degrade" => {
                reject_unknown(
                    table,
                    name,
                    &["link", "start_us", "end_us", "rate_frac", "jitter_ramp_ns"],
                )?;
                plan.gray.push(GrayDegrade {
                    link: link_of(table, name)?,
                    window: window_of(table, name)?,
                    rate_frac: match get(table, "rate_frac")? {
                        Some(v) => v.as_f64("rate_frac")?,
                        None => 1.0,
                    },
                    jitter_ramp: match get(table, "jitter_ramp_ns")? {
                        Some(v) => {
                            SimDuration::from_ps((v.as_f64("jitter_ramp_ns")? * 1000.0) as u64)
                        }
                        None => SimDuration::ZERO,
                    },
                });
            }
            other => {
                return Err(format!(
                    "unknown table [[{other}]] (known: link_flap, loss, corrupt, jitter, \
                     quota_outage, switch_outage, pod_outage, gray_degrade)"
                ))
            }
        }
    }
    plan.validated()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketFate;

    const FULL_PLAN: &str = r#"
# Chaos plan exercising every rule type.
seed = 42

[[link_flap]]
link = "switch:0:2"
first_down_us = 1000.0
down_us = 200.0
period_us = 1000.0
count = 3

[[loss]]
link = "any"
prob = 0.01
burst_period_us = 100.0
burst_frac = 0.1
burst_prob = 0.5

[[corrupt]]
link = "host:0"
prob = 0.001

[[jitter]]
link = "any"
max_ns = 500.0

[[quota_outage]]
start_us = 5000.0
end_us = 9000.0
"#;

    #[test]
    fn full_plan_round_trips() {
        let plan = plan_from_toml(FULL_PLAN).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.flaps.len(), 1);
        assert_eq!(plan.loss.len(), 1);
        assert!(plan.loss[0].burst.is_some());
        assert_eq!(plan.corrupt.len(), 1);
        assert_eq!(plan.jitter.len(), 1);
        assert_eq!(plan.quota_outages.len(), 1);
        assert!(plan.affects_fabric());
        assert!(plan.quota_server_down(SimTime::from_us(6000)));
        assert!(plan.link_down(
            crate::LinkId::SwitchPort { switch: 0, port: 2 },
            SimTime::from_us(1100)
        ));
    }

    #[test]
    fn empty_plan_is_valid_and_inert() {
        let plan = plan_from_toml("").unwrap();
        assert!(!plan.affects_fabric());
        assert_eq!(
            plan.packet_fate(crate::LinkId::HostUp(0), 1, SimTime::ZERO),
            PacketFate::Deliver
        );
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = plan_from_toml("[[loss]]\nlink = \"any\"\nprobability = 0.5\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn unknown_table_is_an_error() {
        let err = plan_from_toml("[[packet_loss]]\nprob = 0.5\n").unwrap_err();
        assert!(err.contains("unknown table"), "{err}");
    }

    #[test]
    fn missing_required_key_is_an_error() {
        let err = plan_from_toml("[[loss]]\nprob = 0.5\n").unwrap_err();
        assert!(err.contains("missing required key"), "{err}");
    }

    #[test]
    fn burst_keys_require_period() {
        let err =
            plan_from_toml("[[loss]]\nlink = \"any\"\nprob = 0.1\nburst_frac = 0.5\n").unwrap_err();
        assert!(err.contains("burst_period_us"), "{err}");
    }

    #[test]
    fn duplicate_key_is_an_error() {
        let err = plan_from_toml("seed = 1\nseed = 2\n").unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let plan = plan_from_toml("# hi\n\nseed = 9 # trailing\n").unwrap();
        assert_eq!(plan.seed, 9);
    }

    #[test]
    fn plain_table_header_rejected() {
        let err = plan_from_toml("[loss]\nprob = 0.5\n").unwrap_err();
        assert!(err.contains("[[table]]"), "{err}");
    }

    const CHAOS_PLAN: &str = r#"
seed = 7
pods = 2
leaves_per_pod = 2
spines_per_pod = 2

[[switch_outage]]
switch = 3
start_us = 4000.0
end_us = 8000.0

[[pod_outage]]
pod = 1
start_us = 5000.0
end_us = 6000.0

[[gray_degrade]]
link = "switch:1:3"
start_us = 4000.0
end_us = 8000.0
rate_frac = 0.25
jitter_ramp_ns = 500.0
"#;

    #[test]
    fn chaos_plan_round_trips() {
        let plan = plan_from_toml(CHAOS_PLAN).unwrap();
        assert_eq!(plan.switch_outages.len(), 1);
        assert_eq!(plan.pod_outages.len(), 1);
        assert_eq!(plan.gray.len(), 1);
        assert_eq!(plan.gray[0].rate_frac, 0.25);
        assert_eq!(plan.gray[0].jitter_ramp, SimDuration::from_ps(500_000));
        assert_eq!(
            plan.pod_layout,
            Some(PodLayout { pods: 2, leaves_per_pod: 2, spines_per_pod: 2 })
        );
        // Switch 3 (a leaf of pod 1) is down during its own window and the
        // pod outage alike; switch 0 (pod 0) is untouched.
        let port = |switch| crate::LinkId::SwitchPort { switch, port: 0 };
        assert!(plan.link_down(port(3), SimTime::from_us(4500)));
        assert!(plan.link_down(port(2), SimTime::from_us(5500)));
        assert!(!plan.link_down(port(2), SimTime::from_us(4500)));
        assert!(!plan.link_down(port(0), SimTime::from_us(5500)));
        assert_eq!(
            plan.gray_rate_frac(
                crate::LinkId::SwitchPort { switch: 1, port: 3 },
                SimTime::from_us(5000)
            ),
            0.25
        );
    }

    #[test]
    fn partial_pod_layout_is_an_error() {
        let err = plan_from_toml("pods = 2\n").unwrap_err();
        assert!(err.contains("pod layout requires"), "{err}");
    }

    #[test]
    fn pod_outage_without_layout_is_an_error() {
        let err =
            plan_from_toml("[[pod_outage]]\npod = 0\nstart_us = 1.0\nend_us = 2.0\n").unwrap_err();
        assert!(err.contains("pod layout"), "{err}");
    }

    #[test]
    fn validation_failures_surface_from_toml() {
        // A zero flap period used to be silently clamped; now it is a parse
        // error naming the rule.
        let err = plan_from_toml(
            "[[link_flap]]\nlink = \"any\"\nfirst_down_us = 1.0\ndown_us = 0.0\n\
             period_us = 0.0\ncount = 1\n",
        )
        .unwrap_err();
        assert!(err.contains("period must be positive"), "{err}");

        let err = plan_from_toml(
            "[[gray_degrade]]\nlink = \"any\"\nstart_us = 1.0\nend_us = 2.0\nrate_frac = 0.0\n",
        )
        .unwrap_err();
        assert!(err.contains("rate_frac"), "{err}");

        let err = plan_from_toml("[[jitter]]\nlink = \"any\"\nmax_ns = 0.0\n").unwrap_err();
        assert!(err.contains("max"), "{err}");
    }
}
