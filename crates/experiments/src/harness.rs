//! Shared experiment plumbing: building engines of [`WorkloadHost`]s,
//! running them with periodic sampling, and collecting results.

use aequitas::AequitasConfig;
use aequitas_netsim::{Engine, EngineConfig, HostId, LinkSpec, ShardSpec, ShardedEngine, Topology};
use aequitas_rpc::{Policy, RpcCompletion, RpcStack, WorkloadHost, WorkloadSpec};
use aequitas_sim_core::{BitRate, SimDuration, SimTime};
use aequitas_netsim::SchedulerKind;
use aequitas_rpc::ArrivalProcess;
use aequitas_telemetry::{Telemetry, TraceEvent};
use aequitas_transport::TransportConfig;
use aequitas_workloads::QosMapping;

/// Experiment scale: quick (CI) or full (paper-scale).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Whether to use paper-scale durations/node counts.
    pub full: bool,
}

impl Scale {
    /// Quick mode.
    pub fn quick() -> Self {
        Scale { full: false }
    }
    /// Full (paper-scale) mode.
    pub fn full() -> Self {
        Scale { full: true }
    }
    /// From the `AEQUITAS_FULL` environment variable.
    pub fn detect() -> Self {
        Scale {
            full: std::env::var("AEQUITAS_FULL").is_ok_and(|v| v != "0"),
        }
    }
    /// Pick between a quick and a full value.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        if self.full {
            full
        } else {
            quick
        }
    }
}

/// Which admission policy each host runs.
#[derive(Clone)]
pub enum PolicyChoice {
    /// Static bijective mapping only ("w/o Aequitas").
    Static,
    /// Aequitas Phase 2 with this config.
    Aequitas(AequitasConfig),
    /// Ablation: Algorithm 1 decisions but excess RPCs are dropped instead
    /// of downgraded.
    DropExcess(AequitasConfig),
}

/// Full description of a macro experiment run.
pub struct MacroSetup {
    /// Experiment name stamped into the trace's `run_info` event so replay
    /// reports and cross-run comparisons can identify what produced a trace.
    pub name: &'static str,
    /// The network.
    pub topo: Topology,
    /// Fabric configuration.
    pub engine: EngineConfig,
    /// Transport (CC) configuration.
    pub transport: TransportConfig,
    /// Priority→QoS mapping.
    pub mapping: QosMapping,
    /// Admission policy (same choice on every host; per-host seeds differ).
    pub policy: PolicyChoice,
    /// Per-host workload (`None` = receiver only).
    pub workloads: Vec<Option<WorkloadSpec>>,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Completions issued before this offset are excluded from statistics
    /// (convergence warm-up).
    pub warmup: SimDuration,
    /// Base RNG seed.
    pub seed: u64,
    /// Per-host policy overrides (taken at build; wins over `policy`).
    /// Leave empty for a uniform policy.
    pub policy_overrides: Vec<Option<Policy>>,
    /// Telemetry handle wired through the engine, every stack, transport,
    /// and controller. A disabled handle (the default) falls back to the
    /// process-global handle installed by the CLI's `--trace`/`--metrics`
    /// flags (see [`aequitas_telemetry::install_global`]).
    pub telemetry: Telemetry,
}

impl MacroSetup {
    /// A 100 Gbps star topology setup with 3-QoS WFQ 8:4:1 defaults.
    pub fn star_3qos(n: usize) -> MacroSetup {
        MacroSetup {
            name: "macro",
            topo: Topology::star(n, LinkSpec::default_100g()),
            engine: EngineConfig::default_3qos(),
            transport: TransportConfig::default(),
            mapping: QosMapping::three_level(),
            policy: PolicyChoice::Static,
            workloads: (0..n).map(|_| None).collect(),
            duration: SimDuration::from_ms(10),
            warmup: SimDuration::from_ms(2),
            seed: 2022,
            policy_overrides: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// The line rate of host NICs in this setup (assumed uniform).
    pub fn line_rate(&self) -> BitRate {
        self.topo.host_ports[0].link.rate
    }

    /// Build one [`WorkloadHost`] per host, in host-id order. Seeds and
    /// policy construction depend only on `(seed, h)` — a sharded run
    /// calling this once gets byte-identical agents to an unsharded one.
    fn build_agents(&mut self, telemetry: &Telemetry) -> Vec<WorkloadHost> {
        let n = self.topo.num_hosts();
        assert_eq!(self.workloads.len(), n);
        let line_rate = self.line_rate();
        let mut overrides = std::mem::take(&mut self.policy_overrides);
        overrides.resize_with(n, || None);
        std::mem::take(&mut self.workloads)
            .into_iter()
            .enumerate()
            .map(|(h, spec)| {
                let policy = match overrides[h].take() {
                    Some(p) => p,
                    None => match &self.policy {
                        PolicyChoice::Static => Policy::Static,
                        PolicyChoice::Aequitas(cfg) => {
                            Policy::aequitas(cfg.clone(), self.seed ^ (0xACE0 + h as u64))
                        }
                        PolicyChoice::DropExcess(cfg) => Policy::AequitasDropExcess(
                            aequitas::AdmissionController::new(
                                cfg.clone(),
                                self.seed ^ (0xD409 + h as u64),
                            ),
                        ),
                    },
                };
                let mut stack = RpcStack::new(
                    HostId(h),
                    self.mapping.clone(),
                    policy,
                    self.transport.clone(),
                );
                if telemetry.is_enabled() {
                    stack.set_telemetry(telemetry.clone());
                }
                WorkloadHost::new(stack, spec, n, line_rate, self.seed ^ (h as u64) << 8)
            })
            .collect()
    }

    /// Describe this setup as a [`TraceEvent::RunInfo`] so a trace is
    /// self-contained for offline audit (`aequitas-replay`). Aggregate
    /// `mu`/`rho`/`period_ps` describe the *sum* of sender loads at the
    /// shared bottleneck: burst-on-off loads add up; smooth (Poisson /
    /// Uniform) loads contribute `load` to both and leave the period at 0
    /// unless every sender bursts with one common period. Zero means
    /// "unknown" — the replay auditor skips the delay-bound checks rather
    /// than guessing.
    fn run_info_event(&self) -> TraceEvent {
        let weights = match &self.engine.switch_scheduler {
            SchedulerKind::Wfq(w) => w.clone(),
            SchedulerKind::Dwrr { weights, .. } => weights.clone(),
            _ => Vec::new(),
        };
        let (slos_per_mtu_ps, slo_percentile) = match &self.policy {
            PolicyChoice::Aequitas(cfg) | PolicyChoice::DropExcess(cfg) => (
                cfg.slos
                    .iter()
                    .map(|s| s.as_ref().map_or(0, |t| t.latency_target_per_mtu.as_ps()))
                    .collect(),
                cfg.slos
                    .iter()
                    .flatten()
                    .map(|t| t.target_percentile)
                    .next()
                    .unwrap_or(0.0),
            ),
            PolicyChoice::Static => (Vec::new(), 0.0),
        };
        let mut senders = 0u32;
        let mut mu = 0.0;
        let mut rho = 0.0;
        let mut period_ps = 0u64;
        let mut all_burst_same_period = true;
        for spec in self.workloads.iter().flatten() {
            senders += 1;
            match spec.arrival {
                ArrivalProcess::BurstOnOff {
                    mu: m,
                    rho: r,
                    period,
                } => {
                    mu += m;
                    rho += r;
                    if period_ps == 0 || period_ps == period.as_ps() {
                        period_ps = period.as_ps();
                    } else {
                        all_burst_same_period = false;
                    }
                }
                ArrivalProcess::Poisson { load } | ArrivalProcess::Uniform { load } => {
                    mu += load;
                    rho += load;
                    all_burst_same_period = false;
                }
            }
        }
        if !all_burst_same_period {
            period_ps = 0;
        }
        TraceEvent::RunInfo {
            experiment: self.name.to_string(),
            hosts: self.topo.num_hosts() as u32,
            classes: self.engine.classes as u32,
            weights,
            slos_per_mtu_ps,
            slo_percentile,
            warmup_ps: self.warmup.as_ps(),
            duration_ps: self.duration.as_ps(),
            senders,
            mu,
            rho,
            period_ps,
        }
    }

    fn build(mut self) -> (Engine<WorkloadHost>, SimDuration, SimDuration) {
        // A CLI-installed fault plan (--faults) applies to every run that
        // does not carry a scenario-specific plan of its own.
        if self.engine.faults.is_none() {
            self.engine.faults = crate::chaos::global_fault_plan();
        }
        let telemetry = if self.telemetry.is_enabled() {
            self.telemetry.clone()
        } else {
            aequitas_telemetry::global()
        };
        if telemetry.is_enabled() {
            telemetry.emit(SimTime::ZERO, self.run_info_event());
        }
        let agents = self.build_agents(&telemetry);
        let mut engine = Engine::new(self.topo, agents, self.engine);
        if telemetry.is_enabled() {
            engine.set_telemetry(telemetry);
        }
        (engine, self.duration, self.warmup)
    }
}

/// Build the engine for `setup` without running it (the bench harness uses
/// this to measure raw events/sec without harvest overhead).
pub fn build_engine(setup: MacroSetup) -> Engine<aequitas_rpc::WorkloadHost> {
    setup.build().0
}

/// Results of a macro run.
pub struct MacroResult {
    /// Completions from all hosts with `issued_at >= warmup`.
    pub completions: Vec<RpcCompletion>,
    /// Completions during warm-up (kept separate for convergence plots).
    pub warmup_completions: Vec<RpcCompletion>,
    /// Total RPCs issued across hosts (including warm-up).
    pub issued: u64,
    /// Simulated duration after warm-up (for throughput math).
    pub measure_secs: f64,
    /// Events processed (engine work metric).
    pub events: u64,
}

/// Run a macro experiment without sampling.
pub fn run_macro(setup: MacroSetup) -> MacroResult {
    run_macro_sampled(setup, SimDuration::MAX, |_, _| {})
}

/// One telemetry sampling tick: refresh engine and per-stack gauges, then
/// snapshot the registry at `now`.
fn sample_telemetry(engine: &Engine<WorkloadHost>, tel: &Telemetry, now: SimTime) {
    engine.sample_metrics();
    for host in engine.agents() {
        host.stack().sample_metrics();
    }
    tel.sample(now);
}

/// Run a macro experiment, invoking `sample(&engine, now)` every
/// `sample_every` of simulated time (pass `SimDuration::MAX` to disable).
pub fn run_macro_sampled<F>(
    setup: MacroSetup,
    sample_every: SimDuration,
    mut sample: F,
) -> MacroResult
where
    F: FnMut(&Engine<WorkloadHost>, SimTime),
{
    run_macro_controlled(setup, sample_every, |eng, now| sample(eng, now))
}

/// Like [`run_macro_sampled`] but with *mutable* engine access — used by
/// control-plane extensions (the quota server pulls usage reports and
/// pushes grants into the hosts between slices).
pub fn run_macro_controlled<F>(
    setup: MacroSetup,
    sample_every: SimDuration,
    mut sample: F,
) -> MacroResult
where
    F: FnMut(&mut Engine<WorkloadHost>, SimTime),
{
    let warmup = setup.warmup;
    let (mut engine, duration, _) = setup.build();
    let end = SimTime::ZERO + duration;
    let mut next_sample = if sample_every == SimDuration::MAX {
        SimTime::MAX
    } else {
        SimTime::ZERO + sample_every
    };
    // Telemetry metrics sampling runs on its own simulated-time cadence,
    // interleaved with the caller's sampling breakpoints.
    let tel = engine.telemetry().clone();
    let tel_every = tel.sample_every().unwrap_or(SimDuration::MAX);
    let mut next_tel = if tel_every == SimDuration::MAX {
        SimTime::MAX
    } else {
        SimTime::ZERO + tel_every
    };
    loop {
        let until = end.min(next_sample).min(next_tel);
        engine.run_until(until);
        if until >= end {
            break;
        }
        if until >= next_tel {
            sample_telemetry(&engine, &tel, until);
            next_tel += tel_every;
        }
        if until >= next_sample {
            sample(&mut engine, until);
            next_sample += sample_every;
        }
    }
    if tel.is_enabled() {
        // Final snapshot at the end of the run, then push buffered trace
        // lines to the backing store.
        sample_telemetry(&engine, &tel, end);
        tel.flush();
        // Opt-in self-audit (--audit / AEQUITAS_AUDIT=1): replay the trace
        // we just wrote and check it against the paper's bounds.
        crate::audit::maybe_self_audit(&tel);
    }

    let warmup_t = SimTime::ZERO + warmup;
    let mut completions = Vec::new();
    let mut warmup_completions = Vec::new();
    let mut issued = 0;
    for host in engine.agents_mut() {
        issued += host.issued();
        for c in host.take_completions() {
            if c.issued_at >= warmup_t {
                completions.push(c);
            } else {
                warmup_completions.push(c);
            }
        }
    }
    completions.sort_by_key(|c| c.completed_at);
    MacroResult {
        completions,
        warmup_completions,
        issued,
        measure_secs: (duration.saturating_sub(warmup)).as_secs_f64(),
        events: engine.events_processed(),
    }
}

/// Build (without running) the sharded engine for `setup` — the bench
/// harness advances it in slices to price per-window synchronization.
/// Telemetry is not wired (see [`run_macro_sharded`]).
pub fn build_sharded_engine(
    mut setup: MacroSetup,
    spec: ShardSpec,
    threads: usize,
) -> ShardedEngine<WorkloadHost> {
    if setup.engine.faults.is_none() {
        setup.engine.faults = crate::chaos::global_fault_plan();
    }
    let agents = setup.build_agents(&Telemetry::disabled());
    ShardedEngine::new(setup.topo, agents, setup.engine, spec, threads)
}

/// Run a macro experiment on the sharded parallel engine: the fabric is
/// partitioned per `spec` and advanced on `threads` workers in conservative
/// lookahead windows (see `aequitas_netsim::shard`). Results are
/// byte-identical for every `threads` value.
///
/// Differences from [`run_macro`]: no mid-run sampling hook (domains only
/// synchronize at horizons) and telemetry is not wired through — a handle
/// shared by concurrently-running domains would interleave trace lines
/// nondeterministically. Fleet-scale runs are measured through completions
/// and port stats instead.
pub fn run_macro_sharded(setup: MacroSetup, spec: ShardSpec, threads: usize) -> MacroResult {
    let duration = setup.duration;
    let warmup = setup.warmup;
    let mut engine = build_sharded_engine(setup, spec, threads);
    let n = engine.spec().domain_of_host.len();
    engine.run_until(SimTime::ZERO + duration);

    let warmup_t = SimTime::ZERO + warmup;
    let mut completions = Vec::new();
    let mut warmup_completions = Vec::new();
    let mut issued = 0;
    // Harvest in host-id order (crossing domains as needed) so the result
    // layout is independent of the partition.
    for h in 0..n {
        let host = engine.agent_mut(HostId(h));
        issued += host.issued();
        for c in host.take_completions() {
            if c.issued_at >= warmup_t {
                completions.push(c);
            } else {
                warmup_completions.push(c);
            }
        }
    }
    completions.sort_by_key(|c| c.completed_at);
    MacroResult {
        completions,
        warmup_completions,
        issued,
        measure_secs: (duration.saturating_sub(warmup)).as_secs_f64(),
        events: engine.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern};
    use aequitas_workloads::SizeDist;

    fn small_setup(policy: PolicyChoice) -> MacroSetup {
        let mut s = MacroSetup::star_3qos(3);
        s.policy = policy;
        s.duration = SimDuration::from_ms(4);
        s.warmup = SimDuration::from_ms(1);
        for h in 0..2 {
            s.workloads[h] = Some(WorkloadSpec {
                arrival: ArrivalProcess::Poisson { load: 0.5 },
                pattern: TrafficPattern::ManyToOne { dst: 2 },
                classes: vec![PrioritySpec {
                    priority: Priority::PerformanceCritical,
                    byte_share: 1.0,
                    sizes: SizeDist::Fixed(32_768),
                }],
                stop: None,
            });
        }
        s
    }

    #[test]
    fn macro_run_collects_completions() {
        let r = run_macro(small_setup(PolicyChoice::Static));
        assert!(r.completions.len() > 200, "{}", r.completions.len());
        assert!(!r.warmup_completions.is_empty());
        assert!(r.issued as usize >= r.completions.len());
        assert!(r.events > 1000);
        // Completions sorted by completion time.
        for w in r.completions.windows(2) {
            assert!(w[0].completed_at <= w[1].completed_at);
        }
    }

    #[test]
    fn sampling_fires_on_schedule() {
        let mut ticks = Vec::new();
        run_macro_sampled(
            small_setup(PolicyChoice::Static),
            SimDuration::from_ms(1),
            |_, now| ticks.push(now),
        );
        assert_eq!(ticks.len(), 3, "{ticks:?}"); // at 1, 2, 3 ms (end at 4)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_macro(small_setup(PolicyChoice::Static));
        let b = run_macro(small_setup(PolicyChoice::Static));
        assert_eq!(a.completions.len(), b.completions.len());
        assert_eq!(a.events, b.events);
    }
}
