//! Figs. 21 and 23: large-scale and testbed-analogue runs.

use crate::harness::{run_macro, MacroSetup, PolicyChoice, Scale};
use crate::report::print_table;
use crate::slo::{admitted_mix, p999_rnl_us};
use aequitas::{AequitasConfig, SloTarget};
use aequitas_netsim::{LinkSpec, Topology};
use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::{SimDuration};
use aequitas_stats::Percentiles;
use aequitas_workloads::{QosClass, SizeDist};

// ---------------------------------------------------------------------------
// Fig. 21: 144-node leaf-spine, production sizes, extreme burst overload.
// ---------------------------------------------------------------------------

/// Result of the 144-node experiment.
pub struct Fig21Result {
    /// Per-QoS 99.9p normalized RNL (µs/MTU) without Aequitas.
    pub without: [Option<f64>; 3],
    /// Per-QoS 99.9p normalized RNL (µs/MTU) with Aequitas.
    pub with: [Option<f64>; 3],
    /// Normalized SLOs (µs/MTU) for (QoSh, QoSm).
    pub slo_per_mtu: [f64; 2],
    /// Input and admitted QoS-mix (with Aequitas), percent.
    pub input_mix: [f64; 3],
    /// Admitted mix, percent.
    pub admitted_mix: [f64; 3],
}

fn production_workload(mix: [f64; 3], mu: f64, rho: f64) -> WorkloadSpec {
    WorkloadSpec {
        arrival: ArrivalProcess::BurstOnOff {
            mu,
            rho,
            period: SimDuration::from_us(400),
        },
        pattern: TrafficPattern::AllToAll,
        classes: vec![
            PrioritySpec {
                priority: Priority::PerformanceCritical,
                byte_share: mix[0],
                sizes: SizeDist::production_like(Priority::PerformanceCritical),
            },
            PrioritySpec {
                priority: Priority::NonCritical,
                byte_share: mix[1],
                sizes: SizeDist::production_like(Priority::NonCritical),
            },
            PrioritySpec {
                priority: Priority::BestEffort,
                byte_share: mix[2],
                sizes: SizeDist::production_like(Priority::BestEffort),
            },
        ],
        stop: None,
    }
}

/// The normalized SLO configuration for production-size runs: generous
/// per-MTU targets (small RPCs are dominated by per-RPC fixed costs).
pub fn production_slo_config() -> AequitasConfig {
    AequitasConfig::three_qos(
        SloTarget::per_mtu(SimDuration::from_us(30), 99.9),
        SloTarget::per_mtu(SimDuration::from_us(45), 99.9),
    )
}

fn per_mtu_p999(completions: &[aequitas_rpc::RpcCompletion], qos: QosClass) -> Option<f64> {
    let mut p = Percentiles::new();
    for c in completions.iter().filter(|c| c.qos_run == qos) {
        p.record(c.rnl_per_mtu().as_us_f64());
    }
    p.p999()
}

fn run_144(scale: Scale, policy: PolicyChoice, seed: u64) -> crate::harness::MacroResult {
    // 9 racks x 16 hosts with 4 spines; intra-fabric links 100G. Quick
    // scale shrinks the fabric but keeps the run long: with 25x bursts the
    // RNL feedback the controller needs arrives milliseconds late, and the
    // paper itself reports ~20 ms convergence for this experiment.
    let racks = scale.pick(2, 9);
    let n = racks * 16;
    let topo = Topology::leaf_spine(
        racks,
        16,
        4,
        LinkSpec::default_100g(),
        LinkSpec::default_100g(),
    );
    let mut setup = MacroSetup::star_3qos(n);
    setup.topo = topo;
    setup.policy = policy;
    setup.duration = scale.pick(SimDuration::from_ms(50), SimDuration::from_ms(120));
    setup.warmup = scale.pick(SimDuration::from_ms(30), SimDuration::from_ms(60));
    setup.seed = seed;
    for h in 0..n {
        // Extreme overload: arrival-layer demand spikes to 25x link rate
        // during bursts (mu = 0.8 average, rho = 25 burst demand).
        setup.workloads[h] = Some(production_workload([0.6, 0.3, 0.1], 0.8, 25.0));
    }
    run_macro(setup)
}

/// Fig. 21: production sizes, 25× burst demand, leaf-spine fabric.
pub fn fig21(scale: Scale) -> Fig21Result {
    // The two policies are independent runs; fan them out.
    let mut runs = crate::parallel::run_sweep(vec![false, true], |aequitas| {
        if aequitas {
            run_144(scale, PolicyChoice::Aequitas(production_slo_config()), 2102)
        } else {
            run_144(scale, PolicyChoice::Static, 2101)
        }
    });
    let with = runs.pop().expect("two runs");
    let without = runs.pop().expect("two runs");
    let adm = admitted_mix(&with.completions, 3);
    Fig21Result {
        without: [
            per_mtu_p999(&without.completions, QosClass(0)),
            per_mtu_p999(&without.completions, QosClass(1)),
            per_mtu_p999(&without.completions, QosClass(2)),
        ],
        with: [
            per_mtu_p999(&with.completions, QosClass(0)),
            per_mtu_p999(&with.completions, QosClass(1)),
            per_mtu_p999(&with.completions, QosClass(2)),
        ],
        slo_per_mtu: [30.0, 45.0],
        input_mix: [60.0, 30.0, 10.0],
        admitted_mix: [adm[0] * 100.0, adm[1] * 100.0, adm[2] * 100.0],
    }
}

/// Print Fig. 21.
pub fn print_fig21(r: &Fig21Result) {
    let rows = vec![
        vec![
            "QoSh".into(),
            format!("{:.0}", r.slo_per_mtu[0]),
            crate::report::opt(r.without[0], 1),
            crate::report::opt(r.with[0], 1),
        ],
        vec![
            "QoSm".into(),
            format!("{:.0}", r.slo_per_mtu[1]),
            crate::report::opt(r.without[1], 1),
            crate::report::opt(r.with[1], 1),
        ],
        vec![
            "QoSl".into(),
            "-".into(),
            crate::report::opt(r.without[2], 1),
            crate::report::opt(r.with[2], 1),
        ],
    ];
    print_table(
        "Fig 21: 144-node leaf-spine, production sizes, 25x burst (99.9p RNL us/MTU)",
        &["QoS", "SLO/MTU", "w/o Aequitas", "w/ Aequitas"],
        &rows,
    );
    println!(
        "input mix {:.0}/{:.0}/{:.0} -> admitted {:.1}/{:.1}/{:.1}",
        r.input_mix[0],
        r.input_mix[1],
        r.input_mix[2],
        r.admitted_mix[0],
        r.admitted_mix[1],
        r.admitted_mix[2]
    );
}

// ---------------------------------------------------------------------------
// Fig. 23: the 20-node testbed analogue.
// ---------------------------------------------------------------------------

/// Result of the testbed-analogue run.
pub struct Fig23Result {
    /// Per-QoS 99.9p RNL normalized by the reference run (input = target
    /// mix), without Aequitas.
    pub without_norm: [Option<f64>; 3],
    /// Same, with Aequitas.
    pub with_norm: [Option<f64>; 3],
    /// Input mix (%), and the admitted mix with Aequitas (%).
    pub input_mix: [f64; 3],
    /// Admitted mix (%).
    pub admitted: [f64; 3],
}

fn testbed_workload(mix: [f64; 3]) -> WorkloadSpec {
    WorkloadSpec {
        arrival: ArrivalProcess::BurstOnOff {
            mu: 0.8,
            rho: 1.4,
            period: SimDuration::from_us(100),
        },
        pattern: TrafficPattern::AllToAll,
        classes: vec![
            PrioritySpec {
                priority: Priority::PerformanceCritical,
                byte_share: mix[0],
                sizes: SizeDist::Fixed(32_768),
            },
            PrioritySpec {
                priority: Priority::NonCritical,
                byte_share: mix[1],
                sizes: SizeDist::Fixed(32_768),
            },
            PrioritySpec {
                priority: Priority::BestEffort,
                byte_share: mix[2],
                sizes: SizeDist::Fixed(32_768),
            },
        ],
        stop: None,
    }
}

fn run_testbed(scale: Scale, mix: [f64; 3], policy: PolicyChoice, seed: u64) -> crate::harness::MacroResult {
    let n = 20;
    let mut setup = MacroSetup::star_3qos(n);
    setup.policy = policy;
    setup.duration = scale.pick(SimDuration::from_ms(20), SimDuration::from_ms(100));
    setup.warmup = scale.pick(SimDuration::from_ms(6), SimDuration::from_ms(30));
    setup.seed = seed;
    for h in 0..n {
        setup.workloads[h] = Some(testbed_workload(mix));
    }
    run_macro(setup)
}

/// Fig. 23: 20 machines, all-to-all 32 KB WRITEs, input mix (0.5, 0.35,
/// 0.15), SLOs set for a target mix of (0.2, 0.3, 0.5). Results are
/// normalized per QoS by the reference run whose input equals the target —
/// the same normalization the paper uses for confidentiality.
pub fn fig23(scale: Scale) -> Fig23Result {
    let slos = crate::slo::slo_config_33();
    let input = [0.5, 0.35, 0.15];
    let target = [0.2, 0.3, 0.5];
    // Reference, without, and with are three independent runs.
    let mut runs = crate::parallel::run_sweep(vec![0u8, 1, 2], |k| match k {
        0 => run_testbed(scale, target, PolicyChoice::Aequitas(slos.clone()), 2301),
        1 => run_testbed(scale, input, PolicyChoice::Static, 2302),
        _ => run_testbed(scale, input, PolicyChoice::Aequitas(slos.clone()), 2303),
    });
    let with = runs.pop().expect("three runs");
    let without = runs.pop().expect("three runs");
    let reference = runs.pop().expect("three runs");

    let norm = |r: &crate::harness::MacroResult, q: u8| -> Option<f64> {
        let base = p999_rnl_us(&reference.completions, QosClass(q))?;
        let v = p999_rnl_us(&r.completions, QosClass(q))?;
        Some(v / base)
    };
    let adm = admitted_mix(&with.completions, 3);
    Fig23Result {
        without_norm: [norm(&without, 0), norm(&without, 1), norm(&without, 2)],
        with_norm: [norm(&with, 0), norm(&with, 1), norm(&with, 2)],
        input_mix: input.map(|v| v * 100.0),
        admitted: [adm[0] * 100.0, adm[1] * 100.0, adm[2] * 100.0],
    }
}

/// Print Fig. 23.
pub fn print_fig23(r: &Fig23Result) {
    let rows = vec![
        vec![
            "QoSh".into(),
            crate::report::opt(r.without_norm[0], 2),
            crate::report::opt(r.with_norm[0], 2),
        ],
        vec![
            "QoSm".into(),
            crate::report::opt(r.without_norm[1], 2),
            crate::report::opt(r.with_norm[1], 2),
        ],
        vec![
            "QoSl".into(),
            crate::report::opt(r.without_norm[2], 2),
            crate::report::opt(r.with_norm[2], 2),
        ],
    ];
    print_table(
        "Fig 23: 20-node testbed analogue, normalized 99.9p RNL",
        &["QoS", "w/o Aequitas", "w/ Aequitas"],
        &rows,
    );
    println!(
        "input mix {:.0}/{:.0}/{:.0} -> admitted {:.1}/{:.1}/{:.1}",
        r.input_mix[0], r.input_mix[1], r.input_mix[2], r.admitted[0], r.admitted[1], r.admitted[2]
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig21_aequitas_contains_extreme_overload() {
        let r = fig21(Scale::quick());
        let h_without = r.without[0].expect("samples");
        let h_with = r.with[0].expect("samples");
        let m_without = r.without[1].expect("samples");
        let m_with = r.with[1].expect("samples");
        // The paper reports 3.7x/2.2x improvements; at quick scale with a
        // 25x burst our contrast is far larger (the uncontrolled run's
        // sender queues explode). Per-channel admitted rates in the
        // all-to-all fan-out sit below Algorithm 1's implicit calibration
        // rate (alpha / (target x beta x size)), so the equilibrium tail
        // rests a small multiple above the per-MTU target rather than on it
        // (see EXPERIMENTS.md); assert the shape, not the absolute.
        assert!(
            h_with < h_without / 10.0,
            "QoSh tail should improve dramatically: {h_without} -> {h_with}"
        );
        assert!(
            m_with < m_without / 5.0,
            "QoSm tail should improve: {m_without} -> {m_with}"
        );
        assert!(
            h_with < r.slo_per_mtu[0] * 10.0,
            "QoSh normalized tail {h_with} should land within an order of the SLO {}",
            r.slo_per_mtu[0]
        );
        // Admitted QoSh share shrinks versus the 60% input.
        assert!(r.admitted_mix[0] < 50.0, "{:?}", r.admitted_mix);
    }

    #[test]
    fn fig23_converges_toward_target_mix() {
        let r = fig23(Scale::quick());
        // The admitted mix moves from the 50/35/15 input toward 20/30/50.
        assert!(
            r.admitted[0] < 35.0,
            "QoSh admitted {:.1}% should fall toward 20%",
            r.admitted[0]
        );
        assert!(
            r.admitted[2] > 30.0,
            "QoSl admitted {:.1}% should grow toward 50%",
            r.admitted[2]
        );
        // With Aequitas the normalized tails are near 1.0 (i.e. matching the
        // in-profile reference), without they are much worse.
        let h_with = r.with_norm[0].unwrap();
        let h_without = r.without_norm[0].unwrap();
        assert!(h_without > h_with * 2.0, "{h_without} vs {h_with}");
        assert!(h_with < 2.0, "normalized QoSh with Aequitas: {h_with}");
    }
}
