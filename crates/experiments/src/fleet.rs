//! Fleet-scale experiment: a multi-thousand-host three-tier Clos fabric
//! driven through the sharded parallel engine.
//!
//! This is not a paper figure — it is the scalability demonstration for
//! the PR-6 engine work: `Topology::clos` + [`aequitas_netsim::ShardSpec`]
//! partition the fabric per pod (plus a core-tier domain) and
//! [`run_macro_sharded`] advances the domains concurrently under
//! conservative lookahead. Results are byte-identical for every thread
//! count (gated by `tests/sharded_determinism.rs`); `AEQUITAS_THREADS`
//! only changes wall-clock time.
//!
//! Quick scale runs a 32-host miniature (2 pods) for CI; full scale
//! (`--full` / `AEQUITAS_FULL=1`) runs 2048 hosts (8 pods × 4 leaves ×
//! 64 hosts) with >10M RPCs issued.

use crate::harness::{run_macro_sharded, MacroSetup, PolicyChoice, Scale};
use crate::report::print_table;
use crate::slo::{admitted_mix, p999_rnl_us};
use aequitas_netsim::{LinkSpec, ShardSpec, Topology};
use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::{BitRate, SimDuration};
use aequitas_workloads::{QosClass, SizeDist};

/// Result of the fleet-scale run.
pub struct FleetResult {
    /// Fabric size.
    pub hosts: usize,
    /// Pods (also: worker domains minus the core tier).
    pub pods: usize,
    /// Shard domains (pods + 1 core-tier domain).
    pub domains: usize,
    /// Worker threads used.
    pub threads: usize,
    /// RPCs issued across the fleet (including warm-up).
    pub issued: u64,
    /// Completions after warm-up.
    pub completed: usize,
    /// Events processed by the engine.
    pub events: u64,
    /// Per-QoS 99.9p RNL (µs) of post-warm-up completions.
    pub p999_us: [Option<f64>; 3],
    /// Admitted QoS mix (fractions of post-warm-up bytes).
    pub admitted: [f64; 3],
}

fn fleet_workload(load: f64) -> WorkloadSpec {
    WorkloadSpec {
        arrival: ArrivalProcess::Poisson { load },
        pattern: TrafficPattern::AllToAll,
        classes: vec![
            PrioritySpec {
                priority: Priority::PerformanceCritical,
                byte_share: 0.6,
                sizes: SizeDist::Fixed(8_192),
            },
            PrioritySpec {
                priority: Priority::NonCritical,
                byte_share: 0.3,
                sizes: SizeDist::Fixed(8_192),
            },
            PrioritySpec {
                priority: Priority::BestEffort,
                byte_share: 0.1,
                sizes: SizeDist::Fixed(8_192),
            },
        ],
        stop: None,
    }
}

/// Fleet-scale shape. Quick: 2 pods × (2 spines, 2 leaves × 8 hosts),
/// 2 cores = 32 hosts. Full: 8 pods × (4 spines, 4 leaves × 64 hosts),
/// 8 cores = 2048 hosts.
fn shape(scale: Scale) -> (usize, usize, usize, usize, usize) {
    if scale.full {
        (8, 4, 4, 64, 8)
    } else {
        (2, 2, 2, 8, 2)
    }
}

/// Run the fleet-scale experiment with `AEQUITAS_THREADS` workers.
pub fn fleet(scale: Scale) -> FleetResult {
    fleet_configured(scale, crate::parallel::worker_threads())
}

/// [`fleet`] with an explicit worker-thread count. The returned result must
/// not depend on `threads` — `tests/sharded_determinism.rs` runs this at 1
/// vs 4 workers (with and without a chaos fault plan) and asserts identical
/// output.
pub fn fleet_configured(scale: Scale, threads: usize) -> FleetResult {
    let (pods, spines, leaves, hosts_per_leaf, cores) = shape(scale);
    // Core links span rows of the datacenter: 2 µs of wire, which is also
    // the conservative lookahead of the pod partition (wider windows =>
    // fewer synchronization barriers).
    let core = LinkSpec {
        rate: BitRate::from_gbps(100),
        propagation: SimDuration::from_us(2),
    };
    let topo = Topology::clos(
        pods,
        spines,
        leaves,
        hosts_per_leaf,
        cores,
        LinkSpec::default_100g(),
        LinkSpec::default_100g(),
        core,
    );
    let spec = ShardSpec::clos_pods(&topo, pods, spines, leaves);
    let n = topo.num_hosts();

    let mut setup = MacroSetup::star_3qos(n);
    setup.topo = topo;
    setup.policy = PolicyChoice::Aequitas(crate::large::production_slo_config());
    // Full scale: 2048 hosts × 10 Gbps offered (load 0.1) / 8 KB RPCs
    // ≈ 312 M RPC/s fleet-wide; 40 ms of simulated time issues ~12.5 M.
    // Cross-pod demand at load 0.1 stays inside the 4-spine pod uplink
    // capacity, so the run is busy but not collapsed.
    let load = scale.pick(0.2, 0.1);
    setup.duration = scale.pick(SimDuration::from_ms(2), SimDuration::from_ms(40));
    setup.warmup = scale.pick(SimDuration::from_us(500), SimDuration::from_ms(10));
    setup.seed = 6001;
    for h in 0..n {
        setup.workloads[h] = Some(fleet_workload(load));
    }

    let domains = spec.num_domains;
    let r = run_macro_sharded(setup, spec, threads);
    let adm = admitted_mix(&r.completions, 3);
    FleetResult {
        hosts: n,
        pods,
        domains,
        threads,
        issued: r.issued,
        completed: r.completions.len(),
        events: r.events,
        p999_us: [
            p999_rnl_us(&r.completions, QosClass(0)),
            p999_rnl_us(&r.completions, QosClass(1)),
            p999_rnl_us(&r.completions, QosClass(2)),
        ],
        admitted: adm.try_into().unwrap_or([0.0; 3]),
    }
}

/// Print the fleet-scale result.
pub fn print_fleet(r: &FleetResult) {
    let rows = vec![
        vec!["QoSh".into(), crate::report::opt(r.p999_us[0], 1)],
        vec!["QoSm".into(), crate::report::opt(r.p999_us[1], 1)],
        vec!["QoSl".into(), crate::report::opt(r.p999_us[2], 1)],
    ];
    print_table(
        "Fleet-scale: 3-tier Clos on the sharded engine (99.9p RNL us)",
        &["QoS", "99.9p RNL (us)"],
        &rows,
    );
    println!(
        "{} hosts / {} pods ({} domains) on {} thread(s): {} RPCs issued, \
         {} completed post-warmup, {} events; admitted mix \
         {:.1}/{:.1}/{:.1}%",
        r.hosts,
        r.pods,
        r.domains,
        r.threads,
        r.issued,
        r.completed,
        r.events,
        r.admitted[0] * 100.0,
        r.admitted[1] * 100.0,
        r.admitted[2] * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_quick_runs_and_admits_traffic() {
        let r = fleet_configured(Scale::quick(), 2);
        assert_eq!(r.hosts, 32);
        assert_eq!(r.domains, 3);
        assert!(r.issued > 1_000, "issued {}", r.issued);
        assert!(r.completed > 500, "completed {}", r.completed);
        assert!(r.events > 10_000);
        // All three classes carry traffic and the mix is a distribution.
        let sum: f64 = r.admitted.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "admitted mix {:?}", r.admitted);
        assert!(r.admitted[0] > 0.3, "QoSh share {:?}", r.admitted);
        assert!(r.p999_us[0].is_some());
    }
}
