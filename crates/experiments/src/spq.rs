//! Fig. 19: strict priority queuing cannot contain the race to the top.

use crate::harness::{run_macro, MacroSetup, PolicyChoice, Scale};
use crate::report::print_table;
use crate::slo::{node33_workload, p999_rnl_us, slo_config_33};
use aequitas_netsim::SchedulerKind;
use aequitas_sim_core::SimDuration;
use aequitas_workloads::QosClass;

/// One Fig. 19 point.
#[derive(Debug, Clone, Copy)]
pub struct Fig19Point {
    /// Input QoSh-share (%).
    pub share_pct: f64,
    /// (QoSh, QoSm) 99.9p RNL under SPQ (µs).
    pub spq_us: [Option<f64>; 2],
    /// (QoSh, QoSm) 99.9p RNL under Aequitas-on-WFQ (µs).
    pub aequitas_us: [Option<f64>; 2],
}

/// Fig. 19 result.
pub struct Fig19Result {
    /// SLOs for reference (µs).
    pub slo_us: [f64; 2],
    /// Sweep points.
    pub points: Vec<Fig19Point>,
}

fn base_setup(scale: Scale, mix: [f64; 3], seed: u64) -> MacroSetup {
    let n = 33;
    let mut setup = MacroSetup::star_3qos(n);
    setup.duration = scale.pick(SimDuration::from_ms(40), SimDuration::from_ms(120));
    setup.warmup = scale.pick(SimDuration::from_ms(24), SimDuration::from_ms(60));
    setup.seed = seed;
    for h in 0..n {
        setup.workloads[h] = Some(node33_workload(mix, None));
    }
    setup
}

/// Fig. 19: QoSm fixed at 20%, QoSh-share swept 50–80%; SPQ (static
/// priorities pushed into the fabric) versus Aequitas over WFQ.
pub fn fig19(scale: Scale) -> Fig19Result {
    // Each (share, scheme) pair is an independent run; fan them all out and
    // pair the halves back up afterwards.
    let sweep: Vec<(f64, bool)> = [50.0, 60.0, 70.0, 80.0]
        .into_iter()
        .flat_map(|share| [(share, false), (share, true)])
        .collect();
    let runs = crate::parallel::run_sweep(sweep, |(share, aequitas)| {
        let x = share / 100.0;
        let mix = [x, 0.20, (0.80_f64 - x).max(0.0)];
        let r = if aequitas {
            // Aequitas over WFQ.
            let mut aq_setup = base_setup(scale, mix, 1950 + share as u64);
            aq_setup.policy = PolicyChoice::Aequitas(slo_config_33());
            run_macro(aq_setup)
        } else {
            // SPQ, no admission control.
            let mut spq_setup = base_setup(scale, mix, 1900 + share as u64);
            spq_setup.engine.switch_scheduler = SchedulerKind::Spq(3);
            spq_setup.engine.host_scheduler = SchedulerKind::Spq(3);
            spq_setup.policy = PolicyChoice::Static;
            run_macro(spq_setup)
        };
        [
            p999_rnl_us(&r.completions, QosClass(0)),
            p999_rnl_us(&r.completions, QosClass(1)),
        ]
    });
    let points = runs
        .chunks_exact(2)
        .zip([50.0, 60.0, 70.0, 80.0])
        .map(|(pair, share)| Fig19Point {
            share_pct: share,
            spq_us: pair[0],
            aequitas_us: pair[1],
        })
        .collect();
    Fig19Result {
        slo_us: [15.0, 25.0],
        points,
    }
}

/// Print Fig. 19.
pub fn print_fig19(r: &Fig19Result) {
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.share_pct),
                crate::report::opt(p.aequitas_us[0], 1),
                crate::report::opt(p.spq_us[0], 1),
                crate::report::opt(p.aequitas_us[1], 1),
                crate::report::opt(p.spq_us[1], 1),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig 19: Aequitas vs SPQ as QoSh-share grows (SLOs {}/{} us)",
            r.slo_us[0], r.slo_us[1]
        ),
        &[
            "QoSh-share",
            "QoSh Aequitas",
            "QoSh SPQ",
            "QoSm Aequitas",
            "QoSm SPQ",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spq_degrades_while_aequitas_holds() {
        // Single high-share point for test speed.
        let scale = Scale::quick();
        let mix = [0.80, 0.20, 0.0];
        let mut spq_setup = base_setup(scale, mix, 7);
        spq_setup.engine.switch_scheduler = SchedulerKind::Spq(3);
        spq_setup.engine.host_scheduler = SchedulerKind::Spq(3);
        let spq = run_macro(spq_setup);
        let mut aq_setup = base_setup(scale, mix, 8);
        aq_setup.policy = PolicyChoice::Aequitas(slo_config_33());
        let aq = run_macro(aq_setup);

        let spq_h = p999_rnl_us(&spq.completions, QosClass::HIGH).unwrap();
        let aq_h = p999_rnl_us(&aq.completions, QosClass::HIGH).unwrap();
        // With 80% of traffic marked QoSh, SPQ misses the 15 us SLO while
        // Aequitas's admitted QoSh traffic still meets it.
        assert!(spq_h > 15.0 * 1.5, "SPQ QoSh p999 {spq_h} us");
        assert!(aq_h < 15.0 * 2.0, "Aequitas QoSh p999 {aq_h} us");
        assert!(aq_h < spq_h, "Aequitas {aq_h} must beat SPQ {spq_h}");
        // SPQ starves QoSm to far beyond its SLO.
        let spq_m = p999_rnl_us(&spq.completions, QosClass(1)).unwrap();
        assert!(spq_m > 25.0 * 2.0, "SPQ QoSm p999 {spq_m} us");
    }
}
