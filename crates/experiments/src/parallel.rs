//! Parallel sweep harness.
//!
//! Every figure that sweeps a parameter (SLO, QoS-mix, burst load, …) or
//! compares policies runs one fully independent simulation per point: each
//! point owns its engine, its seed, and its RNG streams, and no state is
//! shared between points. That makes the sweep embarrassingly parallel
//! *across* runs while each run stays strictly single-threaded and
//! deterministic — results are bit-identical to the serial loops for any
//! worker count (see DESIGN.md §3).
//!
//! [`run_sweep`] fans the points across a scoped thread pool sized by
//! `AEQUITAS_THREADS` (default: [`std::thread::available_parallelism`]) and
//! returns results in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count used by [`run_sweep`]: the `AEQUITAS_THREADS` environment
/// variable when set (values `< 1` clamp to 1), otherwise the machine's
/// available parallelism.
pub fn worker_threads() -> usize {
    match std::env::var("AEQUITAS_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Run `f` over every point on [`worker_threads`] workers; results come back
/// in input order.
pub fn run_sweep<P, R, F>(points: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    run_sweep_on(worker_threads(), points, f)
}

/// [`run_sweep`] with an explicit worker count (used by the determinism
/// tests to compare 1 vs N workers).
pub fn run_sweep_on<P, R, F>(threads: usize, points: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let n = points.len();
    // Effective worker count: spawning more workers than points only adds
    // scheduler churn. One effective worker runs inline — no threads, no
    // per-point locking — which matters on single-core machines where the
    // "parallel" path used to lose to the serial loops outright.
    let threads = threads.min(n.max(1));
    if threads <= 1 {
        return points.into_iter().map(f).collect();
    }
    // Work-stealing by atomic index: each worker claims the next unclaimed
    // chunk of points, so long and short runs balance without static
    // partitioning. Chunks amortize the claim (one fetch_add + lock pair
    // per chunk instead of per point) while staying small enough — at
    // least 4 chunks per worker — that stealing still load-balances.
    let chunk = (n / (threads * 4)).max(1);
    let slots: Vec<Mutex<Option<P>>> = points.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    let p = slots[i].lock().unwrap().take().expect("point claimed once");
                    let r = f(p);
                    *results[i].lock().unwrap() = Some(r);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker wrote result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = run_sweep_on(4, (0..37).collect(), |x: i32| x * x);
        assert_eq!(out, (0..37).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let points: Vec<u64> = (0..16).collect();
        let f = |x: u64| {
            // A run-like computation with per-point seeding.
            let mut rng = aequitas_sim_core::SimRng::new(42 + x);
            (0..100).map(|_| rng.next_u64() % 1000).sum::<u64>()
        };
        assert_eq!(
            run_sweep_on(1, points.clone(), f),
            run_sweep_on(3, points, f)
        );
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(run_sweep_on(8, Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(run_sweep_on(8, vec![7u8], |x| x + 1), vec![8]);
    }
}
