//! Opt-in end-of-run self-audit.
//!
//! When enabled (CLI `--audit` or `AEQUITAS_AUDIT=1`), the harness replays
//! the trace a run just wrote through `aequitas-replay` and checks it
//! against the paper's closed-form bounds (Eq. 1 / Eq. 8, admissible
//! region, RNL SLOs). A FAIL verdict terminates the process with exit
//! code 1 so scripted experiments cannot silently publish figures from a
//! run that violated its own model.

use aequitas_telemetry::Telemetry;
use std::sync::atomic::{AtomicBool, Ordering};

static SELF_AUDIT: AtomicBool = AtomicBool::new(false);

/// Turn the end-of-run self-audit on for this process (the CLI's
/// `--audit` flag).
pub fn enable_self_audit() {
    SELF_AUDIT.store(true, Ordering::Relaxed);
}

/// Whether the self-audit is enabled, via [`enable_self_audit`] or the
/// `AEQUITAS_AUDIT` environment variable (any value but `0`).
pub fn self_audit_enabled() -> bool {
    SELF_AUDIT.load(Ordering::Relaxed)
        || std::env::var("AEQUITAS_AUDIT").is_ok_and(|v| v != "0")
}

/// Harness hook: replay + audit the trace behind `tel` if the self-audit
/// is enabled. Prints the verdict report; exits 1 on a FAIL verdict.
/// No-op when disabled, when tracing is off, or when the sink is not
/// file-backed (nothing to replay).
pub fn maybe_self_audit(tel: &Telemetry) {
    if !self_audit_enabled() || !tel.is_enabled() {
        return;
    }
    let Some(path) = tel.trace_path() else {
        eprintln!("self-audit: trace sink is not file-backed (need --trace); skipping");
        return;
    };
    match aequitas_replay::audit_file(&path, &aequitas_replay::AuditOptions::default()) {
        Ok((mut recon, report)) => {
            println!("--- self-audit: {} ---", path.display());
            print!(
                "{}",
                aequitas_replay::report::report_text(&mut recon, &report)
            );
            if report.verdict == aequitas_replay::CheckStatus::Fail {
                eprintln!("self-audit: FAIL — run violates its analytical bounds");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("self-audit: cannot audit {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}
