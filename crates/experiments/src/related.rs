//! Fig. 22: comparison with pFabric, QJump, D3, PDQ, and Homa.
//!
//! All six systems run the same offered workload: 33-node star, all-to-all,
//! production-like RPC sizes, input QoS-mix (0.5, 0.3, 0.2), burst arrivals
//! μ=0.8 / ρ=1.4. Scored on:
//!
//! * **% of QoSh traffic meeting its SLO from the initially assigned QoS** —
//!   normalized (per-MTU) SLO for the SLO-aware/unaware schemes, the 250 µs
//!   deadline for D3/PDQ (as the paper translates);
//! * **network utilization** — goodput over offered bytes (terminated and
//!   never-finishing RPCs waste their bytes);
//! * **per-QoS 99.9ᵗʰ-p completion latency**.

use crate::harness::{run_macro, MacroSetup, PolicyChoice, Scale};
use crate::report::{f1, print_table};
use aequitas::{AequitasConfig, SloTarget};
use aequitas_baselines::{
    deadline, homa, pfabric, qjump, BaselineCompletion, DeadlineHost, DeadlineMode, HomaHost,
    PfabricHost, QjumpHost, WorkloadGen,
};
use aequitas_netsim::{Engine, HostAgent, HostId, LinkSpec, Topology};
use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::{BitRate, SimDuration, SimTime};
use aequitas_stats::Percentiles;
use aequitas_workloads::SizeDist;

const N: usize = 33;
const MIX: [f64; 3] = [0.5, 0.3, 0.2];

/// Normalized per-MTU SLO targets such that an average-size QoSh RPC gets
/// the same absolute budget as D3/PDQ's 250 µs deadline (the paper's
/// translation), and QoSm maps to 300 µs.
pub fn normalized_targets() -> [SimDuration; 2] {
    let avg_pc = SizeDist::production_like(Priority::PerformanceCritical).mean_bytes();
    let avg_nc = SizeDist::production_like(Priority::NonCritical).mean_bytes();
    let mtus_pc = (avg_pc / 4096.0).max(1.0);
    let mtus_nc = (avg_nc / 4096.0).max(1.0);
    [
        SimDuration::from_us_f64(250.0 / mtus_pc),
        SimDuration::from_us_f64(300.0 / mtus_nc),
    ]
}

/// A scheme-agnostic completion record for scoring.
#[derive(Debug, Clone, Copy)]
pub struct Scored {
    /// Initially assigned QoS (bijective from priority).
    pub qos: u8,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Completion latency in µs.
    pub latency_us: f64,
    /// Whether the scheme terminated the RPC before completion.
    pub terminated: bool,
    /// Whether the RPC ran to completion on its initially assigned QoS
    /// (false for Aequitas-downgraded RPCs).
    pub on_initial_qos: bool,
}

/// Per-scheme summary.
#[derive(Debug, Clone)]
pub struct SchemeScore {
    /// Scheme name.
    pub name: &'static str,
    /// % of QoSh bytes meeting the SLO from the initial QoS.
    pub qosh_meeting_pct: f64,
    /// % of QoSm bytes meeting the (300 µs) SLO from the initial QoS.
    pub qosm_meeting_pct: f64,
    /// Byte-weighted % of SLO-carrying (QoSh+QoSm) bytes meeting their SLO.
    pub slo_meeting_pct: f64,
    /// Goodput over offered bytes, %.
    pub utilization_pct: f64,
    /// 99.9p latency (µs) per QoS class.
    pub p999_us: [Option<f64>; 3],
}

/// Offered bytes (total, QoSh) of the shared workload — regenerated from
/// the deterministic per-host streams, so RPCs a scheme never finishes
/// still count in the denominators.
pub fn offered_bytes(scale: Scale, seed: u64) -> (u64, u64, u64) {
    let mut total = 0u64;
    let mut qosh = 0u64;
    let mut qosm = 0u64;
    for src in 0..N {
        let mut g = make_gen(src, scale, seed);
        while let Some(rpc) = g.next_rpc() {
            total += rpc.size_bytes;
            match rpc.qos {
                0 => qosh += rpc.size_bytes,
                1 => qosm += rpc.size_bytes,
                _ => {}
            }
        }
    }
    (total, qosh, qosm)
}

/// Score a scheme's completions against the *offered* workload: RPCs the
/// scheme terminated or never finished count against both the SLO-meeting
/// percentage and utilization (steady-state accounting — a scheme cannot be
/// rescued by the post-workload drain).
pub fn score(
    name: &'static str,
    records: &[Scored],
    offered_total_bytes: u64,
    offered_qosh_bytes: u64,
    offered_qosm_bytes: u64,
) -> SchemeScore {
    let mut good_bytes = 0u64;
    let mut qosh_meeting = 0u64;
    let mut qosm_meeting = 0u64;
    let mut per_qos = [
        Percentiles::new(),
        Percentiles::new(),
        Percentiles::new(),
    ];
    for r in records {
        if !r.terminated {
            good_bytes += r.size_bytes;
            per_qos[(r.qos as usize).min(2)].record(r.latency_us);
        }
        // One absolute budget per class for every scheme — the paper's
        // 250 us / 300 us targets (a per-MTU budget would hand large RPCs
        // an arbitrarily generous allowance and stop discriminating the
        // SRPT schemes' large-RPC starvation).
        let budget = match r.qos {
            0 => Some(250.0),
            1 => Some(300.0),
            _ => None,
        };
        if let Some(budget) = budget {
            if !r.terminated && r.on_initial_qos && r.latency_us <= budget {
                if r.qos == 0 {
                    qosh_meeting += r.size_bytes;
                } else {
                    qosm_meeting += r.size_bytes;
                }
            }
        }
    }
    let qosh_pct = (100.0 * qosh_meeting as f64 / offered_qosh_bytes.max(1) as f64).min(100.0);
    let qosm_pct = (100.0 * qosm_meeting as f64 / offered_qosm_bytes.max(1) as f64).min(100.0);
    let combined = (100.0 * (qosh_meeting + qosm_meeting) as f64
        / (offered_qosh_bytes + offered_qosm_bytes).max(1) as f64)
        .min(100.0);
    SchemeScore {
        name,
        qosh_meeting_pct: qosh_pct,
        qosm_meeting_pct: qosm_pct,
        slo_meeting_pct: combined,
        utilization_pct: (100.0 * good_bytes as f64 / offered_total_bytes.max(1) as f64)
            .min(100.0),
        p999_us: [
            per_qos[0].p999(),
            per_qos[1].p999(),
            per_qos[2].p999(),
        ],
    }
}

fn stop_time(scale: Scale) -> SimTime {
    // Long enough for SRPT backlogs to reach steady state: the schemes'
    // large-RPC starvation only shows once queues have built.
    SimTime::ZERO + scale.pick(SimDuration::from_ms(20), SimDuration::from_ms(80))
}

fn drain_time(scale: Scale) -> SimTime {
    stop_time(scale) + scale.pick(SimDuration::from_ms(30), SimDuration::from_ms(80))
}

fn production_classes() -> Vec<(Priority, f64, SizeDist)> {
    vec![
        (
            Priority::PerformanceCritical,
            MIX[0],
            SizeDist::production_like(Priority::PerformanceCritical),
        ),
        (
            Priority::NonCritical,
            MIX[1],
            SizeDist::production_like(Priority::NonCritical),
        ),
        (
            Priority::BestEffort,
            MIX[2],
            SizeDist::production_like(Priority::BestEffort),
        ),
    ]
}

fn make_gen(src: usize, scale: Scale, seed: u64) -> WorkloadGen {
    WorkloadGen::new(
        ArrivalProcess::BurstOnOff {
            mu: 0.9,
            rho: 2.0,
            period: SimDuration::from_us(100),
        },
        TrafficPattern::AllToAll,
        production_classes(),
        src,
        N,
        BitRate::from_gbps(100),
        Some(stop_time(scale)),
        seed ^ (src as u64 * 0x9E37),
    )
}

fn collect<A: HostAgent>(
    mut eng: Engine<A>,
    scale: Scale,
    completions: impl Fn(&A) -> &[BaselineCompletion],
) -> Vec<Scored> {
    eng.run_until(drain_time(scale));
    let mut out = Vec::new();
    for a in eng.agents() {
        for c in completions(a) {
            out.push(Scored {
                qos: c.qos,
                size_bytes: c.size_bytes,
                latency_us: c.latency().as_us_f64(),
                terminated: c.terminated,
                on_initial_qos: true,
            });
        }
    }
    out
}

/// Run pFabric on the shared workload.
pub fn run_pfabric(scale: Scale) -> Vec<Scored> {
    let topo = Topology::star(N, LinkSpec::default_100g());
    let agents = (0..N)
        .map(|h| PfabricHost::new(HostId(h), Some(make_gen(h, scale, 22_01))))
        .collect();
    let eng = Engine::new(topo, agents, pfabric::engine_config());
    collect(eng, scale, |a: &PfabricHost| a.completions())
}

/// Run QJump on the shared workload.
pub fn run_qjump(scale: Scale) -> Vec<Scored> {
    let topo = Topology::star(N, LinkSpec::default_100g());
    let agents = (0..N)
        .map(|h| {
            QjumpHost::new(
                HostId(h),
                Some(make_gen(h, scale, 22_02)),
                BitRate::from_gbps(100),
            )
        })
        .collect();
    let eng = Engine::new(topo, agents, qjump::engine_config());
    collect(eng, scale, |a: &QjumpHost| a.completions())
}

/// Run D3 or PDQ on the shared workload.
pub fn run_deadline(scale: Scale, mode: DeadlineMode) -> Vec<Scored> {
    let topo = Topology::star(N, LinkSpec::default_100g());
    let agents = (0..N)
        .map(|h| {
            DeadlineHost::new(
                HostId(h),
                mode,
                Some(make_gen(h, scale, 22_03 + mode as u64)),
                BitRate::from_gbps(100),
            )
        })
        .collect();
    let eng = Engine::new(topo, agents, deadline::engine_config());
    collect(eng, scale, |a: &DeadlineHost| a.completions())
}

/// Run Homa on the shared workload.
pub fn run_homa(scale: Scale) -> Vec<Scored> {
    let topo = Topology::star(N, LinkSpec::default_100g());
    let agents = (0..N)
        .map(|h| HomaHost::new(HostId(h), Some(make_gen(h, scale, 22_05))))
        .collect();
    let eng = Engine::new(topo, agents, homa::engine_config());
    collect(eng, scale, |a: &HomaHost| a.completions())
}

/// Run Aequitas on the shared workload.
pub fn run_aequitas(scale: Scale) -> Vec<Scored> {
    let targets = normalized_targets();
    let config = AequitasConfig::three_qos(
        SloTarget::per_mtu(targets[0], 99.9),
        SloTarget::per_mtu(targets[1], 99.9),
    );
    let mut setup = MacroSetup::star_3qos(N);
    setup.policy = PolicyChoice::Aequitas(config);
    setup.duration = drain_time(scale).since(SimTime::ZERO);
    setup.warmup = SimDuration::ZERO;
    setup.seed = 22_06;
    let stop = stop_time(scale);
    for h in 0..N {
        setup.workloads[h] = Some(WorkloadSpec {
            arrival: ArrivalProcess::BurstOnOff {
                mu: 0.9,
                rho: 2.0,
                period: SimDuration::from_us(100),
            },
            pattern: TrafficPattern::AllToAll,
            classes: production_classes()
                .into_iter()
                .map(|(priority, byte_share, sizes)| PrioritySpec {
                    priority,
                    byte_share,
                    sizes,
                })
                .collect(),
            stop: Some(stop),
        });
    }
    let r = run_macro(setup);
    r.completions
        .iter()
        .chain(r.warmup_completions.iter())
        .map(|c| Scored {
            qos: c.qos_run.0,
            size_bytes: c.size_bytes,
            latency_us: c.rnl().as_us_f64(),
            terminated: false,
            on_initial_qos: !c.downgraded,
        })
        .collect()
}

/// Fig. 22 result: one score per scheme.
pub struct Fig22Result {
    /// Scores in presentation order.
    pub scores: Vec<SchemeScore>,
}

/// Run the full comparison. The six schemes are independent simulations on
/// the same offered workload, so they fan out across the sweep harness.
pub fn fig22(scale: Scale) -> Fig22Result {
    let schemes: Vec<usize> = (0..6).collect();
    let scores = crate::parallel::run_sweep(schemes, |k| match k {
        0 => scored("Aequitas", scale, 22_06, run_aequitas(scale)),
        1 => scored("pFabric", scale, 22_01, run_pfabric(scale)),
        2 => scored("QJump", scale, 22_02, run_qjump(scale)),
        3 => scored(
            "D3",
            scale,
            22_03 + DeadlineMode::D3 as u64,
            run_deadline(scale, DeadlineMode::D3),
        ),
        4 => scored(
            "PDQ",
            scale,
            22_03 + DeadlineMode::Pdq as u64,
            run_deadline(scale, DeadlineMode::Pdq),
        ),
        _ => scored("Homa", scale, 22_05, run_homa(scale)),
    });
    Fig22Result { scores }
}

/// Score helper: regenerate the scheme's offered stream (same seed the run
/// used) and score against it.
pub fn scored(name: &'static str, scale: Scale, seed: u64, records: Vec<Scored>) -> SchemeScore {
    let (total, qosh, qosm) = offered_bytes(scale, seed);
    score(name, &records, total, qosh, qosm)
}

/// Print Fig. 22.
pub fn print_fig22(r: &Fig22Result) {
    let rows: Vec<Vec<String>> = r
        .scores
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                f1(s.qosh_meeting_pct),
                f1(s.qosm_meeting_pct),
                f1(s.slo_meeting_pct),
                f1(s.utilization_pct),
                crate::report::opt(s.p999_us[0], 0),
                crate::report::opt(s.p999_us[1], 0),
                crate::report::opt(s.p999_us[2], 0),
            ]
        })
        .collect();
    print_table(
        "Fig 22: related-work comparison (33-node, production sizes, mix 50/30/20)",
        &[
            "scheme",
            "QoSh meet %",
            "QoSm meet %",
            "h+m meet %",
            "utilization %",
            "QoSh p999 us",
            "QoSm p999 us",
            "QoSl p999 us",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_targets_track_deadlines() {
        let t = normalized_targets();
        let avg_pc = SizeDist::production_like(Priority::PerformanceCritical).mean_bytes();
        let budget = t[0].as_us_f64() * (avg_pc / 4096.0);
        assert!((budget - 250.0).abs() < 1.0, "budget {budget}");
    }

    #[test]
    fn deadline_schemes_sacrifice_utilization() {
        let scale = Scale::quick();
        let d3 = scored(
            "D3",
            scale,
            22_03 + DeadlineMode::D3 as u64,
            run_deadline(scale, DeadlineMode::D3),
        );
        let aq = scored("Aequitas", scale, 22_06, run_aequitas(scale));
        assert!(
            d3.utilization_pct < aq.utilization_pct - 10.0,
            "D3 {d3:?} vs Aequitas {aq:?}"
        );
    }

    #[test]
    fn aequitas_leads_the_slo_unaware_schemes() {
        let scale = Scale::quick();
        let aq = scored("Aequitas", scale, 22_06, run_aequitas(scale));
        let pf = scored("pFabric", scale, 22_01, run_pfabric(scale));
        let qj = scored("QJump", scale, 22_02, run_qjump(scale));
        // Byte-weighted across both SLO-carrying classes. (Homa is excluded
        // here: our simplified Homa — idealized receiver grants, no fleet-
        // wide priority contention or incast pathologies — outperforms the
        // paper's measured Homa by a wide margin; see EXPERIMENTS.md.)
        assert!(
            aq.slo_meeting_pct > pf.slo_meeting_pct,
            "Aequitas {:.1}% vs pFabric {:.1}%",
            aq.slo_meeting_pct,
            pf.slo_meeting_pct
        );
        assert!(
            aq.slo_meeting_pct > qj.slo_meeting_pct + 10.0,
            "Aequitas {:.1}% vs QJump {:.1}%",
            aq.slo_meeting_pct,
            qj.slo_meeting_pct
        );
        // And Aequitas never sacrifices utilization for its SLOs.
        assert!(aq.utilization_pct > 95.0, "{:.1}", aq.utilization_pct);
    }
}
