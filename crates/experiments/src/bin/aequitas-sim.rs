//! `aequitas-sim` — command-line front end to the experiment suite.
//!
//! The paper open-sourced its simulator partly as an operator tool ("to
//! help define the admissible region and set the right SLOs"); this binary
//! is the equivalent entry point. Every figure of the evaluation, the
//! extension, and the ablations are invocable by name:
//!
//! ```text
//! aequitas-sim list
//! aequitas-sim run fig12
//! aequitas-sim run fig22 --full
//! aequitas-sim run all
//! aequitas-sim run fig11 --trace out.jsonl --metrics out-metrics.csv
//! ```
//!
//! `--trace PATH` streams structured JSONL events (packet, RPC, transport,
//! and admission-controller lifecycle) for the run; `--metrics PATH` writes
//! the sampled metric time-series as CSV. `--sample-us N` sets the
//! simulated-time sampling cadence (default 10us). See the "Observability"
//! section of DESIGN.md for the event taxonomy.
//!
//! `--faults PLAN.toml` loads a deterministic fault plan (link flaps,
//! loss, corruption, jitter, quota-server outages — see the "Fault model"
//! section of README.md for the schema) and injects it into every engine
//! the chosen experiment builds.
//!
//! `--audit` (requires `--trace`) replays the trace each traced run just
//! wrote through `aequitas-replay` and checks it against the paper's
//! analytical bounds; a FAIL verdict exits 1.

use aequitas_experiments::harness::Scale;
use aequitas_experiments::*;
use aequitas_sim_core::SimDuration;
use aequitas_telemetry::{Telemetry, TelemetryConfig};

struct Entry {
    name: &'static str,
    about: &'static str,
    run: fn(Scale),
}

fn entries() -> Vec<Entry> {
    vec![
        Entry {
            name: "fig01",
            about: "per-class RPC size distribution quantiles",
            run: |_| sizes_fig::print_fig01(&sizes_fig::fig01()),
        },
        Entry {
            name: "fig03",
            about: "congestion episode: load spike -> RNL spike",
            run: |s| production::print_fig03(&production::fig03(s)),
        },
        Entry {
            name: "fig04",
            about: "fleet misalignment snapshot + race-to-the-top drift",
            run: |_| production::print_fig04_05(&production::fig04_05()),
        },
        Entry {
            name: "fig08",
            about: "closed-form 2-QoS worst-case delay",
            run: |_| theory::print_fig08(&theory::fig08()),
        },
        Entry {
            name: "fig09",
            about: "3-QoS worst-case delay (8:4:1 and 50:4:1)",
            run: |_| theory::print_fig09(&theory::fig09()),
        },
        Entry {
            name: "fig10",
            about: "packet simulator vs theory validation",
            run: |s| theory::print_fig10(&theory::fig10(s)),
        },
        Entry {
            name: "fig11",
            about: "achieved RNL tracks the SLO (3-node sweep)",
            run: |s| slo::print_fig11(&slo::fig11(s)),
        },
        Entry {
            name: "fig12",
            about: "33-node SLO compliance (+ fig13 outstanding RPCs)",
            run: |s| {
                let mut r = slo::fig12(s);
                slo::print_fig12(&r);
                slo::print_fig13(&mut r);
            },
        },
        Entry {
            name: "fig14",
            about: "baseline RNL vs input QoSh-share",
            run: |s| mix::print_fig14(&mix::fig14(s)),
        },
        Entry {
            name: "fig15",
            about: "admitted QoS-mix converges to target",
            run: |s| mix::print_fig15(&mix::fig15(s)),
        },
        Entry {
            name: "fig16",
            about: "admitted share vs burstiness (C/rho fit)",
            run: |s| mix::print_fig16(&mix::fig16(s)),
        },
        Entry {
            name: "fig17",
            about: "fairness across channels (+ fig18 max-min)",
            run: |s| {
                fairness::print_fairness("Fig 17", &fairness::fig17(s));
                fairness::print_fairness("Fig 18", &fairness::fig18(s));
            },
        },
        Entry {
            name: "fig19",
            about: "Aequitas vs strict priority queuing",
            run: |s| spq::print_fig19(&spq::fig19(s)),
        },
        Entry {
            name: "fig20",
            about: "mixed 32/64KB sizes under normalized SLOs",
            run: |s| sizes_fig::print_fig20(&sizes_fig::fig20(s)),
        },
        Entry {
            name: "fig21",
            about: "leaf-spine fabric, production sizes, 25x burst",
            run: |s| large::print_fig21(&large::fig21(s)),
        },
        Entry {
            name: "fig22",
            about: "vs pFabric / QJump / D3 / PDQ / Homa",
            run: |s| related::print_fig22(&related::fig22(s)),
        },
        Entry {
            name: "fig23",
            about: "20-node testbed analogue",
            run: |s| large::print_fig23(&large::fig23(s)),
        },
        Entry {
            name: "fig24",
            about: "Phase-1 rollout: misalignment -> 0",
            run: |_| production::print_fig24(&production::fig24(50)),
        },
        Entry {
            name: "fig28",
            about: "beta sensitivity (Appendix C)",
            run: |s| {
                let (a, b) = fairness::fig28_29(s);
                fairness::print_fairness("Fig 28 (beta=0.0015)", &a);
                fairness::print_fairness("Fig 29 (beta=0.0015)", &b);
            },
        },
        Entry {
            name: "fleet-scale",
            about: "multi-thousand-host Clos on the sharded parallel engine",
            run: |s| fleet::print_fleet(&fleet::fleet(s)),
        },
        Entry {
            name: "trace-demo",
            about: "tiny full-stack Aequitas run for telemetry smoke/demo",
            run: |s| demo::print_trace_demo(&demo::trace_demo(s)),
        },
        Entry {
            name: "guarantee",
            about: "Sec 5.2 guaranteed-share table",
            run: |_| theory::print_guaranteed(&theory::guaranteed_table()),
        },
        Entry {
            name: "quota",
            about: "extension: centralized RPC quota server",
            run: |s| ext::print_quota(&ext::quota(s)),
        },
        Entry {
            name: "core-overload",
            about: "extension: spine overload handled with no topology knowledge",
            run: |s| ext::print_core_overload(&ext::core_overload(s)),
        },
        Entry {
            name: "chaos-flap",
            about: "chaos: uplink flap -> bounded blast radius, re-admission",
            run: |s| chaos::print_link_flap(&chaos::link_flap(s)),
        },
        Entry {
            name: "chaos-quota",
            about: "chaos: quota-server outage -> decayed-grant fallback",
            run: |s| chaos::print_quota_outage(&chaos::quota_outage(s)),
        },
        Entry {
            name: "chaos-containment",
            about: "chaos: baseline x fault matrix with time-to-SLO-restore",
            run: |s| chaos::print_containment(&chaos::containment(s)),
        },
        Entry {
            name: "ablations",
            about: "design-choice ablations (MD scaling, window, drop, floor)",
            run: |s| {
                ext::print_ablation_md_size(&ext::ablation_md_size(s));
                ext::print_ablation_window(&ext::ablation_window(s));
                ext::print_ablation_drop(&ext::ablation_drop(s));
                ext::print_ablation_floor(&ext::ablation_floor(s));
            },
        },
    ]
}

fn usage() -> ! {
    eprintln!(
        "usage: aequitas-sim <list | run <name|all>> [--full] \
         [--trace PATH] [--metrics PATH] [--sample-us N] [--faults PLAN.toml] [--audit]"
    );
    eprintln!("       aequitas-sim run fig12");
    eprintln!("       aequitas-sim run fig11 --trace out.jsonl --metrics out-metrics.csv");
    eprintln!("       aequitas-sim run chaos-flap --faults plan.toml");
    eprintln!("       AEQUITAS_FULL=1 aequitas-sim run all");
    std::process::exit(2);
}

/// Telemetry-related CLI options.
#[derive(Default)]
struct TelemetryOpts {
    trace: Option<String>,
    metrics: Option<String>,
    sample_us: Option<u64>,
}

impl TelemetryOpts {
    fn wanted(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Build and install the process-global handle; returns it for the
    /// post-run flush/export.
    fn install(&self) -> Option<Telemetry> {
        if !self.wanted() {
            return None;
        }
        let mut config = TelemetryConfig::default();
        if let Some(us) = self.sample_us {
            config.sample_every = SimDuration::from_us(us);
        }
        let tel = match &self.trace {
            Some(path) => match Telemetry::to_file(path, config) {
                Ok(tel) => tel,
                Err(e) => {
                    eprintln!("cannot open trace file {path}: {e}");
                    std::process::exit(2);
                }
            },
            // Metrics-only run: sample on cadence, discard trace lines.
            None => Telemetry::with_sink(aequitas_telemetry::NullSink, config),
        };
        aequitas_telemetry::install_global(tel.clone());
        Some(tel)
    }

    fn finish(&self, tel: &Telemetry) {
        tel.flush();
        if let Some(path) = &self.trace {
            println!("[trace written to {path}]");
        }
        if let Some(path) = &self.metrics {
            match tel.write_metrics_csv_path(path) {
                Ok(()) => println!("[metrics written to {path}]"),
                Err(e) => eprintln!("cannot write metrics file {path}: {e}"),
            }
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut audit = false;
    let mut tel_opts = TelemetryOpts::default();
    let mut args: Vec<&str> = Vec::new();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut value_of = |flag: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("{flag} requires a value");
                    usage();
                }
            }
        };
        match a.as_str() {
            "--full" => full = true,
            "--audit" => audit = true,
            "--trace" => tel_opts.trace = Some(value_of("--trace")),
            "--metrics" => tel_opts.metrics = Some(value_of("--metrics")),
            "--faults" => {
                let path = value_of("--faults");
                let plan = match aequitas_netsim::faults::FaultPlan::from_toml_file(
                    std::path::Path::new(&path),
                ) {
                    Ok(plan) => plan,
                    Err(e) => {
                        eprintln!("cannot load fault plan {path}: {e}");
                        std::process::exit(2);
                    }
                };
                match chaos::install_global_fault_plan(plan) {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("--faults given more than once");
                        usage();
                    }
                    Err(e) => {
                        eprintln!("invalid fault plan {path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--sample-us" => {
                let v = value_of("--sample-us");
                match v.parse::<u64>() {
                    Ok(us) if us > 0 => tel_opts.sample_us = Some(us),
                    _ => {
                        eprintln!("--sample-us needs a positive integer, got '{v}'");
                        usage();
                    }
                }
            }
            other => args.push(other),
        }
    }
    let scale = if full { Scale::full() } else { Scale::detect() };
    if audit {
        if tel_opts.trace.is_none() {
            eprintln!("--audit needs a --trace file to replay");
            usage();
        }
        audit::enable_self_audit();
    }
    let tel = tel_opts.install();
    let table = entries();
    match args.as_slice() {
        ["list"] => {
            println!("{:<10} description", "name");
            println!("{}", "-".repeat(60));
            for e in &table {
                println!("{:<10} {}", e.name, e.about);
            }
        }
        ["run", "all"] => {
            for e in &table {
                eprintln!("\n>>> {}", e.name);
                (e.run)(scale);
            }
        }
        ["run", name] => match table.iter().find(|e| e.name == *name) {
            Some(e) => (e.run)(scale),
            None => {
                eprintln!("unknown experiment '{name}'; try `aequitas-sim list`");
                std::process::exit(2);
            }
        },
        _ => usage(),
    }
    if let Some(tel) = &tel {
        tel_opts.finish(tel);
    }
}
