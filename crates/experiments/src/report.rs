//! Table rendering for experiment output.
//!
//! The bench harness prints the same rows/series the paper reports; these
//! helpers keep the formatting uniform. When `AEQUITAS_CSV_DIR` is set,
//! every printed table is also written there as a CSV file (named from a
//! slug of the title) so the figures can be re-plotted with any tool.

use std::io::Write as _;
use std::path::PathBuf;

fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Slugify a table title into a file name.
fn slug(title: &str) -> String {
    let mut out = String::new();
    for ch in title.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
        if out.len() >= 60 {
            break;
        }
    }
    out.trim_matches('_').to_string()
}

/// Write a table as CSV into `$AEQUITAS_CSV_DIR`, if set. Errors are
/// reported but never fatal (the printed table is the primary output).
fn maybe_write_csv(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let Ok(dir) = std::env::var("AEQUITAS_CSV_DIR") else {
        return;
    };
    let path = PathBuf::from(dir).join(format!("{}.csv", slug(title)));
    let write = || -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(&path)?;
        writeln!(
            f,
            "{}",
            headers.iter().map(|h| csv_escape(h)).collect::<Vec<_>>().join(",")
        )?;
        for row in rows {
            writeln!(
                f,
                "{}",
                row.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(",")
            )?;
        }
        Ok(())
    };
    match write() {
        Ok(()) => println!("[csv written to {}]", path.display()),
        Err(e) => aequitas_telemetry::warn(
            "experiments.report",
            format!("csv export failed for {}: {e}", path.display()),
        ),
    }
}

/// Print a titled, aligned table. `headers.len()` must equal each row's
/// length.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch in table '{title}'");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(headers.iter().map(|s| s.to_string()).collect())
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
    maybe_write_csv(title, headers, rows);
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format an optional value, "-" when absent.
pub fn opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.254), "25.4%");
        assert_eq!(opt(Some(1.5), 1), "1.5");
        assert_eq!(opt(None, 2), "-");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "test",
            &["a", "bb"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333".into(), "4".into()],
            ],
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        print_table("bad", &["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn slugs_are_filesystem_safe() {
        assert_eq!(
            super::slug("Fig 12: 33-node 99.9p RNL (us)"),
            "fig_12_33_node_99_9p_rnl_us"
        );
        assert_eq!(super::slug("---"), "");
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(super::csv_escape("plain"), "plain");
        assert_eq!(super::csv_escape("a,b"), "\"a,b\"");
        assert_eq!(super::csv_escape("q\"q"), "\"q\"\"q\"");
    }
}
