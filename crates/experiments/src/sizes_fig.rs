//! Figs. 1 and 20: RPC size distributions and mixed-size SLO compliance.

use crate::harness::{run_macro, MacroSetup, PolicyChoice, Scale};
use crate::report::print_table;
use crate::slo::slo_config_33;
use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::{SimDuration, SimRng};
use aequitas_stats::Percentiles;
use aequitas_workloads::{QosClass, SizeDist};

// ---------------------------------------------------------------------------
// Fig. 1: per-class size CDFs.
// ---------------------------------------------------------------------------

/// Quantiles of one priority class's size distribution.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Class label.
    pub label: &'static str,
    /// (p10, p50, p90, p99, p99.9) in KB.
    pub quantiles_kb: [f64; 5],
}

/// Fig. 1: sampled quantiles of the production-like per-class size
/// distributions.
pub fn fig01() -> Vec<Fig1Row> {
    let mut rows = Vec::new();
    for (label, prio) in [
        ("PC", Priority::PerformanceCritical),
        ("NC", Priority::NonCritical),
        ("BE", Priority::BestEffort),
    ] {
        let dist = SizeDist::production_like(prio);
        let mut rng = SimRng::new(11);
        let mut p = Percentiles::new();
        for _ in 0..100_000 {
            p.record(dist.sample(&mut rng) as f64 / 1024.0);
        }
        rows.push(Fig1Row {
            label,
            quantiles_kb: [
                p.percentile(10.0).unwrap(),
                p.p50().unwrap(),
                p.percentile(90.0).unwrap(),
                p.p99().unwrap(),
                p.p999().unwrap(),
            ],
        });
    }
    rows
}

/// Print Fig. 1.
pub fn print_fig01(rows: &[Fig1Row]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let q = r.quantiles_kb;
            vec![
                r.label.to_string(),
                format!("{:.1}", q[0]),
                format!("{:.1}", q[1]),
                format!("{:.1}", q[2]),
                format!("{:.1}", q[3]),
                format!("{:.1}", q[4]),
            ]
        })
        .collect();
    print_table(
        "Fig 1: production-like RPC size distribution quantiles (KB)",
        &["class", "p10", "p50", "p90", "p99", "p99.9"],
        &table,
    );
}

// ---------------------------------------------------------------------------
// Fig. 20: mixed 32 KB / 64 KB channels.
// ---------------------------------------------------------------------------

/// Per-(size, QoS) tail of the mixed-size experiment, normalized per MTU.
#[derive(Debug, Clone)]
pub struct Fig20Result {
    /// 99.9p RNL per MTU (µs/MTU) for [32 KB, 64 KB] × [QoSh, QoSm, QoSl],
    /// without Aequitas.
    pub without: [[Option<f64>; 3]; 2],
    /// Same, with Aequitas.
    pub with: [[Option<f64>; 3]; 2],
    /// Normalized SLO (µs/MTU) for (QoSh, QoSm).
    pub slo_per_mtu: [f64; 2],
}

fn mixed_size_workload(size: u64) -> WorkloadSpec {
    WorkloadSpec {
        arrival: ArrivalProcess::BurstOnOff {
            mu: 0.8,
            rho: 1.4,
            period: SimDuration::from_us(100),
        },
        pattern: TrafficPattern::AllToAll,
        classes: vec![
            PrioritySpec {
                priority: Priority::PerformanceCritical,
                byte_share: 0.6,
                sizes: SizeDist::Fixed(size),
            },
            PrioritySpec {
                priority: Priority::NonCritical,
                byte_share: 0.3,
                sizes: SizeDist::Fixed(size),
            },
            PrioritySpec {
                priority: Priority::BestEffort,
                byte_share: 0.1,
                sizes: SizeDist::Fixed(size),
            },
        ],
        stop: None,
    }
}

fn run_mixed(scale: Scale, policy: PolicyChoice, seed: u64) -> [[Option<f64>; 3]; 2] {
    let n = 33;
    let mut setup = MacroSetup::star_3qos(n);
    setup.policy = policy;
    setup.duration = scale.pick(SimDuration::from_ms(44), SimDuration::from_ms(150));
    setup.warmup = scale.pick(SimDuration::from_ms(26), SimDuration::from_ms(80));
    setup.seed = seed;
    for h in 0..n {
        // Half the hosts send 32 KB RPCs, the other half 64 KB.
        let size = if h % 2 == 0 { 32_768 } else { 65_536 };
        setup.workloads[h] = Some(mixed_size_workload(size));
    }
    let r = run_macro(setup);
    let mut out = [[None; 3]; 2];
    for (si, size) in [32_768u64, 65_536].iter().enumerate() {
        for q in 0..3u8 {
            let mut p = Percentiles::new();
            for c in r
                .completions
                .iter()
                .filter(|c| c.size_bytes == *size && c.qos_run == QosClass(q))
            {
                p.record(c.rnl_per_mtu().as_us_f64());
            }
            out[si][q as usize] = p.p999();
        }
    }
    out
}

/// Fig. 20: half the hosts issue 32 KB RPCs, the rest 64 KB; Aequitas's
/// per-MTU normalized SLO keeps both size classes compliant.
pub fn fig20(scale: Scale) -> Fig20Result {
    Fig20Result {
        without: run_mixed(scale, PolicyChoice::Static, 2001),
        with: run_mixed(scale, PolicyChoice::Aequitas(slo_config_33()), 2002),
        slo_per_mtu: [15.0 / 8.0, 25.0 / 8.0],
    }
}

/// Print Fig. 20.
pub fn print_fig20(r: &Fig20Result) {
    let mut rows = Vec::new();
    for (si, label) in ["32KB", "64KB"].iter().enumerate() {
        for (qi, qos) in ["QoSh", "QoSm", "QoSl"].iter().enumerate() {
            rows.push(vec![
                label.to_string(),
                qos.to_string(),
                if qi < 2 {
                    format!("{:.2}", r.slo_per_mtu[qi])
                } else {
                    "-".into()
                },
                crate::report::opt(r.without[si][qi], 2),
                crate::report::opt(r.with[si][qi], 2),
            ]);
        }
    }
    print_table(
        "Fig 20: mixed 32/64KB RPCs, 99.9p RNL per MTU (us/MTU)",
        &["size", "QoS", "SLO/MTU", "w/o Aequitas", "w/ Aequitas"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_classes_ordered_but_overlapping() {
        let rows = fig01();
        let pc = &rows[0].quantiles_kb;
        let nc = &rows[1].quantiles_kb;
        let be = &rows[2].quantiles_kb;
        assert!(pc[1] < nc[1] && nc[1] < be[1], "medians ordered");
        // PC's p99.9 overlaps NC's median region (large PC RPCs exist).
        assert!(pc[4] > nc[1]);
    }

    #[test]
    fn fig20_normalized_slo_holds_for_both_sizes() {
        let r = fig20(Scale::quick());
        for si in 0..2 {
            let h = r.with[si][0].expect("QoSh samples");
            assert!(
                h < r.slo_per_mtu[0] * 2.8,
                "size {si}: normalized QoSh tail {h} vs SLO {}",
                r.slo_per_mtu[0]
            );
            // Without Aequitas the overload blows through the target.
            let wo = r.without[si][0].expect("QoSh samples");
            assert!(wo > h, "without {wo} should exceed with {h}");
        }
    }
}
