//! Figs. 14, 15, 16: admissible share, QoS-mix convergence, burstiness.

use crate::harness::{run_macro, MacroSetup, PolicyChoice, Scale};
use crate::report::{f1, print_table};
use crate::slo::{admitted_mix, node33_workload, p999_rnl_us, slo_config_33};
use aequitas_sim_core::SimDuration;
use aequitas_stats::fit_inverse;
use aequitas_workloads::QosClass;

fn setup_33(scale: Scale, mix: [f64; 3], policy: PolicyChoice, seed: u64) -> MacroSetup {
    let n = 33;
    let mut setup = MacroSetup::star_3qos(n);
    setup.policy = policy;
    setup.duration = scale.pick(SimDuration::from_ms(44), SimDuration::from_ms(150));
    setup.warmup = scale.pick(SimDuration::from_ms(26), SimDuration::from_ms(80));
    setup.seed = seed;
    for h in 0..n {
        setup.workloads[h] = Some(node33_workload(mix, None));
    }
    setup
}

// ---------------------------------------------------------------------------
// Fig. 14: baseline RNL versus QoSh-share.
// ---------------------------------------------------------------------------

/// One Fig. 14 point.
#[derive(Debug, Clone, Copy)]
pub struct Fig14Point {
    /// Input QoSh-share (%).
    pub share_pct: f64,
    /// Per-QoS 99.9p RNL (µs).
    pub p999_us: [Option<f64>; 3],
}

/// Fig. 14 result.
pub struct Fig14Result {
    /// Sweep points.
    pub points: Vec<Fig14Point>,
}

/// Fig. 14: 33-node, **no Aequitas**, QoSh-share swept 5–70% with QoSm fixed
/// at 25%; the share where QoSh's tail crosses 15 µs defines the maximal
/// admissible share used by Figs. 15/16.
pub fn fig14(scale: Scale) -> Fig14Result {
    let sweep = vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0, 60.0, 70.0];
    let points = crate::parallel::run_sweep(sweep, |share| {
        let x = share / 100.0;
        let mix = [x, 0.25, (1.0_f64 - x - 0.25).max(0.0)];
        let r = run_macro(setup_33(scale, mix, PolicyChoice::Static, 1400 + share as u64));
        Fig14Point {
            share_pct: share,
            p999_us: [
                p999_rnl_us(&r.completions, QosClass(0)),
                p999_rnl_us(&r.completions, QosClass(1)),
                p999_rnl_us(&r.completions, QosClass(2)),
            ],
        }
    });
    Fig14Result { points }
}

/// Print Fig. 14.
pub fn print_fig14(r: &Fig14Result) {
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.share_pct),
                crate::report::opt(p.p999_us[0], 1),
                crate::report::opt(p.p999_us[1], 1),
                crate::report::opt(p.p999_us[2], 1),
            ]
        })
        .collect();
    print_table(
        "Fig 14: baseline (w/o Aequitas) 99.9p RNL (us) vs input QoSh-share (QoSm=25%)",
        &["QoSh-share", "QoSh", "QoSm", "QoSl"],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// Fig. 15: admitted mix converges to the target regardless of input mix.
// ---------------------------------------------------------------------------

/// One Fig. 15 column.
#[derive(Debug, Clone)]
pub struct Fig15Column {
    /// Input QoS-mix (%).
    pub input: [f64; 3],
    /// Admitted QoS-mix (%).
    pub admitted: [f64; 3],
    /// QoSh 99.9p RNL (µs) of admitted traffic.
    pub qosh_p999_us: Option<f64>,
}

/// Fig. 15 result.
pub struct Fig15Result {
    /// The target mix implied by the SLOs (from Fig. 14: ~25/25/50).
    pub target: [f64; 3],
    /// One column per input mix.
    pub columns: Vec<Fig15Column>,
}

/// Fig. 15: four input mixes, Aequitas configured with the 15/25 µs SLOs.
pub fn fig15(scale: Scale) -> Fig15Result {
    let inputs = [
        [0.25, 0.25, 0.50],
        [0.60, 0.30, 0.10],
        [0.50, 0.30, 0.20],
        [0.40, 0.40, 0.20],
    ];
    let sweep: Vec<(usize, [f64; 3])> = inputs.into_iter().enumerate().collect();
    let columns = crate::parallel::run_sweep(sweep, |(k, input)| {
        let r = run_macro(setup_33(
            scale,
            input,
            PolicyChoice::Aequitas(slo_config_33()),
            1500 + k as u64,
        ));
        let adm = admitted_mix(&r.completions, 3);
        Fig15Column {
            input: input.map(|v| v * 100.0),
            admitted: [adm[0] * 100.0, adm[1] * 100.0, adm[2] * 100.0],
            qosh_p999_us: p999_rnl_us(&r.completions, QosClass::HIGH),
        }
    });
    Fig15Result {
        target: [25.0, 25.0, 50.0],
        columns,
    }
}

/// Print Fig. 15.
pub fn print_fig15(r: &Fig15Result) {
    let mut rows = Vec::new();
    for c in &r.columns {
        rows.push(vec![
            format!("{:.0}/{:.0}/{:.0}", c.input[0], c.input[1], c.input[2]),
            format!(
                "{:.1}/{:.1}/{:.1}",
                c.admitted[0], c.admitted[1], c.admitted[2]
            ),
            crate::report::opt(c.qosh_p999_us, 1),
        ]);
    }
    print_table(
        &format!(
            "Fig 15: admitted QoS-mix vs input mix (target ~{:.0}/{:.0}/{:.0}, SLOs 15/25us)",
            r.target[0], r.target[1], r.target[2]
        ),
        &["input mix", "admitted mix", "QoSh 99.9p RNL (us)"],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// Fig. 16: admitted share is inversely proportional to burstiness.
// ---------------------------------------------------------------------------

/// One Fig. 16 point.
#[derive(Debug, Clone, Copy)]
pub struct Fig16Point {
    /// Burst load ρ.
    pub rho: f64,
    /// Admitted QoSh-share (%).
    pub share_pct: f64,
}

/// Fig. 16 result.
pub struct Fig16Result {
    /// Sweep points.
    pub points: Vec<Fig16Point>,
    /// Fitted constant of `share = C / rho`.
    pub fit_c: f64,
    /// Mean relative deviation from the fit.
    pub fit_err: f64,
}

/// Fig. 16: vary the burst load ρ and record the admitted QoSh-share.
pub fn fig16(scale: Scale) -> Fig16Result {
    let sweep: Vec<(usize, f64)> = [1.4, 1.6, 1.8, 2.0, 2.2]
        .into_iter()
        .enumerate()
        .collect();
    let points = crate::parallel::run_sweep(sweep, |(k, rho)| {
        let n = 33;
        let mut setup = setup_33(
            scale,
            [0.6, 0.3, 0.1],
            PolicyChoice::Aequitas(slo_config_33()),
            1600 + k as u64,
        );
        for h in 0..n {
            let mut w = node33_workload([0.6, 0.3, 0.1], None);
            w.arrival = aequitas_rpc::ArrivalProcess::BurstOnOff {
                mu: 0.8,
                rho,
                period: SimDuration::from_us(100),
            };
            setup.workloads[h] = Some(w);
        }
        let r = run_macro(setup);
        let adm = admitted_mix(&r.completions, 3);
        Fig16Point {
            rho,
            share_pct: adm[0] * 100.0,
        }
    });
    let xs: Vec<f64> = points.iter().map(|p| p.rho).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.share_pct).collect();
    let fit_c = fit_inverse(&xs, &ys);
    let fit_err = points
        .iter()
        .map(|p| ((p.share_pct - fit_c / p.rho) / p.share_pct).abs())
        .sum::<f64>()
        / points.len() as f64;
    Fig16Result {
        points,
        fit_c,
        fit_err,
    }
}

/// Print Fig. 16.
pub fn print_fig16(r: &Fig16Result) {
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                f1(p.rho),
                f1(p.share_pct),
                f1(r.fit_c / p.rho),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig 16: admitted QoSh-share vs burst load (fit C/rho, C={:.1}, mean err {:.1}%)",
            r.fit_c,
            r.fit_err * 100.0
        ),
        &["rho", "admitted share %", "C/rho"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_rnl_grows_with_share() {
        // Trimmed sweep for test speed: compare a low and a high share.
        let scale = Scale::quick();
        let lo = run_macro(setup_33(
            scale,
            [0.10, 0.25, 0.65],
            PolicyChoice::Static,
            77,
        ));
        let hi = run_macro(setup_33(
            scale,
            [0.60, 0.25, 0.15],
            PolicyChoice::Static,
            78,
        ));
        let lo_h = p999_rnl_us(&lo.completions, QosClass::HIGH).unwrap();
        let hi_h = p999_rnl_us(&hi.completions, QosClass::HIGH).unwrap();
        assert!(
            hi_h > lo_h * 2.0,
            "QoSh tail should inflate with share: {lo_h} -> {hi_h}"
        );
    }

    #[test]
    fn fig15_converges_toward_target_mix() {
        let r = fig15(Scale::quick());
        // The figure's core claim: the admitted mix is *independent of the
        // input mix* — Aequitas ends the race to the top because offering
        // more QoSh does not buy more admitted QoSh. Check the spread of
        // admitted QoSh across the four inputs.
        let shares: Vec<f64> = r.columns.iter().map(|c| c.admitted[0]).collect();
        let lo = shares.iter().cloned().fold(f64::MAX, f64::min);
        let hi = shares.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            hi - lo < 6.0,
            "admitted QoSh should be input-independent: {shares:?}"
        );
        for c in &r.columns {
            // In the target's ballpark (quick-scale equilibrium sits
            // under-admitted; see EXPERIMENTS.md on the calibration rate).
            assert!(
                c.admitted[0] > 10.0 && c.admitted[0] < 40.0,
                "input {:?} admitted {:?}",
                c.input,
                c.admitted
            );
            // SLO within the quick-scale equilibrium envelope (2x).
            assert!(c.qosh_p999_us.unwrap() < 15.0 * 2.0, "{c:?}");
        }
    }

    #[test]
    fn fig16_share_decreases_with_burstiness() {
        // Two-point version for speed.
        let scale = Scale::quick();
        let shares: Vec<f64> = [1.4f64, 2.2]
            .iter()
            .enumerate()
            .map(|(k, rho)| {
                let n = 33;
                let mut setup = setup_33(
                    scale,
                    [0.6, 0.3, 0.1],
                    PolicyChoice::Aequitas(slo_config_33()),
                    1700 + k as u64,
                );
                for h in 0..n {
                    let mut w = node33_workload([0.6, 0.3, 0.1], None);
                    w.arrival = aequitas_rpc::ArrivalProcess::BurstOnOff {
                        mu: 0.8,
                        rho: *rho,
                        period: SimDuration::from_us(100),
                    };
                    setup.workloads[h] = Some(w);
                }
                let r = run_macro(setup);
                admitted_mix(&r.completions, 3)[0]
            })
            .collect();
        assert!(
            shares[1] < shares[0],
            "share should fall with rho: {shares:?}"
        );
    }
}
