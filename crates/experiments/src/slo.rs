//! Figs. 11, 12, 13: SLO compliance.

use crate::harness::{
    run_macro_controlled, run_macro_sampled, MacroResult, MacroSetup, PolicyChoice,
    Scale,
};
use crate::report::{f1, print_table};
use aequitas::{AequitasConfig, SloTarget};
use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, RpcCompletion, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::{SimDuration, SimTime};
use aequitas_stats::Percentiles;
use aequitas_netsim::QueueKind;
use aequitas_workloads::{QosClass, QosMapping, SizeDist};

/// 99.9th-percentile RNL (µs) of RPCs that *ran* on `qos`.
pub fn p999_rnl_us(completions: &[RpcCompletion], qos: QosClass) -> Option<f64> {
    let mut p = Percentiles::new();
    for c in completions.iter().filter(|c| c.qos_run == qos) {
        p.record(c.rnl().as_us_f64());
    }
    p.p999()
}

/// Share of completed bytes that ran on each QoS class (the admitted
/// QoS-mix).
pub fn admitted_mix(completions: &[RpcCompletion], classes: usize) -> Vec<f64> {
    let mut bytes = vec![0u64; classes];
    for c in completions {
        bytes[c.qos_run.index()] += c.size_bytes;
    }
    let total: u64 = bytes.iter().sum();
    if total == 0 {
        return vec![0.0; classes];
    }
    bytes.iter().map(|&b| b as f64 / total as f64).collect()
}

// ---------------------------------------------------------------------------
// Fig. 11
// ---------------------------------------------------------------------------

/// One Fig. 11 sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Point {
    /// The QoSh SLO (µs, absolute for 32 KB RPCs).
    pub slo_us: f64,
    /// Achieved 99.9p RNL of admitted QoSh RPCs (µs).
    pub p999_us: Option<f64>,
    /// Admitted QoSh share of bytes.
    pub qosh_share: f64,
}

/// Fig. 11 result.
pub struct Fig11Result {
    /// Sweep points.
    pub points: Vec<Fig11Point>,
}

fn fig11_workload() -> WorkloadSpec {
    WorkloadSpec {
        arrival: ArrivalProcess::Uniform { load: 1.0 },
        pattern: TrafficPattern::ManyToOne { dst: 2 },
        classes: vec![
            PrioritySpec {
                priority: Priority::PerformanceCritical,
                byte_share: 0.7,
                sizes: SizeDist::Fixed(32_768),
            },
            PrioritySpec {
                priority: Priority::BestEffort,
                byte_share: 0.3,
                sizes: SizeDist::Fixed(32_768),
            },
        ],
        stop: None,
    }
}

/// Fig. 11: two line-rate channels of 32 KB WRITEs (70% QoSh / 30% QoSl)
/// into one server; the QoSh SLO is swept from 15 µs to 60 µs.
pub fn fig11(scale: Scale) -> Fig11Result {
    fig11_configured(scale, crate::parallel::worker_threads(), QueueKind::Calendar)
}

/// [`fig11`] with an explicit sweep worker count and engine event-queue
/// backend. The result must not depend on either knob — the determinism
/// integration test runs this at 1 vs N workers and heap vs calendar and
/// asserts identical output.
pub fn fig11_configured(scale: Scale, threads: usize, queue: QueueKind) -> Fig11Result {
    let sweep: &[f64] = if scale.full {
        &[15.0, 20.0, 25.0, 30.0, 40.0, 50.0, 60.0]
    } else {
        &[15.0, 25.0, 40.0, 60.0]
    };
    let points = crate::parallel::run_sweep_on(threads, sweep.to_vec(), |slo_us| {
        fig11_point(scale, slo_us, queue, 1.0)
    });
    Fig11Result { points }
}

/// A fast Fig. 11 probe for the determinism gate: two sweep points at 5% of
/// the normal duration. The absolute numbers are far from equilibrium and
/// meaningless as a reproduction — what matters is that the output is a
/// pure function of the setup, so running it at 1 vs N sweep workers and
/// heap vs calendar event queues must agree bit-for-bit. The full-length
/// variant ([`fig11_configured`]) stays available behind `--ignored`.
pub fn fig11_invariance_probe(threads: usize, queue: QueueKind) -> Fig11Result {
    let points = crate::parallel::run_sweep_on(threads, vec![15.0, 40.0], |slo_us| {
        fig11_point(Scale::quick(), slo_us, queue, 0.05)
    });
    Fig11Result { points }
}

fn fig11_point(scale: Scale, slo_us: f64, queue: QueueKind, duration_factor: f64) -> Fig11Point {
    {
        let mut setup = MacroSetup::star_3qos(3);
        setup.engine = aequitas_netsim::EngineConfig::default_2qos();
        setup.engine.event_queue = queue;
        setup.mapping = QosMapping::two_level();
        setup.policy = PolicyChoice::Aequitas(AequitasConfig::two_qos(SloTarget::absolute(
            SimDuration::from_us_f64(slo_us),
            8,
            99.9,
        )));
        // The additive-increase clock ticks once per increment window
        // (SLO-dependent: 1000x the per-MTU target at 99.9p). The initial
        // transient overshoots the admit probability toward the floor
        // (stale backlogged RPCs keep missing long after p drops), and the
        // climb back runs at alpha per window — so the run must cover on
        // the order of a hundred windows to reach equilibrium.
        let window_ms = slo_us / 8.0; // per-MTU target in us == window in ms at 99.9p
        let base = 40.0 + 100.0 * window_ms;
        setup.duration = scale
            .pick(
                SimDuration::from_secs_f64(base / 1e3),
                SimDuration::from_secs_f64(base * 3.0 / 1e3),
            )
            .mul_f64(duration_factor);
        setup.warmup = setup.duration.mul_f64(0.5);
        setup.seed = 42 + slo_us as u64;
        setup.workloads[0] = Some(fig11_workload());
        setup.workloads[1] = Some(fig11_workload());
        // The admitted share must be measured at *issue* time: under
        // sustained line-rate overload the scavenger class's sender queues
        // grow without bound, so downgraded RPCs rarely complete inside the
        // window and completion-based shares are survivor-biased.
        let warm_t = SimTime::ZERO + setup.warmup;
        let mut at_warm: Option<Vec<(u64, u64)>> = None;
        let mut at_end: Vec<(u64, u64)> = vec![(0, 0); 2];
        let r = run_macro_controlled(setup, SimDuration::from_ms(2), |eng, now| {
            let counters: Vec<(u64, u64)> = (0..2)
                .map(|h| {
                    eng.agents()[h]
                        .stack()
                        .admission_counters()
                        .unwrap_or((0, 0))
                })
                .collect();
            if now >= warm_t && at_warm.is_none() {
                at_warm = Some(counters.clone());
            }
            at_end = counters;
        });
        let warm_counters = at_warm.unwrap_or_else(|| vec![(0, 0); 2]);
        let issued: u64 = (0..2).map(|h| at_end[h].0 - warm_counters[h].0).sum();
        let downgraded: u64 = (0..2).map(|h| at_end[h].1 - warm_counters[h].1).sum();
        // 70% of issues are PC; the admitted-on-QoSh share of all issued
        // bytes (equal sizes) is 0.7 minus the downgraded fraction.
        let qosh_share = 0.7 - downgraded as f64 / issued.max(1) as f64;
        Fig11Point {
            slo_us,
            p999_us: p999_rnl_us(&r.completions, QosClass::HIGH),
            qosh_share,
        }
    }
}

/// Print Fig. 11.
pub fn print_fig11(r: &Fig11Result) {
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                f1(p.slo_us),
                crate::report::opt(p.p999_us, 1),
                format!("{:.1}%", p.qosh_share * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig 11: achieved 99.9p RNL tracks the QoSh SLO (3-node, 32KB, 70/30 h/l)",
        &["QoSh SLO (us)", "99.9p RNL (us)", "admitted QoSh-share"],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// Figs. 12 & 13
// ---------------------------------------------------------------------------

/// Result of the 33-node SLO-compliance experiment.
pub struct Fig12Result {
    /// SLOs (µs) for (QoSh, QoSm).
    pub slo_us: [f64; 2],
    /// Per-QoS 99.9p RNL without Aequitas (µs).
    pub without: [Option<f64>; 3],
    /// Per-QoS 99.9p RNL with Aequitas (µs).
    pub with: [Option<f64>; 3],
    /// Fig. 13: sampled outstanding RPCs per switch port, (QoSh+QoSm, QoSl),
    /// without Aequitas.
    pub outstanding_without: (Percentiles, Percentiles),
    /// Fig. 13 samples with Aequitas.
    pub outstanding_with: (Percentiles, Percentiles),
}

/// The paper's 33-node all-to-all workload: input QoS-mix (0.6, 0.3, 0.1),
/// 32 KB RPCs, burst arrivals μ=0.8 / ρ=1.4.
pub fn node33_workload(mix: [f64; 3], stop: Option<SimTime>) -> WorkloadSpec {
    WorkloadSpec {
        arrival: ArrivalProcess::BurstOnOff {
            mu: 0.8,
            rho: 1.4,
            period: SimDuration::from_us(100),
        },
        pattern: TrafficPattern::AllToAll,
        classes: vec![
            PrioritySpec {
                priority: Priority::PerformanceCritical,
                byte_share: mix[0],
                sizes: SizeDist::Fixed(32_768),
            },
            PrioritySpec {
                priority: Priority::NonCritical,
                byte_share: mix[1],
                sizes: SizeDist::Fixed(32_768),
            },
            PrioritySpec {
                priority: Priority::BestEffort,
                byte_share: mix[2],
                sizes: SizeDist::Fixed(32_768),
            },
        ],
        stop,
    }
}

/// The paper's SLO settings for the 33-node runs: 15 µs / 25 µs at 99.9p
/// (absolute, for 32 KB = 8 MTU RPCs).
pub fn slo_config_33() -> AequitasConfig {
    AequitasConfig::three_qos(
        SloTarget::absolute(SimDuration::from_us(15), 8, 99.9),
        SloTarget::absolute(SimDuration::from_us(25), 8, 99.9),
    )
}

fn run_33node(scale: Scale, policy: PolicyChoice, seed: u64) -> (MacroResult, Percentiles, Percentiles) {
    let n = 33;
    let mut setup = MacroSetup::star_3qos(n);
    setup.policy = policy;
    setup.duration = scale.pick(SimDuration::from_ms(44), SimDuration::from_ms(150));
    setup.warmup = scale.pick(SimDuration::from_ms(26), SimDuration::from_ms(80));
    setup.seed = seed;
    for h in 0..n {
        setup.workloads[h] = Some(node33_workload([0.6, 0.3, 0.1], None));
    }
    let warm = SimTime::ZERO + setup.warmup;
    let mut out_hm = Percentiles::new();
    let mut out_l = Percentiles::new();
    let result = run_macro_sampled(setup, SimDuration::from_us(50), |eng, now| {
        if now < warm {
            return;
        }
        // Outstanding-RPC proxy: queued packets per switch egress port,
        // divided by the 8 packets of a 32 KB RPC.
        let sw = aequitas_netsim::SwitchId(0);
        for port in 0..n {
            let hm = eng.switch_port_class_packets(sw, port, 0)
                + eng.switch_port_class_packets(sw, port, 1);
            let l = eng.switch_port_class_packets(sw, port, 2);
            out_hm.record(hm as f64 / 8.0);
            out_l.record(l as f64 / 8.0);
        }
    });
    (result, out_hm, out_l)
}

/// Run Figs. 12/13.
pub fn fig12(scale: Scale) -> Fig12Result {
    let (without, w_hm, w_l) = run_33node(scale, PolicyChoice::Static, 1001);
    let (with, a_hm, a_l) = run_33node(scale, PolicyChoice::Aequitas(slo_config_33()), 1002);
    let q = |r: &MacroResult, c: u8| p999_rnl_us(&r.completions, QosClass(c));
    Fig12Result {
        slo_us: [15.0, 25.0],
        without: [q(&without, 0), q(&without, 1), q(&without, 2)],
        with: [q(&with, 0), q(&with, 1), q(&with, 2)],
        outstanding_without: (w_hm, w_l),
        outstanding_with: (a_hm, a_l),
    }
}

/// Print Fig. 12.
pub fn print_fig12(r: &Fig12Result) {
    let rows = vec![
        vec![
            "QoSh".to_string(),
            f1(r.slo_us[0]),
            crate::report::opt(r.without[0], 1),
            crate::report::opt(r.with[0], 1),
        ],
        vec![
            "QoSm".to_string(),
            f1(r.slo_us[1]),
            crate::report::opt(r.without[1], 1),
            crate::report::opt(r.with[1], 1),
        ],
        vec![
            "QoSl".to_string(),
            "-".to_string(),
            crate::report::opt(r.without[2], 1),
            crate::report::opt(r.with[2], 1),
        ],
    ];
    print_table(
        "Fig 12: 33-node 99.9p RNL (us) vs SLO, w/o and w/ Aequitas",
        &["QoS", "SLO", "w/o Aequitas", "w/ Aequitas"],
        &rows,
    );
}

/// Print Fig. 13 (outstanding-RPC CDB tail summary).
pub fn print_fig13(r: &mut Fig12Result) {
    let rows = vec![
        vec![
            "QoSh+QoSm".to_string(),
            crate::report::opt(r.outstanding_without.0.p50(), 2),
            crate::report::opt(r.outstanding_without.0.p99(), 2),
            crate::report::opt(r.outstanding_with.0.p50(), 2),
            crate::report::opt(r.outstanding_with.0.p99(), 2),
        ],
        vec![
            "QoSl".to_string(),
            crate::report::opt(r.outstanding_without.1.p50(), 2),
            crate::report::opt(r.outstanding_without.1.p99(), 2),
            crate::report::opt(r.outstanding_with.1.p50(), 2),
            crate::report::opt(r.outstanding_with.1.p99(), 2),
        ],
    ];
    print_table(
        "Fig 13: outstanding RPCs per switch port (w/o -> w/ Aequitas)",
        &["classes", "p50 w/o", "p99 w/o", "p50 w/", "p99 w/"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_rnl_tracks_slo_and_share_grows() {
        let r = fig11(Scale::quick());
        // Achieved tail stays in the neighbourhood of the SLO (within 40%
        // at quick scale) for the middle of the sweep.
        for p in &r.points {
            let got = p.p999_us.expect("measurements exist");
            assert!(
                got < p.slo_us * 1.5,
                "SLO {} us but achieved {} us",
                p.slo_us,
                got
            );
        }
        // Looser SLOs admit at least as much traffic (allow small noise).
        let first = r.points.first().unwrap().qosh_share;
        let last = r.points.last().unwrap().qosh_share;
        assert!(
            last > first,
            "share should grow with SLO: {first} -> {last}"
        );
    }

    /// Quick-scale restoration claim (Fig. 12): without Aequitas the SLOs
    /// are missed badly; with it, admitted QoSh/QoSm traffic lands near
    /// the SLOs and the scavenger is not sacrificed.
    #[test]
    fn fig12_aequitas_restores_slos() {
        let mut r = fig12(Scale::quick());
        let slo_h = r.slo_us[0];
        let slo_m = r.slo_us[1];
        // Without Aequitas the SLOs are missed badly under 1.4x overload.
        assert!(r.without[0].unwrap() > slo_h * 1.5, "{:?}", r.without);
        // With Aequitas the admitted traffic lands on/near the SLOs. The
        // thin per-channel rates of a 32-way fan-out equilibrate the AIMD
        // loop slightly above the target at quick scale (see EXPERIMENTS.md
        // on the calibration rate), so allow 2x here; full scale tightens.
        assert!(
            r.with[0].unwrap() < slo_h * 2.0,
            "QoSh {:?} vs SLO {slo_h}",
            r.with[0]
        );
        assert!(
            r.with[1].unwrap() < slo_m * 2.0,
            "QoSm {:?} vs SLO {slo_m}",
            r.with[1]
        );
        // And the improvement over no-admission-control is the headline.
        assert!(
            r.without[0].unwrap() > r.with[0].unwrap() * 2.0,
            "Aequitas should cut the QoSh tail at least in half: {:?} -> {:?}",
            r.without[0],
            r.with[0]
        );
        // The paper's full-scale run also shows QoSl improving outright.
        // At quick scale that margin is within noise, so this test only
        // pins the restoration claim: the scavenger must not be crushed to
        // pay for it (bounded regression, not strict improvement).
        assert!(
            r.with[2].unwrap() < r.without[2].unwrap() * 1.5,
            "QoSl should not degrade materially: {:?} -> {:?}",
            r.without[2],
            r.with[2]
        );
        // Fig 13: the high-class outstanding tail shrinks.
        let tail_wo = r.outstanding_without.0.p99().unwrap();
        let tail_w = r.outstanding_with.0.p99().unwrap();
        assert!(
            tail_w < tail_wo,
            "outstanding p99 should shrink: {tail_wo} -> {tail_w}"
        );
    }
}
