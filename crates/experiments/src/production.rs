//! Figs. 3, 4, 5, 24: production phenomena reproduced on synthetic
//! substrates.
//!
//! The paper's production data is proprietary; these experiments model the
//! published statistics (see DESIGN.md):
//!
//! * Fig. 3 — a congestion episode: a 3-node cluster whose offered load
//!   steps up to 8× and back, showing RNL tails tracking load.
//! * Figs. 4/5 — the synthetic fleet's priority↔QoS misalignment and the
//!   race-to-the-top drift.
//! * Fig. 24 — a staged Phase-1 rollout: misalignment falls to ~0 over the
//!   weeks, and per-cluster 99ᵗʰ-p RNL improves; the RNL change is evaluated
//!   with the WFQ fluid model applied to each cluster's before/after
//!   QoS-mix.

use crate::harness::{run_macro, MacroSetup, Scale};
use crate::report::{f1, print_table};
use aequitas::{Fleet, FleetConfig};
use aequitas_analysis::{fluid_delays, FluidSpec};
use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::{SimDuration};
use aequitas_stats::Percentiles;
use aequitas_workloads::SizeDist;

// ---------------------------------------------------------------------------
// Fig. 3: congestion episode.
// ---------------------------------------------------------------------------

/// One time window of the congestion episode.
#[derive(Debug, Clone, Copy)]
pub struct EpisodeWindow {
    /// Offered load multiplier versus baseline.
    pub load_x: f64,
    /// 99p RNL in this window (µs).
    pub p99_us: Option<f64>,
}

/// Fig. 3 result: load and latency per window.
pub struct Fig3Result {
    /// Windows in time order.
    pub windows: Vec<EpisodeWindow>,
}

/// Fig. 3: load steps 1× → 4× → 8× → 1× on a shared port; RNL tails follow.
pub fn fig03(scale: Scale) -> Fig3Result {
    let phase = scale.pick(SimDuration::from_ms(6), SimDuration::from_ms(25));
    let loads: Vec<(usize, f64)> = [0.25, 1.0, 2.0, 0.25].into_iter().enumerate().collect();
    // Each phase is warmed independently, so the windows fan out.
    let windows = crate::parallel::run_sweep(loads, |(k, load_x)| {
        // Each phase is run as its own (warmed) segment: two senders share
        // one downlink, each at load_x * 0.25 of line rate (so 2.0 -> 4x the
        // baseline offered bytes, overloading the port at 1.0 aggregate).
        let mut setup = MacroSetup::star_3qos(3);
        setup.duration = phase;
        setup.warmup = phase.mul_f64(0.3);
        setup.seed = 300 + k as u64;
        for h in 0..2 {
            setup.workloads[h] = Some(WorkloadSpec {
                arrival: ArrivalProcess::Poisson { load: load_x * 0.25 },
                pattern: TrafficPattern::ManyToOne { dst: 2 },
                classes: vec![PrioritySpec {
                    priority: Priority::PerformanceCritical,
                    byte_share: 1.0,
                    sizes: SizeDist::Fixed(32_768),
                }],
                stop: None,
            });
        }
        let r = run_macro(setup);
        let mut p = Percentiles::new();
        for c in &r.completions {
            p.record(c.rnl().as_us_f64());
        }
        EpisodeWindow {
            load_x: load_x * 4.0, // relative to the 0.25 baseline
            p99_us: p.p99(),
        }
    });
    Fig3Result { windows }
}

/// Print Fig. 3.
pub fn print_fig03(r: &Fig3Result) {
    let rows: Vec<Vec<String>> = r
        .windows
        .iter()
        .enumerate()
        .map(|(k, w)| {
            vec![
                format!("phase {k}"),
                format!("{:.0}x", w.load_x),
                crate::report::opt(w.p99_us, 1),
            ]
        })
        .collect();
    print_table(
        "Fig 3: congestion episode — offered load vs 99p RNL (us)",
        &["window", "load", "99p RNL"],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// Figs. 4/5: fleet snapshot and drift.
// ---------------------------------------------------------------------------

/// Fig. 4/5 result.
pub struct Fig45Result {
    /// `[priority][qos]` traffic shares (%), pre-Aequitas.
    pub matrix_pct: [[f64; 3]; 3],
    /// QoS-mix (%) over simulated half-years of race-to-the-top drift.
    pub drift: Vec<[f64; 3]>,
}

/// Compute Figs. 4/5 from the synthetic fleet.
pub fn fig04_05() -> Fig45Result {
    let fleet = Fleet::synthetic(FleetConfig::default());
    let m = fleet.traffic_matrix();
    let mut matrix_pct = [[0.0; 3]; 3];
    for p in 0..3 {
        let total: f64 = m[p].iter().sum();
        for q in 0..3 {
            matrix_pct[p][q] = 100.0 * m[p][q] / total;
        }
    }
    let mut fleet = fleet;
    let mut drift = vec![fleet.qos_mix().map(|v| v * 100.0)];
    for _ in 0..4 {
        for _ in 0..6 {
            fleet.race_to_top_step(0.02);
        }
        drift.push(fleet.qos_mix().map(|v| v * 100.0));
    }
    Fig45Result { matrix_pct, drift }
}

/// Print Figs. 4/5.
pub fn print_fig04_05(r: &Fig45Result) {
    let rows: Vec<Vec<String>> = ["PC", "NC", "BE"]
        .iter()
        .enumerate()
        .map(|(p, label)| {
            vec![
                label.to_string(),
                f1(r.matrix_pct[p][0]),
                f1(r.matrix_pct[p][1]),
                f1(r.matrix_pct[p][2]),
            ]
        })
        .collect();
    print_table(
        "Fig 4: priority vs network QoS misalignment (% of class traffic)",
        &["priority", "QoSh", "QoSm", "QoSl"],
        &rows,
    );
    let rows: Vec<Vec<String>> = r
        .drift
        .iter()
        .enumerate()
        .map(|(k, mix)| {
            vec![
                format!("{:.1}y", k as f64 * 0.5),
                f1(mix[0]),
                f1(mix[1]),
                f1(mix[2]),
            ]
        })
        .collect();
    print_table(
        "Fig 5: race-to-the-top QoS-mix drift over time (%)",
        &["time", "QoSh", "QoSm", "QoSl"],
        &rows,
    );
}

// ---------------------------------------------------------------------------
// Fig. 24: Phase-1 rollout.
// ---------------------------------------------------------------------------

/// One rollout week.
#[derive(Debug, Clone, Copy)]
pub struct RolloutWeek {
    /// Misalignment % per priority (PC, NC, BE) and total.
    pub misalignment_pct: [f64; 4],
}

/// Fig. 24 result.
pub struct Fig24Result {
    /// Weekly misalignment trajectory.
    pub weeks: Vec<RolloutWeek>,
    /// Per-cluster 99p-RNL change (%) after full alignment, from the fluid
    /// WFQ model applied to each cluster's QoSh before/after mix.
    pub rnl_change_pct: Vec<f64>,
}

/// Run the Phase-1 rollout over a population of sampled clusters.
pub fn fig24(clusters: usize) -> Fig24Result {
    // Weekly misalignment trajectory on one big fleet.
    let mut fleet = Fleet::synthetic(FleetConfig::default());
    let mut weeks = Vec::new();
    for week in 0..6 {
        let by_prio = fleet.misalignment_by_priority();
        weeks.push(RolloutWeek {
            misalignment_pct: [
                by_prio[0] * 100.0,
                by_prio[1] * 100.0,
                by_prio[2] * 100.0,
                fleet.total_misalignment() * 100.0,
            ],
        });
        let _ = week;
        fleet.align_cohort(0.55);
    }

    // Per-cluster RNL change: each cluster is a fleet sample; the QoSh
    // worst-case delay is evaluated at the misaligned and aligned mixes.
    let weights = [8.0, 4.0, 1.0];
    let mut rnl_change_pct =
        crate::parallel::run_sweep((0..clusters).collect(), |k: usize| {
            let mut cluster = Fleet::synthetic(FleetConfig {
                apps: 120,
                seed: 9000 + k as u64,
            });
            let before = cluster.qos_mix();
            cluster.align_cohort(1.0);
            let after = cluster.qos_mix();
            let delay = |mix: [f64; 3]| {
                let spec = FluidSpec {
                    weights: weights.to_vec(),
                    shares: mix.to_vec(),
                    mu: 0.8,
                    rho: 1.3,
                };
                fluid_delays(&spec)[0].max(1e-6)
            };
            let d0 = delay(before);
            let d1 = delay(after);
            100.0 * (d1 - d0) / d0
        });
    rnl_change_pct.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Fig24Result {
        weeks,
        rnl_change_pct,
    }
}

/// Print Fig. 24.
pub fn print_fig24(r: &Fig24Result) {
    let rows: Vec<Vec<String>> = r
        .weeks
        .iter()
        .enumerate()
        .map(|(w, week)| {
            vec![
                format!("week {w}"),
                f1(week.misalignment_pct[0]),
                f1(week.misalignment_pct[1]),
                f1(week.misalignment_pct[2]),
                f1(week.misalignment_pct[3]),
            ]
        })
        .collect();
    print_table(
        "Fig 24 (left): misaligned RPCs (%) during Phase-1 rollout",
        &["", "PC", "NC", "BE", "total"],
        &rows,
    );
    let n = r.rnl_change_pct.len();
    let improved = r.rnl_change_pct.iter().filter(|&&c| c < -1.0).count();
    let regressed = r.rnl_change_pct.iter().filter(|&&c| c > 1.0).count();
    let mean = r.rnl_change_pct.iter().sum::<f64>() / n.max(1) as f64;
    println!(
        "Fig 24 (right): QoSh 99p-RNL change across {n} clusters: mean {mean:.1}%, \
         {improved} improved, {regressed} minor regressions, best {:.1}%, worst {:.1}%",
        r.rnl_change_pct.first().copied().unwrap_or(0.0),
        r.rnl_change_pct.last().copied().unwrap_or(0.0),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_latency_tracks_load() {
        let r = fig03(Scale::quick());
        let base = r.windows[0].p99_us.unwrap();
        let peak = r.windows[2].p99_us.unwrap();
        let recovered = r.windows[3].p99_us.unwrap();
        assert!(
            peak > base * 5.0,
            "overload peak {peak} should dwarf baseline {base}"
        );
        assert!(
            recovered < peak / 3.0,
            "latency should recover: {recovered} vs peak {peak}"
        );
    }

    #[test]
    fn fig04_misalignment_shape() {
        let r = fig04_05();
        // Most PC on QoSh, but roughly half of BE above QoSl.
        assert!(r.matrix_pct[0][0] > 70.0);
        assert!(r.matrix_pct[2][0] + r.matrix_pct[2][1] > 35.0);
        // Drift moves share to QoSh over time.
        assert!(r.drift.last().unwrap()[0] > r.drift[0][0]);
    }

    #[test]
    fn fig24_rollout_clears_misalignment_and_improves_rnl() {
        let r = fig24(20);
        let first = r.weeks.first().unwrap().misalignment_pct[3];
        let last = r.weeks.last().unwrap().misalignment_pct[3];
        assert!(first > 15.0, "initial misalignment {first}%");
        assert!(last < 5.0, "final misalignment {last}%");
        // The typical cluster improves (negative change); a small number of
        // regressions is expected (paper reports the same).
        let mean = r.rnl_change_pct.iter().sum::<f64>() / r.rnl_change_pct.len() as f64;
        assert!(mean < 0.0, "mean RNL change {mean}% should be an improvement");
    }
}
