//! Chaos scenarios: Aequitas under injected faults.
//!
//! The fault layer (`aequitas-faults`) makes every failure a pure function
//! of `(seed, time, entity)`, so chaos runs are exactly as reproducible as
//! healthy ones. Two scenarios exercise the properties the paper's control
//! loop should provide under infrastructure failures it was never told
//! about:
//!
//! * [`link_flap`] — one sender's uplink goes dark mid-run. Its backlogged
//!   QoSₕ RPCs complete with enormous RNL once the link returns, the
//!   admission controller slams the channel's admit probability down, and
//!   the floor + additive increase re-admit the channel once measured RNL
//!   is healthy again. Other hosts' QoSₕ tails stay bounded throughout —
//!   the blast radius is one channel, not the fabric.
//! * [`quota_outage`] — the §5.2 quota server becomes unreachable for a
//!   window. Hosts degrade to their last-known grant, decayed per missed
//!   sync round toward a floor ([`aequitas::GrantKeeper`]), so a guaranteed
//!   tenant keeps a predictable share through the outage and snaps back to
//!   its full guarantee on recovery.
//!
//! The CLI accepts `--faults <plan.toml>` to inject an operator-written
//! fault plan into *any* experiment; [`install_global_fault_plan`] is the
//! hook behind it.

use crate::harness::{run_macro, run_macro_controlled, MacroSetup, PolicyChoice, Scale};
use crate::report::{f1, print_table};
use aequitas::{FallbackConfig, Grant, GrantKeeper, QuotaServer, QuotaSpec, SloTarget, TenantId};
use aequitas_netsim::faults::{FaultPlan, LinkFlap, LinkSel, LossRule, Window};
use aequitas_netsim::HostId;
use aequitas_rpc::{
    ArrivalProcess, Policy, Priority, PrioritySpec, RpcCompletion, TrafficPattern, WorkloadSpec,
};
use aequitas_sim_core::{SimDuration, SimTime};
use aequitas_telemetry::{Telemetry, TraceEvent};
use aequitas_workloads::{QosClass, QosMapping, SizeDist};
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------------
// Global fault-plan override (the CLI's --faults flag).
// ---------------------------------------------------------------------------

static GLOBAL_PLAN: OnceLock<Arc<FaultPlan>> = OnceLock::new();

/// Install a process-global fault plan applied to every engine the harness
/// builds from here on (scenario-specific plans win over it). Returns
/// `Ok(false)` if a plan was already installed, `Err` if the plan fails
/// validation (operator TOML is untrusted input).
pub fn install_global_fault_plan(plan: FaultPlan) -> Result<bool, String> {
    Ok(GLOBAL_PLAN.set(Arc::new(plan.validated()?)).is_ok())
}

/// The installed global fault plan, if any.
pub fn global_fault_plan() -> Option<Arc<FaultPlan>> {
    GLOBAL_PLAN.get().cloned()
}

/// Order-independent digest of a completion set, for byte-identical
/// determinism checks across runs and sanitizer configurations.
pub fn completion_digest(completions: &[RpcCompletion]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for c in completions {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [
            c.src.0 as u64,
            c.dst.0 as u64,
            c.rpc_id,
            c.issued_at.as_ps(),
            c.completed_at.as_ps(),
            c.qos_run.0 as u64,
            c.attempts as u64,
        ] {
            h = (h ^ v).wrapping_mul(0x0000_0100_0000_01B3);
        }
        acc = acc.wrapping_add(h); // order-independent combine
    }
    acc
}

// ---------------------------------------------------------------------------
// Scenario 1: link flap.
// ---------------------------------------------------------------------------

/// Result of the link-flap chaos scenario.
pub struct FlapResult {
    /// QoSₕ SLO the controller enforces (µs, absolute for 8 MTUs).
    pub slo_us: f64,
    /// When the flap starts / ends (ms into the run).
    pub flap_ms: [f64; 2],
    /// Admit probability of the flapped host's QoSₕ channel: right before
    /// the flap, its minimum after the flap (the controller's reaction to
    /// the stale completions), and at the end of the run (re-admission).
    pub p_admit: [f64; 3],
    /// QoSₕ 99p RNL (µs) over the *unaffected* hosts, whole run: the blast
    /// radius check.
    pub others_p99_us: Option<f64>,
    /// Frames lost or corrupted by the fault layer (the plan carries a mild
    /// Bernoulli loss on every link on top of the flap).
    pub fault_drops: u64,
    /// Completions from the flapped host.
    pub flapped_done: usize,
    /// RPCs the flapped host issued; `done + outstanding` must equal it —
    /// the link defers, the transport retransmits, the RPC layer retries,
    /// so nothing is silently lost.
    pub flapped_issued: u64,
    /// RPCs still in flight on the flapped host when the run ended.
    pub flapped_outstanding: usize,
    /// Stack-level RPC failures on the flapped host (retry budget or
    /// deadline exhausted) — zero here, the flap is shorter than the budget.
    pub flapped_failures: usize,
    /// Digest of all completions, for determinism checks.
    pub digest: u64,
}

/// Four senders into one receiver on a 100 Gbps star; host 0's uplink goes
/// down for a few milliseconds mid-run.
pub fn link_flap(scale: Scale) -> FlapResult {
    link_flap_traced(scale, Telemetry::disabled())
}

/// [`link_flap`] with an explicit telemetry handle (fault events land in
/// its sink; tests attach a flight recorder here).
pub fn link_flap_traced(scale: Scale, telemetry: Telemetry) -> FlapResult {
    let n = 5;
    let receiver = n - 1;
    let slo_us = 25.0;
    let flap_start = scale.pick(SimDuration::from_ms(10), SimDuration::from_ms(30));
    let flap_down = scale.pick(SimDuration::from_ms(3), SimDuration::from_ms(5));
    let duration = scale.pick(SimDuration::from_ms(70), SimDuration::from_ms(160));

    let plan = FaultPlan {
        seed: 7,
        flaps: vec![LinkFlap {
            link: LinkSel::HostUp(0),
            first_down: SimTime::ZERO + flap_start,
            down: flap_down,
            period: SimDuration::from_secs_f64(10.0),
            count: 1,
        }],
        // A touch of everywhere loss so retransmission recovery is part of
        // the picture, not just the flap. Kept well under the SLO's 1% tail
        // budget: a 32 KB RPC spans ~22 frames, so per-RPC exposure is
        // ~22x the per-frame probability.
        loss: vec![LossRule {
            link: LinkSel::Any,
            prob: 1e-4,
            burst: None,
        }],
        ..FaultPlan::default()
    }
    .validated()
    .expect("link-flap chaos plan is well-formed");

    let mut setup = MacroSetup::star_3qos(n);
    setup.engine = aequitas_netsim::EngineConfig::default_2qos();
    setup.engine.faults = Some(Arc::new(plan));
    setup.mapping = QosMapping::two_level();
    // A 99p SLO keeps the increment window short enough that re-admission
    // is visible within a quick-scale run.
    setup.policy = PolicyChoice::Aequitas(aequitas::AequitasConfig::two_qos(
        SloTarget::absolute(SimDuration::from_us_f64(slo_us), 8, 99.0),
    ));
    setup.duration = duration;
    setup.warmup = SimDuration::ZERO;
    setup.seed = 1077;
    setup.telemetry = telemetry;
    for h in 0..n - 1 {
        setup.workloads[h] = Some(WorkloadSpec {
            arrival: ArrivalProcess::Uniform { load: 0.2 },
            pattern: TrafficPattern::ManyToOne { dst: receiver },
            classes: vec![
                PrioritySpec {
                    priority: Priority::PerformanceCritical,
                    byte_share: 0.5,
                    sizes: SizeDist::Fixed(32_768),
                },
                PrioritySpec {
                    priority: Priority::BestEffort,
                    byte_share: 0.5,
                    sizes: SizeDist::Fixed(32_768),
                },
            ],
            stop: None,
        });
    }

    // Drive the engine directly (rather than through `run_macro_*`) so the
    // final per-host state — issued, outstanding, stack-level failures — is
    // readable after the last event.
    let flap_end = SimTime::ZERO + flap_start + flap_down;
    let flap_start_t = SimTime::ZERO + flap_start;
    let mut engine = crate::harness::build_engine(setup);
    let end = SimTime::ZERO + duration;
    let step = SimDuration::from_us(500);
    let mut now = SimTime::ZERO;
    let mut p_before = 1.0f64;
    let mut p_min_after = f64::INFINITY;
    let mut p_end = 1.0f64;
    while now < end {
        now = end.min(now + step);
        engine.run_until(now);
        let p = engine.agents()[0]
            .stack()
            .admit_probability(HostId(receiver), QosClass::HIGH);
        if now <= flap_start_t {
            p_before = p;
        } else if now >= flap_end {
            p_min_after = p_min_after.min(p);
        }
        p_end = p;
    }
    let tel = engine.telemetry().clone();
    if tel.is_enabled() {
        tel.flush();
    }
    let (lost, corrupted) = engine.fault_loss_totals();

    let mut completions = Vec::new();
    let mut flapped_issued = 0u64;
    let mut flapped_outstanding = 0usize;
    let mut flapped_failures = 0usize;
    for (h, host) in engine.agents_mut().iter_mut().enumerate() {
        if h == 0 {
            flapped_issued = host.issued();
            flapped_outstanding = host.stack().outstanding();
            flapped_failures = host.stack_mut().take_rpc_failures().len();
        }
        completions.extend(host.take_completions());
    }
    completions.sort_by_key(|c| c.completed_at);

    let others_p99 = {
        let mut p = aequitas_stats::Percentiles::new();
        for c in completions
            .iter()
            .filter(|c| c.src.0 != 0 && c.qos_run == QosClass::HIGH)
        {
            p.record(c.rnl().as_us_f64());
        }
        p.p99()
    };
    let flapped_done = completions.iter().filter(|c| c.src.0 == 0).count();
    FlapResult {
        slo_us,
        flap_ms: [
            flap_start.as_secs_f64() * 1e3,
            (flap_start + flap_down).as_secs_f64() * 1e3,
        ],
        p_admit: [p_before, p_min_after, p_end],
        others_p99_us: others_p99,
        fault_drops: lost + corrupted,
        flapped_done,
        flapped_issued,
        flapped_outstanding,
        flapped_failures,
        digest: completion_digest(&completions),
    }
}

/// Print the link-flap scenario.
pub fn print_link_flap(r: &FlapResult) {
    let rows = vec![vec![
        format!("{:.0}-{:.0}", r.flap_ms[0], r.flap_ms[1]),
        format!("{:.2}", r.p_admit[0]),
        format!("{:.2}", r.p_admit[1]),
        format!("{:.2}", r.p_admit[2]),
        crate::report::opt(r.others_p99_us, 1),
    ]];
    print_table(
        "Chaos: uplink flap — flapped channel p_admit and bystander QoSh tail",
        &[
            "flap (ms)",
            "p before",
            "p min after",
            "p at end",
            "others p99 (us)",
        ],
        &rows,
    );
    println!(
        "flapped host: {} of {} RPCs completed ({} still in flight, {} failed), \
         {} frames dropped by the fault layer, digest {:#018x}",
        r.flapped_done,
        r.flapped_issued,
        r.flapped_outstanding,
        r.flapped_failures,
        r.fault_drops,
        r.digest
    );
}

// ---------------------------------------------------------------------------
// Scenario 2: quota-server outage.
// ---------------------------------------------------------------------------

/// Result of the quota-server-outage chaos scenario.
pub struct QuotaOutageResult {
    /// Tenant 0's guaranteed admitted rate (Gbps).
    pub guarantee_gbps: f64,
    /// Fallback floor as a fraction of the last grant.
    pub floor_frac: f64,
    /// Tenant 0 admitted QoSₕ goodput (Gbps) before / during / after the
    /// outage.
    pub tenant0_gbps: [f64; 3],
    /// Same for the unguaranteed tenants combined.
    pub others_gbps: [f64; 3],
    /// Outage transitions observed by the control loop (down + up = 2).
    pub transitions: u32,
    /// Digest of all completions, for determinism checks.
    pub digest: u64,
}

/// Six senders in three tenants blast PC traffic at one server (the §5.2
/// extension topology); tenant 0 holds a guaranteed admitted rate. The
/// quota server is unreachable for a mid-run window: hosts fall back to
/// decayed last-known grants.
pub fn quota_outage(scale: Scale) -> QuotaOutageResult {
    quota_outage_traced(scale, Telemetry::disabled())
}

/// [`quota_outage`] with an explicit telemetry handle (fault events land
/// in its sink; tests attach a flight recorder here).
pub fn quota_outage_traced(scale: Scale, telemetry: Telemetry) -> QuotaOutageResult {
    let n = 7;
    let server = HostId(6);
    let guarantee_gbps = 20.0;
    let fallback = FallbackConfig {
        decay: 0.9,
        floor_frac: 0.5,
    };
    let slo = SloTarget::absolute(SimDuration::from_us(25), 8, 99.9);
    let seed = 1088;
    let tenant_of = |host: usize| TenantId((host / 2) as u32);

    // Windows (ms): settle, pre-measure, outage, re-sync slack, post-measure.
    let scale_ms = |ms: u64| scale.pick(SimDuration::from_ms(ms), SimDuration::from_ms(ms * 3));
    let pre = (SimTime::ZERO + scale_ms(8), SimTime::ZERO + scale_ms(24));
    let outage = (pre.1, pre.1 + scale_ms(16));
    let post = (outage.1 + scale_ms(6), outage.1 + scale_ms(22));
    let duration = post.1.since(SimTime::ZERO);

    let plan = Arc::new(
        FaultPlan {
            seed,
            quota_outages: vec![Window {
                start: outage.0,
                end: outage.1,
            }],
            ..FaultPlan::default()
        }
        .validated()
        .expect("quota-outage chaos plan is well-formed"),
    );

    let mut setup = MacroSetup::star_3qos(n);
    setup.engine = aequitas_netsim::EngineConfig::default_2qos();
    setup.engine.faults = Some(plan.clone());
    setup.mapping = QosMapping::two_level();
    setup.policy = PolicyChoice::Aequitas(aequitas::AequitasConfig::two_qos(slo));
    setup.duration = duration;
    setup.warmup = SimDuration::ZERO;
    setup.seed = seed;
    setup.telemetry = telemetry;
    setup.policy_overrides = (0..n)
        .map(|h| {
            (h < 6).then(|| {
                Policy::aequitas_with_quota(
                    aequitas::AequitasConfig::two_qos(slo),
                    seed ^ (0x1234 + h as u64),
                    tenant_of(h),
                    0,
                )
            })
        })
        .collect();
    for h in 0..6 {
        setup.workloads[h] = Some(WorkloadSpec {
            arrival: ArrivalProcess::Uniform { load: 0.5 },
            pattern: TrafficPattern::ManyToOne { dst: server.0 },
            classes: vec![PrioritySpec {
                priority: Priority::PerformanceCritical,
                byte_share: 1.0,
                sizes: SizeDist::Fixed(32_768),
            }],
            stop: None,
        });
    }

    // Admissible QoSh rate for the 25 us SLO, as in the quota extension.
    let mut srv = QuotaServer::new(vec![0.35 * 100e9 / 8.0]);
    srv.register(
        TenantId(0),
        QuotaSpec {
            qos: 0,
            guaranteed_bps: guarantee_gbps * 1e9 / 8.0,
        },
    );
    let sync = SimDuration::from_ms(2);
    let mut keepers: Vec<GrantKeeper> = (0..6).map(|_| GrantKeeper::new(fallback)).collect();
    let mut was_down = false;
    let mut transitions = 0u32;
    let r = run_macro_controlled(setup, sync, |eng, now| {
        let down = plan.quota_server_down(now);
        if down != was_down {
            was_down = down;
            transitions += 1;
            let tel = eng.telemetry().clone();
            if tel.is_enabled() {
                for h in 0..6 {
                    tel.emit(now, TraceEvent::FaultQuotaOutage { host: h, down });
                }
            }
        }
        if down {
            // Server unreachable: usage reports are lost; each host applies
            // its keeper's decayed last-known grant.
            for (h, keeper) in keepers.iter_mut().enumerate() {
                eng.agents_mut()[h].stack_mut().take_usage_report();
                if let Some(g) = keeper.on_missed_round() {
                    eng.agents_mut()[h].stack_mut().apply_grant(g, now);
                }
            }
            return;
        }
        let mut reports = Vec::new();
        for h in 0..6 {
            if let Some(rep) = eng.agents_mut()[h].stack_mut().take_usage_report() {
                reports.push(rep);
            }
        }
        let grants = srv.allocate(&reports, sync);
        for (h, keeper) in keepers.iter_mut().enumerate() {
            if let Some(g) = grants.get(&tenant_of(h)) {
                // Each tenant's grant is split evenly over its two hosts.
                let per_host = Grant {
                    rate_bps: g.rate_bps / 2.0,
                };
                let g = keeper.on_grant(per_host);
                eng.agents_mut()[h].stack_mut().apply_grant(g, now);
            }
        }
    });

    let gbps = |hosts: std::ops::Range<usize>, w: (SimTime, SimTime)| -> f64 {
        let bytes: u64 = r
            .completions
            .iter()
            .filter(|c| {
                hosts.contains(&c.src.0)
                    && c.qos_run == QosClass::HIGH
                    && c.completed_at >= w.0
                    && c.completed_at < w.1
            })
            .map(|c| c.size_bytes)
            .sum();
        bytes as f64 * 8.0 / w.1.since(w.0).as_secs_f64() / 1e9
    };
    QuotaOutageResult {
        guarantee_gbps,
        floor_frac: fallback.floor_frac,
        tenant0_gbps: [gbps(0..2, pre), gbps(0..2, outage), gbps(0..2, post)],
        others_gbps: [gbps(2..6, pre), gbps(2..6, outage), gbps(2..6, post)],
        transitions,
        digest: completion_digest(&r.completions),
    }
}

/// Print the quota-outage scenario.
pub fn print_quota_outage(r: &QuotaOutageResult) {
    let rows = vec![
        vec![
            format!("tenant 0 (guaranteed {:.0})", r.guarantee_gbps),
            f1(r.tenant0_gbps[0]),
            f1(r.tenant0_gbps[1]),
            f1(r.tenant0_gbps[2]),
        ],
        vec![
            "tenants 1+2 (no guarantee)".into(),
            f1(r.others_gbps[0]),
            f1(r.others_gbps[1]),
            f1(r.others_gbps[2]),
        ],
    ];
    print_table(
        "Chaos: quota-server outage — admitted QoSh goodput (Gbps)",
        &["tenant", "before", "during outage", "after"],
        &rows,
    );
    println!(
        "fallback floor {:.0}% of last grant; {} outage transitions; digest {:#018x}",
        r.floor_frac * 100.0,
        r.transitions,
        r.digest
    );
}

// ---------------------------------------------------------------------------
// Chaos containment: the baseline × fault matrix with time-to-SLO-restore.
// ---------------------------------------------------------------------------

/// Hosts in the containment fabric: leaf_spine(2 racks × 4 hosts, 2 spines).
const CT_N: usize = 8;
/// Senders (rack 0) all target host 7 (rack 1) across the spine layer.
const CT_SENDERS: usize = 4;
const CT_DST: usize = 7;
/// Per-sender load: 4 × 0.15 = 60% of the receiver downlink.
const CT_LOAD: f64 = 0.15;
const CT_SIZE: u64 = 32_768;
/// One shared workload seed — every scheme sees the same offered stream.
const CT_SEED: u64 = 31_01;
/// Offered load stops at 16 ms; the run drains until 20 ms.
const CT_STOP_MS: u64 = 16;
const CT_RUN_MS: u64 = 20;
/// Fault window: onset at 4 ms, repair at 8 ms.
const CT_ONSET_MS: u64 = 4;
const CT_REPAIR_MS: u64 = 8;
/// Absolute completion-latency SLO for the 32 KB PC RPCs (the paper's
/// 250 µs deadline translation), evaluated per 500 µs window at p99.
const CT_SLO_US: f64 = 250.0;
const CT_WINDOW_PS: u64 = 500_000_000;

/// The one seeded fault schedule every scheme runs under: spine 3 dies
/// entirely for the window (blackholing the flows ECMP hashed through it),
/// while the receiver's ToR downlink runs gray at 25% capacity with a
/// creeping jitter ramp — offered 60 Gbps against an effective 25 Gbps, so
/// queues build for 4 ms and must drain after repair.
pub fn containment_plan() -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan {
            seed: 1010,
            switch_outages: vec![aequitas_netsim::faults::SwitchOutage {
                switch: 3, // second spine: ToRs are 0-1, spines 2-3
                window: Window {
                    start: SimTime::from_ms(CT_ONSET_MS),
                    end: SimTime::from_ms(CT_REPAIR_MS),
                },
            }],
            gray: vec![aequitas_netsim::faults::GrayDegrade {
                link: LinkSel::SwitchPort { switch: 1, port: 3 }, // ToR1 -> host 7
                window: Window {
                    start: SimTime::from_ms(CT_ONSET_MS),
                    end: SimTime::from_ms(CT_REPAIR_MS),
                },
                rate_frac: 0.25,
                jitter_ramp: SimDuration::from_us(2),
            }],
            ..FaultPlan::default()
        }
        .validated()
        .expect("containment fault schedule is well-formed"),
    )
}

fn ct_topology() -> aequitas_netsim::Topology {
    aequitas_netsim::Topology::leaf_spine(
        2,
        4,
        2,
        aequitas_netsim::LinkSpec::default_100g(),
        aequitas_netsim::LinkSpec::default_100g(),
    )
}

fn ct_gen(src: usize) -> aequitas_baselines::WorkloadGen {
    aequitas_baselines::WorkloadGen::new(
        ArrivalProcess::Uniform { load: CT_LOAD },
        TrafficPattern::ManyToOne { dst: CT_DST },
        vec![(
            Priority::PerformanceCritical,
            1.0,
            SizeDist::Fixed(CT_SIZE),
        )],
        src,
        CT_N,
        aequitas_sim_core::BitRate::from_gbps(100),
        Some(SimTime::from_ms(CT_STOP_MS)),
        CT_SEED ^ (src as u64 * 0x9E37),
    )
}

/// `(completed_at ps, latency µs)` points for non-terminated completions,
/// clipped at the offered-load stop so drain-phase completions cannot
/// retroactively repair a window.
fn ct_collect<A: aequitas_netsim::HostAgent>(
    mut eng: aequitas_netsim::Engine<A>,
    completions: impl Fn(&A) -> &[aequitas_baselines::BaselineCompletion],
) -> Vec<(u64, f64)> {
    eng.run_until(SimTime::from_ms(CT_RUN_MS));
    let mut out = Vec::new();
    for a in eng.agents() {
        for c in completions(a) {
            if !c.terminated && c.completed_at <= SimTime::from_ms(CT_STOP_MS) {
                out.push((c.completed_at.as_ps(), c.latency().as_us_f64()));
            }
        }
    }
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    out
}

fn ct_pfabric(plan: Arc<FaultPlan>) -> Vec<(u64, f64)> {
    use aequitas_baselines::{pfabric, PfabricHost};
    let agents = (0..CT_N)
        .map(|h| PfabricHost::new(HostId(h), (h < CT_SENDERS).then(|| ct_gen(h))))
        .collect();
    let eng = aequitas_netsim::Engine::new(
        ct_topology(),
        agents,
        pfabric::engine_config_with_faults(Some(plan)),
    );
    ct_collect(eng, |a: &PfabricHost| a.completions())
}

fn ct_qjump(plan: Arc<FaultPlan>) -> Vec<(u64, f64)> {
    use aequitas_baselines::{qjump, QjumpHost};
    let rate = aequitas_sim_core::BitRate::from_gbps(100);
    let agents = (0..CT_N)
        .map(|h| QjumpHost::new(HostId(h), (h < CT_SENDERS).then(|| ct_gen(h)), rate))
        .collect();
    let eng = aequitas_netsim::Engine::new(
        ct_topology(),
        agents,
        qjump::engine_config_with_faults(Some(plan)),
    );
    ct_collect(eng, |a: &QjumpHost| a.completions())
}

fn ct_deadline(plan: Arc<FaultPlan>, mode: aequitas_baselines::DeadlineMode) -> Vec<(u64, f64)> {
    use aequitas_baselines::{deadline, DeadlineHost};
    let rate = aequitas_sim_core::BitRate::from_gbps(100);
    let agents = (0..CT_N)
        .map(|h| DeadlineHost::new(HostId(h), mode, (h < CT_SENDERS).then(|| ct_gen(h)), rate))
        .collect();
    let eng = aequitas_netsim::Engine::new(
        ct_topology(),
        agents,
        deadline::engine_config_with_faults(Some(plan)),
    );
    ct_collect(eng, |a: &DeadlineHost| a.completions())
}

fn ct_homa(plan: Arc<FaultPlan>) -> Vec<(u64, f64)> {
    use aequitas_baselines::{homa, HomaHost};
    let agents = (0..CT_N)
        .map(|h| HomaHost::new(HostId(h), (h < CT_SENDERS).then(|| ct_gen(h))))
        .collect();
    let eng = aequitas_netsim::Engine::new(
        ct_topology(),
        agents,
        homa::engine_config_with_faults(Some(plan)),
    );
    ct_collect(eng, |a: &HomaHost| a.completions())
}

fn ct_aequitas(plan: Arc<FaultPlan>) -> Vec<(u64, f64)> {
    let mut setup = MacroSetup::star_3qos(CT_N);
    setup.topo = ct_topology();
    setup.engine = aequitas_netsim::EngineConfig::default_2qos();
    setup.engine.faults = Some(plan);
    setup.mapping = QosMapping::two_level();
    setup.policy = PolicyChoice::Aequitas(aequitas::AequitasConfig::two_qos(
        SloTarget::absolute(SimDuration::from_us_f64(CT_SLO_US), 8, 99.0),
    ));
    setup.duration = SimDuration::from_ms(CT_RUN_MS);
    setup.warmup = SimDuration::ZERO;
    setup.seed = CT_SEED;
    for h in 0..CT_SENDERS {
        setup.workloads[h] = Some(WorkloadSpec {
            arrival: ArrivalProcess::Uniform { load: CT_LOAD },
            pattern: TrafficPattern::ManyToOne { dst: CT_DST },
            classes: vec![PrioritySpec {
                priority: Priority::PerformanceCritical,
                byte_share: 1.0,
                sizes: SizeDist::Fixed(CT_SIZE),
            }],
            stop: Some(SimTime::from_ms(CT_STOP_MS)),
        });
    }
    let r = run_macro(setup);
    let mut out: Vec<(u64, f64)> = r
        .completions
        .iter()
        .chain(r.warmup_completions.iter())
        .filter(|c| c.completed_at <= SimTime::from_ms(CT_STOP_MS))
        .map(|c| (c.completed_at.as_ps(), c.rnl().as_us_f64()))
        .collect();
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    out
}

/// One scheme's row in the containment table.
#[derive(Debug, Clone)]
pub struct ContainmentRow {
    /// Scheme name.
    pub name: &'static str,
    /// Completions inside the offered-load horizon.
    pub completed: usize,
    /// p99 latency (µs) over the pre-fault windows.
    pub pre_fault_p99_us: Option<f64>,
    /// Worst windowed p99 (µs) from fault onset on.
    pub worst_p99_us: Option<f64>,
    /// Time from fault onset until the SLO is durably re-met (ms); `None`
    /// when the scheme never recovers within the horizon.
    pub restore_ms: Option<f64>,
}

/// The chaos containment matrix result.
pub struct ContainmentResult {
    /// One row per scheme, Aequitas first.
    pub rows: Vec<ContainmentRow>,
}

fn ct_row(name: &'static str, points: Vec<(u64, f64)>) -> ContainmentRow {
    use aequitas_replay::timeline;
    let horizon = SimTime::from_ms(CT_STOP_MS).as_ps();
    let onset = SimTime::from_ms(CT_ONSET_MS).as_ps();
    let windows = timeline::windowed_until(&points, CT_WINDOW_PS, horizon);
    let pre: Vec<f64> = windows
        .iter()
        .filter(|w| w.start_ps + CT_WINDOW_PS <= onset && w.count > 0)
        .map(|w| w.p99)
        .collect();
    let post: Vec<f64> = windows
        .iter()
        .filter(|w| w.start_ps + CT_WINDOW_PS > onset && w.count > 0)
        .map(|w| w.p99)
        .collect();
    let max = |v: &[f64]| {
        v.iter()
            .copied()
            .max_by(|a, b| a.partial_cmp(b).expect("finite"))
    };
    ContainmentRow {
        name,
        completed: points.len(),
        pre_fault_p99_us: max(&pre),
        worst_p99_us: max(&post),
        restore_ms: timeline::time_to_restore(&windows, onset, CT_SLO_US)
            .map(|ps| ps as f64 / 1e9),
    }
}

/// Run the containment matrix: Aequitas plus all five baselines under the
/// one seeded fault schedule of [`containment_plan`]. The six runs are
/// independent simulations, so they fan out across the sweep harness.
pub fn containment(_scale: Scale) -> ContainmentResult {
    use aequitas_baselines::DeadlineMode;
    let plan = containment_plan();
    let schemes: Vec<usize> = (0..6).collect();
    let rows = crate::parallel::run_sweep(schemes, |k| match k {
        0 => ct_row("Aequitas", ct_aequitas(plan.clone())),
        1 => ct_row("pFabric", ct_pfabric(plan.clone())),
        2 => ct_row("QJump", ct_qjump(plan.clone())),
        3 => ct_row("D3", ct_deadline(plan.clone(), DeadlineMode::D3)),
        4 => ct_row("PDQ", ct_deadline(plan.clone(), DeadlineMode::Pdq)),
        _ => ct_row("Homa", ct_homa(plan.clone())),
    });
    ContainmentResult { rows }
}

/// Print the containment table.
pub fn print_containment(r: &ContainmentResult) {
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.completed.to_string(),
                crate::report::opt(s.pre_fault_p99_us, 1),
                crate::report::opt(s.worst_p99_us, 1),
                match s.restore_ms {
                    Some(ms) => format!("{ms:.1}"),
                    None => "never".to_string(),
                },
            ]
        })
        .collect();
    print_table(
        "Chaos containment: spine outage + gray receiver downlink, 4-8 ms \
         (windowed p99 vs 250 us SLO)",
        &[
            "scheme",
            "completions",
            "pre-fault p99 us",
            "worst p99 us",
            "SLO restore ms",
        ],
        &rows,
    );
    println!(
        "fault onset {CT_ONSET_MS} ms, repair {CT_REPAIR_MS} ms; restore = end of last \
         violating 500 us window minus onset; 'never' = still violating at {CT_STOP_MS} ms"
    );
}
