//! Figs. 17, 18 and the Appendix C sensitivity study (Figs. 28, 29).

use crate::harness::{run_macro_sampled, MacroSetup, PolicyChoice, Scale};
use crate::report::{f2, print_table};
use aequitas::{AequitasConfig, SloTarget};
use aequitas_netsim::HostId;
use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::{SimDuration, SimTime};
use aequitas_stats::{Percentiles, TimeSeries};
use aequitas_workloads::{QosClass, QosMapping, SizeDist};

/// Per-channel outcome of a fairness run.
#[derive(Debug, Clone)]
pub struct ChannelTrace {
    /// Admit-probability samples over time.
    pub p_admit: TimeSeries,
    /// Admitted QoSh goodput (Gbps) per sampling window.
    pub throughput: TimeSeries,
    /// Steady-state mean admitted QoSh goodput (Gbps).
    pub steady_gbps: f64,
    /// 1st-percentile admit probability after warm-up.
    pub p1_admit: Option<f64>,
    /// Spread (p99 − p1) of the admit probability after warm-up — the
    /// stability metric of Appendix C.
    pub p_spread: Option<f64>,
}

/// Result of one fairness experiment.
pub struct FairnessResult {
    /// Offered QoSh share per channel (fraction of line rate).
    pub offered: [f64; 2],
    /// Traces for channels A and B.
    pub channels: [ChannelTrace; 2],
}

/// Core fairness runner: two channels (hosts 0 and 1) issue 32 KB RPCs at
/// line rate to host 2, with `offered[i]` of their bytes on QoSh and the
/// rest on QoSl. QoSh SLO = 15 µs. Returns per-channel traces.
pub fn run_fairness(scale: Scale, offered: [f64; 2], beta: f64, seed: u64) -> FairnessResult {
    let mut config = AequitasConfig::two_qos(SloTarget::absolute(
        SimDuration::from_us(15),
        8,
        99.9,
    ));
    config.beta_per_mtu = beta;

    let mut setup = MacroSetup::star_3qos(3);
    setup.engine = aequitas_netsim::EngineConfig::default_2qos();
    setup.mapping = QosMapping::two_level();
    setup.policy = PolicyChoice::Aequitas(config);
    // Equalization emerges from a slow differential drift (misses shave the
    // heavier channel faster than additive increase rebuilds it), so the
    // run must cover many increment windows.
    setup.duration = scale.pick(SimDuration::from_ms(260), SimDuration::from_ms(1500));
    setup.warmup = scale.pick(SimDuration::from_ms(160), SimDuration::from_ms(900));
    setup.seed = seed;
    for (ch, &share) in offered.iter().enumerate() {
        setup.workloads[ch] = Some(WorkloadSpec {
            arrival: ArrivalProcess::Uniform { load: 1.0 },
            pattern: TrafficPattern::ManyToOne { dst: 2 },
            classes: vec![
                PrioritySpec {
                    priority: Priority::PerformanceCritical,
                    byte_share: share,
                    sizes: SizeDist::Fixed(32_768),
                },
                PrioritySpec {
                    priority: Priority::BestEffort,
                    byte_share: 1.0 - share,
                    sizes: SizeDist::Fixed(32_768),
                },
            ],
            stop: None,
        });
    }

    let warmup = setup.warmup;
    let warm_t = SimTime::ZERO + warmup;
    let sample_every = scale.pick(SimDuration::from_us(500), SimDuration::from_ms(2));
    let mut p_series = [TimeSeries::new(), TimeSeries::new()];
    let mut p1 = [Percentiles::new(), Percentiles::new()];
    let result = run_macro_sampled(setup, sample_every, |eng, now| {
        for ch in 0..2 {
            let p = eng.agents()[ch]
                .stack()
                .admit_probability(HostId(2), QosClass::HIGH);
            p_series[ch].push(now, p);
            if now >= warm_t {
                p1[ch].record(p);
            }
        }
    });

    // Reconstruct per-channel admitted-QoSh throughput from completions.
    let window = sample_every;
    let mut traces = Vec::new();
    for ch in 0..2 {
        let mut meter = aequitas_stats::ThroughputMeter::new(window);
        let mut steady_bytes = 0u64;
        for c in result
            .warmup_completions
            .iter()
            .chain(result.completions.iter())
        {
            if c.src == HostId(ch) && c.qos_run == QosClass::HIGH {
                meter.record(c.completed_at, c.size_bytes);
                if c.completed_at >= warm_t {
                    steady_bytes += c.size_bytes;
                }
            }
        }
        let steady_secs = result.measure_secs;
        let spread = match (p1[ch].p99(), p1[ch].p1()) {
            (Some(hi), Some(lo)) => Some(hi - lo),
            _ => None,
        };
        traces.push(ChannelTrace {
            p_admit: std::mem::take(&mut p_series[ch]),
            throughput: meter.series().clone(),
            steady_gbps: steady_bytes as f64 * 8.0 / steady_secs / 1e9,
            p1_admit: p1[ch].p1(),
            p_spread: spread,
        });
    }
    let b = traces.pop().unwrap();
    let a = traces.pop().unwrap();
    FairnessResult {
        offered,
        channels: [a, b],
    }
}

/// Fig. 17: channels offering 40% and 80% of line rate on QoSh converge to
/// equal admitted throughput via different admit probabilities.
pub fn fig17(scale: Scale) -> FairnessResult {
    run_fairness(scale, [0.4, 0.8], 0.01, 1717)
}

/// Fig. 18: an in-quota channel (10%) keeps p_admit ≈ 1 while the other
/// channel reclaims the excess (max-min fairness).
pub fn fig18(scale: Scale) -> FairnessResult {
    run_fairness(scale, [0.1, 0.8], 0.01, 1818)
}

/// Figs. 28/29: the same experiments with β = 0.0015 — better stability
/// (higher 1st-percentile p_admit) at some cost in SLO strictness.
pub fn fig28_29(scale: Scale) -> (FairnessResult, FairnessResult) {
    (
        run_fairness(scale, [0.4, 0.8], 0.0015, 2828),
        run_fairness(scale, [0.1, 0.8], 0.0015, 2929),
    )
}

/// Print a fairness result.
pub fn print_fairness(title: &str, r: &FairnessResult) {
    let rows: Vec<Vec<String>> = (0..2)
        .map(|ch| {
            let c = &r.channels[ch];
            vec![
                format!("{}", (b'A' + ch as u8) as char),
                format!("{:.0}%", r.offered[ch] * 100.0),
                f2(c.p_admit.last_value().unwrap_or(1.0)),
                crate::report::opt(c.p1_admit, 2),
                format!("{:.1} Gbps", c.steady_gbps),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "channel",
            "offered QoSh",
            "final p_admit",
            "1st-p p_admit",
            "admitted goodput",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_unequal_offers_get_equal_goodput() {
        let r = fig17(Scale::quick());
        let a = r.channels[0].steady_gbps;
        let b = r.channels[1].steady_gbps;
        assert!(a > 1.0 && b > 1.0, "channels idle: {a} {b}");
        let ratio = a / b;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "admitted goodput should equalize: A {a:.1} vs B {b:.1}"
        );
        // The heavier channel needs the lower admit probability.
        let pa = r.channels[0].p_admit.last_value().unwrap();
        let pb = r.channels[1].p_admit.last_value().unwrap();
        assert!(pa > pb, "p_admit A {pa} should exceed B {pb}");
    }

    #[test]
    fn fig18_in_quota_channel_keeps_high_p_admit() {
        let r = fig18(Scale::quick());
        let p1a = r.channels[0].p1_admit.unwrap();
        assert!(
            p1a > 0.55,
            "in-quota channel's 1st-p p_admit {p1a} should stay high"
        );
        // Channel B reclaims the slack: it admits more than a naive equal
        // split.
        let b = r.channels[1].steady_gbps;
        let a = r.channels[0].steady_gbps;
        assert!(b > a, "B ({b:.1}) should reclaim excess over A ({a:.1})");
    }

    #[test]
    fn smaller_beta_improves_stability() {
        // Appendix C: a smaller multiplicative decrement trades SLO
        // strictness for stability. Compare the admit-probability spread of
        // the heavier (over-quota) channel under beta = 0.01 vs 0.0015.
        let scale = Scale::quick();
        let r_default = fig17(scale);
        let (r_small, _) = fig28_29(scale);
        let spread_default = r_default.channels[1].p_spread.unwrap();
        let spread_small = r_small.channels[1].p_spread.unwrap();
        assert!(
            spread_small < spread_default + 0.02,
            "beta=0.0015 spread {spread_small} should not exceed beta=0.01 spread {spread_default}"
        );
        // And the in-quota channel of the fig-18 setup stays near 1.0 with
        // the small beta (the paper reports 1st-p 0.96 vs 0.82).
        let (_, r18_small) = fig28_29(scale);
        assert!(r18_small.channels[0].p1_admit.unwrap() > 0.8);
    }
}
