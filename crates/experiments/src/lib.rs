#![warn(missing_docs)]

//! One experiment per table/figure of the paper's evaluation (§6).
//!
//! Every module exposes a `run(scale) -> …Result` function returning plain
//! data and a `print(&result)` that renders the paper-style rows; the bench
//! harness (`crates/bench`) wraps these one-to-one. `Scale::quick()` keeps
//! runtimes CI-friendly; `Scale::full()` (or `AEQUITAS_FULL=1`) uses
//! paper-scale durations and node counts.
//!
//! | Module | Figures |
//! |--------|---------|
//! | [`theory`] | Figs. 8, 9, 10 and the §5.2 guaranteed-share bound |
//! | [`slo`] | Figs. 11, 12, 13 (SLO compliance, outstanding RPCs) |
//! | [`mix`] | Figs. 14, 15, 16 (admissible share, mix convergence, burstiness) |
//! | [`fairness`] | Figs. 17, 18 and the Appendix C sensitivity (28/29) |
//! | [`spq`] | Fig. 19 (strict priority comparison) |
//! | [`sizes_fig`] | Figs. 1, 20 (size CDFs, mixed-size SLOs) |
//! | [`large`] | Figs. 21, 23 (144-node production sizes, testbed analogue) |
//! | [`fleet`] | Fleet-scale 3-tier Clos on the sharded parallel engine |
//! | [`related`] | Fig. 22 (pFabric/QJump/D3/PDQ/Homa comparison) |
//! | [`production`] | Figs. 3, 4, 5, 24 (overload episode, fleet alignment) |
//! | [`chaos`] | Fault injection: link flaps, loss, quota-server outages |

pub mod audit;
pub mod chaos;
pub mod demo;
pub mod ext;
pub mod fairness;
pub mod fleet;
pub mod harness;
pub mod large;
pub mod mix;
pub mod parallel;
pub mod production;
pub mod related;
pub mod report;
pub mod sizes_fig;
pub mod slo;
pub mod spq;
pub mod theory;

pub use harness::{MacroResult, MacroSetup, Scale};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_detection_defaults_to_quick() {
        // The env var is absent in tests.
        let s = Scale::detect();
        assert!(!s.full || std::env::var("AEQUITAS_FULL").is_ok());
    }
}
