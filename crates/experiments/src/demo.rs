//! A deliberately tiny full-stack run for telemetry smoke tests and demos.
//!
//! Every figure experiment simulates tens to hundreds of milliseconds at
//! 100 Gbps, which makes a traced run multi-gigabyte. This one keeps the
//! same shape — two hosts overloading one receiver under Aequitas, so the
//! packet, RPC, transport, *and* admission-controller event families all
//! fire — but only a few milliseconds of it (`scripts/trace_smoke.sh`
//! relies on that; `aequitas-sim run trace-demo --trace out.jsonl`).

use crate::harness::{run_macro, MacroSetup, PolicyChoice, Scale};
use crate::report::print_table;
use aequitas::{AequitasConfig, SloTarget};
use aequitas_rpc::{ArrivalProcess, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::SimDuration;
use aequitas_workloads::QosMapping;

/// Headline numbers from the demo run.
pub struct DemoResult {
    /// RPCs issued (including warm-up).
    pub issued: u64,
    /// Post-warm-up completions.
    pub completed: usize,
    /// Post-warm-up completions that ran downgraded.
    pub downgraded: usize,
    /// Engine events processed.
    pub events: u64,
}

/// Run the demo: 3-host star, 2 QoS levels, 1.6x offered load on the shared
/// downlink, Aequitas admission with a 15 us SLO.
pub fn trace_demo(scale: Scale) -> DemoResult {
    let slo = SloTarget::absolute(SimDuration::from_us(15), 8, 99.9);
    let mut setup = MacroSetup::star_3qos(3);
    setup.engine = aequitas_netsim::EngineConfig::default_2qos();
    setup.mapping = QosMapping::two_level();
    setup.policy = PolicyChoice::Aequitas(AequitasConfig::two_qos(slo));
    setup.name = "trace-demo";
    setup.duration = scale.pick(SimDuration::from_ms(3), SimDuration::from_ms(12));
    setup.warmup = scale.pick(SimDuration::from_ms(1), SimDuration::from_ms(4));
    setup.seed = 42;
    for h in 0..2 {
        setup.workloads[h] = Some(WorkloadSpec {
            arrival: ArrivalProcess::Uniform { load: 0.8 },
            pattern: TrafficPattern::ManyToOne { dst: 2 },
            classes: vec![
                PrioritySpec {
                    priority: Priority::PerformanceCritical,
                    byte_share: 0.7,
                    sizes: aequitas_workloads::SizeDist::Fixed(32_768),
                },
                PrioritySpec {
                    priority: Priority::BestEffort,
                    byte_share: 0.3,
                    sizes: aequitas_workloads::SizeDist::Fixed(32_768),
                },
            ],
            stop: None,
        });
    }
    let r = run_macro(setup);
    DemoResult {
        issued: r.issued,
        completed: r.completions.len(),
        downgraded: r.completions.iter().filter(|c| c.downgraded).count(),
        events: r.events,
    }
}

/// Print the demo summary.
pub fn print_trace_demo(r: &DemoResult) {
    print_table(
        "trace-demo: tiny Aequitas run (telemetry smoke)",
        &["issued", "completed", "downgraded", "events"],
        &[vec![
            r.issued.to_string(),
            r.completed.to_string(),
            r.downgraded.to_string(),
            r.events.to_string(),
        ]],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_exercises_the_whole_stack() {
        let r = trace_demo(Scale::quick());
        assert!(r.completed > 100, "{}", r.completed);
        assert!(r.downgraded > 0, "overload must force downgrades");
        assert!(r.events > 10_000);
    }
}
