//! Extensions and ablations beyond the paper's evaluation.
//!
//! * [`quota`] — the §5.2 future-work extension: a centralized RPC quota
//!   server granting per-tenant admitted-rate guarantees on top of
//!   Aequitas's latency SLOs.
//! * [`ablation_md_size`] — Algorithm 1 without size-scaled multiplicative
//!   decrease: large RPCs stop paying proportionally for their misses and
//!   crowd out small ones.
//! * [`ablation_window`] — Algorithm 1 without the percentile-scaled
//!   increment window (additive increase on every good completion): the
//!   controller re-admits too eagerly and the tail SLO slips.
//! * [`ablation_drop`] — downgrade versus *drop*: classic admission control
//!   rejects excess RPCs; Aequitas's QoS-downgrade keeps them flowing on
//!   the scavenger class, preserving goodput.
//! * [`ablation_floor`] — removing the admit-probability floor starves a
//!   channel permanently after a transient overload (no probe stream, no
//!   measurements, no recovery).
//! * [`adaptive_apps`] — applications consuming the downgrade hint
//!   (Algorithm 1 lines 10–11 surface it; §5.1 leaves the response to the
//!   application): apps re-mark their least-critical traffic down a class
//!   until downgrades vanish, at unchanged admitted volume.

use crate::harness::{
    run_macro, run_macro_controlled, MacroSetup, PolicyChoice, Scale,
};
use crate::report::{f1, print_table};
use crate::slo::{node33_workload, p999_rnl_us, slo_config_33};
use aequitas::{QuotaServer, QuotaSpec, SloTarget, TenantId};
use aequitas_netsim::HostId;
use aequitas_rpc::{ArrivalProcess, Policy, Priority, PrioritySpec, TrafficPattern, WorkloadSpec};
use aequitas_sim_core::{SimDuration, SimTime};
use aequitas_workloads::{QosClass, QosMapping, SizeDist};

// ---------------------------------------------------------------------------
// Quota-server extension.
// ---------------------------------------------------------------------------

/// Per-tenant outcome of the quota experiment.
#[derive(Debug, Clone, Copy)]
pub struct TenantOutcome {
    /// Tenant id.
    pub tenant: u32,
    /// Guaranteed admitted rate, Gbps (0 = no guarantee).
    pub guarantee_gbps: f64,
    /// Achieved admitted QoSh goodput, Gbps.
    pub admitted_gbps: f64,
}

/// Quota experiment result: with and without the quota server.
pub struct QuotaResult {
    /// Outcomes with the quota server active.
    pub with_quota: Vec<TenantOutcome>,
    /// Outcomes with plain Aequitas (no guarantees).
    pub without_quota: Vec<TenantOutcome>,
    /// QoSh 99.9p RNL with quota active (µs) — SLOs must survive.
    pub qosh_p999_us: Option<f64>,
}

/// Six sender hosts belonging to three tenants (two hosts each) blast PC
/// traffic at one server far beyond the admissible rate. Tenant 0 holds a
/// guaranteed admitted rate; tenants 1 and 2 have none. With plain
/// Aequitas all tenants converge to similar shares; with the quota server
/// tenant 0's guarantee is honored and the rest compete for the remainder.
pub fn quota(scale: Scale) -> QuotaResult {
    let n = 7; // 6 senders + 1 server
    let server = HostId(6);
    let guarantee_gbps = 10.0;
    let slo = SloTarget::absolute(SimDuration::from_us(25), 8, 99.9);

    let tenant_of = |host: usize| TenantId((host / 2) as u32);

    let build = |with_quota: bool, seed: u64| -> MacroSetup {
        let mut setup = MacroSetup::star_3qos(n);
        setup.engine = aequitas_netsim::EngineConfig::default_2qos();
        setup.mapping = QosMapping::two_level();
        setup.policy = PolicyChoice::Aequitas(aequitas::AequitasConfig::two_qos(slo));
        setup.duration = scale.pick(SimDuration::from_ms(120), SimDuration::from_ms(600));
        setup.warmup = scale.pick(SimDuration::from_ms(60), SimDuration::from_ms(300));
        setup.seed = seed;
        if with_quota {
            setup.policy_overrides = (0..n)
                .map(|h| {
                    if h < 6 {
                        Some(Policy::aequitas_with_quota(
                            aequitas::AequitasConfig::two_qos(slo),
                            seed ^ (0x1234 + h as u64),
                            tenant_of(h),
                            0,
                        ))
                    } else {
                        None
                    }
                })
                .collect();
        }
        for h in 0..6 {
            setup.workloads[h] = Some(WorkloadSpec {
                arrival: ArrivalProcess::Uniform { load: 0.5 },
                pattern: TrafficPattern::ManyToOne { dst: server.0 },
                classes: vec![PrioritySpec {
                    priority: Priority::PerformanceCritical,
                    byte_share: 1.0,
                    sizes: SizeDist::Fixed(32_768),
                }],
                stop: None,
            });
        }
        setup
    };

    let measure = |r: &crate::harness::MacroResult| -> Vec<TenantOutcome> {
        let mut bytes = [0u64; 3];
        for c in &r.completions {
            if c.qos_run == QosClass::HIGH && c.src.0 < 6 {
                bytes[c.src.0 / 2] += c.size_bytes;
            }
        }
        (0..3u32)
            .map(|t| TenantOutcome {
                tenant: t,
                guarantee_gbps: if t == 0 { guarantee_gbps } else { 0.0 },
                admitted_gbps: bytes[t as usize] as f64 * 8.0 / r.measure_secs / 1e9,
            })
            .collect()
    };

    // Without the quota server.
    let plain = run_macro(build(false, 71));

    // With: the control loop syncs every 2 ms.
    // Admissible QoSh rate for the 25 us SLO: ~35% of 100 Gbps (from the
    // Fig. 11-style profile), in bytes/sec.
    let mut srv = QuotaServer::new(vec![0.35 * 100e9 / 8.0]);
    srv.register(
        TenantId(0),
        QuotaSpec {
            qos: 0,
            guaranteed_bps: guarantee_gbps * 1e9 / 8.0,
        },
    );
    let sync = SimDuration::from_ms(2);
    let quota_run = run_macro_controlled(build(true, 72), sync, |eng, now| {
        let mut reports = Vec::new();
        for h in 0..6 {
            if let Some(rep) = eng.agents_mut()[h].stack_mut().take_usage_report() {
                reports.push(rep);
            }
        }
        let grants = srv.allocate(&reports, sync);
        for h in 0..6 {
            if let Some(g) = grants.get(&TenantId((h / 2) as u32)) {
                // Each tenant's grant is split evenly over its two hosts.
                eng.agents_mut()[h].stack_mut().apply_grant(
                    aequitas::Grant {
                        rate_bps: g.rate_bps / 2.0,
                    },
                    now,
                );
            }
        }
    });

    QuotaResult {
        with_quota: measure(&quota_run),
        without_quota: measure(&plain),
        qosh_p999_us: p999_rnl_us(&quota_run.completions, QosClass::HIGH),
    }
}

/// Print the quota experiment.
pub fn print_quota(r: &QuotaResult) {
    let rows: Vec<Vec<String>> = (0..3)
        .map(|t| {
            vec![
                format!("tenant {t}"),
                f1(r.without_quota[t].guarantee_gbps),
                f1(r.without_quota[t].admitted_gbps),
                f1(r.with_quota[t].admitted_gbps),
            ]
        })
        .collect();
    print_table(
        "Extension (Sec 5.2): per-tenant admitted QoSh goodput (Gbps)",
        &["tenant", "guarantee", "plain Aequitas", "with quota server"],
        &rows,
    );
    println!(
        "QoSh 99.9p RNL with quota active: {} us",
        crate::report::opt(r.qosh_p999_us, 1)
    );
}

// ---------------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------------

/// Result of the size-scaled-MD ablation.
pub struct MdSizeAblation {
    /// Admitted QoSh byte share of the 32 KB and 64 KB populations with
    /// Algorithm 1's size scaling.
    pub with_scaling: [f64; 2],
    /// Same, with the scaling disabled.
    pub without_scaling: [f64; 2],
}

/// Half the hosts send 32 KB RPCs, half 64 KB (as Fig. 20); compare each
/// size class's admitted share with and without size-proportional MD.
pub fn ablation_md_size(scale: Scale) -> MdSizeAblation {
    let run = |scaled: bool, seed: u64| -> [f64; 2] {
        let n = 17;
        let mut cfg = slo_config_33();
        cfg.scale_md_by_size = scaled;
        let mut setup = MacroSetup::star_3qos(n);
        setup.policy = PolicyChoice::Aequitas(cfg);
        setup.duration = scale.pick(SimDuration::from_ms(24), SimDuration::from_ms(100));
        setup.warmup = scale.pick(SimDuration::from_ms(8), SimDuration::from_ms(30));
        setup.seed = seed;
        for h in 0..n {
            let size = if h % 2 == 0 { 32_768 } else { 65_536 };
            setup.workloads[h] = Some(WorkloadSpec {
                arrival: ArrivalProcess::BurstOnOff {
                    mu: 0.8,
                    rho: 1.4,
                    period: SimDuration::from_us(100),
                },
                pattern: TrafficPattern::AllToAll,
                classes: vec![
                    PrioritySpec {
                        priority: Priority::PerformanceCritical,
                        byte_share: 0.6,
                        sizes: SizeDist::Fixed(size),
                    },
                    PrioritySpec {
                        priority: Priority::BestEffort,
                        byte_share: 0.4,
                        sizes: SizeDist::Fixed(size),
                    },
                ],
                stop: None,
            });
        }
        let r = run_macro(setup);
        let mut admitted = [0u64; 2];
        let mut offered = [0u64; 2];
        for c in &r.completions {
            let idx = if c.size_bytes == 32_768 { 0 } else { 1 };
            if c.qos_requested == QosClass::HIGH {
                offered[idx] += c.size_bytes;
                if c.qos_run == QosClass::HIGH {
                    admitted[idx] += c.size_bytes;
                }
            }
        }
        [
            admitted[0] as f64 / offered[0].max(1) as f64,
            admitted[1] as f64 / offered[1].max(1) as f64,
        ]
    };
    MdSizeAblation {
        with_scaling: run(true, 81),
        without_scaling: run(false, 82),
    }
}

/// Print the MD-size ablation.
pub fn print_ablation_md_size(r: &MdSizeAblation) {
    let rows = vec![
        vec![
            "32KB".into(),
            format!("{:.1}%", r.with_scaling[0] * 100.0),
            format!("{:.1}%", r.without_scaling[0] * 100.0),
        ],
        vec![
            "64KB".into(),
            format!("{:.1}%", r.with_scaling[1] * 100.0),
            format!("{:.1}%", r.without_scaling[1] * 100.0),
        ],
    ];
    print_table(
        "Ablation: size-scaled multiplicative decrease (admitted QoSh fraction)",
        &["size", "with scaling (Alg 1)", "without scaling"],
        &rows,
    );
}

/// Result of the increment-window ablation.
pub struct WindowAblation {
    /// QoSh 99.9p RNL (µs) with Algorithm 1's percentile-scaled window.
    pub with_window_us: Option<f64>,
    /// QoSh 99.9p RNL (µs) with a near-zero window (AI on every good
    /// completion).
    pub without_window_us: Option<f64>,
    /// SLO for reference.
    pub slo_us: f64,
}

/// The increment window is what makes the controller respect *tail*
/// percentiles: with it removed, additive increase fires on every good
/// completion, overwhelming the occasional multiplicative decrease and
/// pushing the tail past the SLO.
pub fn ablation_window(scale: Scale) -> WindowAblation {
    let run = |window_override: Option<SimDuration>, seed: u64| {
        let mut cfg = slo_config_33();
        cfg.increment_window_override = window_override;
        let n = 9;
        let mut setup = MacroSetup::star_3qos(n);
        setup.policy = PolicyChoice::Aequitas(cfg);
        setup.duration = scale.pick(SimDuration::from_ms(30), SimDuration::from_ms(120));
        setup.warmup = scale.pick(SimDuration::from_ms(10), SimDuration::from_ms(40));
        setup.seed = seed;
        for h in 0..n {
            setup.workloads[h] = Some(node33_workload([0.6, 0.3, 0.1], None));
        }
        let r = run_macro(setup);
        p999_rnl_us(&r.completions, QosClass::HIGH)
    };
    WindowAblation {
        with_window_us: run(None, 83),
        without_window_us: run(Some(SimDuration::from_ns(1)), 84),
        slo_us: 15.0,
    }
}

/// Print the window ablation.
pub fn print_ablation_window(r: &WindowAblation) {
    let rows = vec![vec![
        f1(r.slo_us),
        crate::report::opt(r.with_window_us, 1),
        crate::report::opt(r.without_window_us, 1),
    ]];
    print_table(
        "Ablation: percentile-scaled increment window (QoSh 99.9p RNL, us)",
        &["SLO", "with window (Alg 1)", "window removed"],
        &rows,
    );
}

/// Result of the downgrade-versus-drop ablation.
pub struct DropAblation {
    /// Total goodput (Gbps) with QoS-downgrade (Aequitas).
    pub downgrade_goodput_gbps: f64,
    /// Total goodput (Gbps) with drop-based admission control.
    pub drop_goodput_gbps: f64,
    /// Fraction of offered bytes rejected by the drop policy.
    pub drop_fraction: f64,
    /// QoSh 99.9p RNL under both (µs): (downgrade, drop).
    pub qosh_p999_us: [Option<f64>; 2],
}

/// Downgrade versus drop: both meet the QoSh SLO, but dropping throws the
/// excess work away while downgrading completes it on the scavenger class.
pub fn ablation_drop(scale: Scale) -> DropAblation {
    let run = |choice: PolicyChoice, seed: u64| {
        let n = 9;
        let mut setup = MacroSetup::star_3qos(n);
        setup.policy = choice;
        setup.duration = scale.pick(SimDuration::from_ms(24), SimDuration::from_ms(100));
        setup.warmup = scale.pick(SimDuration::from_ms(8), SimDuration::from_ms(30));
        setup.seed = seed;
        for h in 0..n {
            setup.workloads[h] = Some(node33_workload([0.6, 0.3, 0.1], None));
        }
        run_macro(setup)
    };
    let down = run(PolicyChoice::Aequitas(slo_config_33()), 85);
    let drop = run(PolicyChoice::DropExcess(slo_config_33()), 86);
    let goodput = |r: &crate::harness::MacroResult| {
        r.completions.iter().map(|c| c.size_bytes).sum::<u64>() as f64 * 8.0
            / r.measure_secs
            / 1e9
    };
    let offered_gbps = |r: &crate::harness::MacroResult| {
        // Offered = completed + dropped; approximate dropped share from
        // goodput deficit versus the downgrade run.
        goodput(r)
    };
    let dg = goodput(&down);
    let dr = offered_gbps(&drop);
    DropAblation {
        downgrade_goodput_gbps: dg,
        drop_goodput_gbps: dr,
        drop_fraction: ((dg - dr) / dg).max(0.0),
        qosh_p999_us: [
            p999_rnl_us(&down.completions, QosClass::HIGH),
            p999_rnl_us(&drop.completions, QosClass::HIGH),
        ],
    }
}

/// Print the drop ablation.
pub fn print_ablation_drop(r: &DropAblation) {
    let rows = vec![
        vec![
            "downgrade (Aequitas)".into(),
            f1(r.downgrade_goodput_gbps),
            crate::report::opt(r.qosh_p999_us[0], 1),
        ],
        vec![
            "drop excess".into(),
            f1(r.drop_goodput_gbps),
            crate::report::opt(r.qosh_p999_us[1], 1),
        ],
    ];
    print_table(
        "Ablation: QoS-downgrade vs drop (per-host goodput Gbps, QoSh p999 us)",
        &["policy", "goodput", "QoSh p999"],
        &rows,
    );
    println!(
        "dropping rejects {:.1}% of the work that downgrading would deliver",
        r.drop_fraction * 100.0
    );
}

/// Result of the floor ablation.
pub struct FloorAblation {
    /// Admitted QoSh share in the recovery phase with the floor (Alg 1).
    pub with_floor_share: f64,
    /// Admitted QoSh share in the recovery phase with floor = 0.
    pub without_floor_share: f64,
}

/// Starvation avoidance: a single channel overloads QoSh for the first
/// half of the run (its admit probability collapses), then drops to a
/// light, easily admissible trickle. With the floor, the probe stream
/// rediscovers the healthy network and the probability climbs back; with
/// floor = 0 the probability pins at exactly zero — no admissions, no
/// measurements, no recovery, ever (§5.1's starvation argument).
pub fn ablation_floor(scale: Scale) -> FloorAblation {
    let run = |floor: f64, seed: u64| {
        let mut cfg = aequitas::AequitasConfig::two_qos(SloTarget::absolute(
            SimDuration::from_us(15),
            8,
            99.9,
        ));
        cfg.floor = floor;
        let n = 3;
        let mut setup = MacroSetup::star_3qos(n);
        setup.engine = aequitas_netsim::EngineConfig::default_2qos();
        setup.mapping = QosMapping::two_level();
        setup.policy = PolicyChoice::Aequitas(cfg);
        let half = scale.pick(SimDuration::from_ms(80), SimDuration::from_ms(400));
        setup.duration = half * 2;
        setup.warmup = half + half / 4; // measure the recovery tail
        setup.seed = seed;
        // Both senders start in heavy QoSh overload; at `half` the
        // control loop below drops them to a 10% in-profile trickle on the
        // same channels.
        for h in 0..2 {
            setup.workloads[h] = Some(WorkloadSpec {
                arrival: ArrivalProcess::Uniform { load: 1.0 },
                pattern: TrafficPattern::ManyToOne { dst: 2 },
                classes: vec![
                    PrioritySpec {
                        priority: Priority::PerformanceCritical,
                        byte_share: 0.9,
                        sizes: SizeDist::Fixed(32_768),
                    },
                    PrioritySpec {
                        priority: Priority::BestEffort,
                        byte_share: 0.1,
                        sizes: SizeDist::Fixed(32_768),
                    },
                ],
                stop: None,
            });
        }
        let half_t = SimTime::ZERO + half;
        let warm_t = SimTime::ZERO + setup.warmup;
        let mut switched = false;
        let mut stash: Vec<aequitas_rpc::RpcCompletion> = Vec::new();
        let r = run_macro_controlled(setup, SimDuration::from_ms(2), |eng, now| {
            for h in 0..2 {
                stash.extend(eng.agents_mut()[h].take_completions());
            }
            if !switched && now >= half_t {
                switched = true;
                for h in 0..2 {
                    // The app's demand collapses: a light trickle of PC on
                    // the same (dst, QoS) channel.
                    eng.agents_mut()[h].set_byte_share(0, 0.02);
                    eng.agents_mut()[h].set_byte_share(1, 0.98);
                }
            }
        });
        stash.extend(r.completions.iter().copied());
        stash.extend(r.warmup_completions.iter().copied());
        // Share of post-recovery PC RPCs admitted on QoSh.
        let (mut adm, mut tot) = (0u64, 0u64);
        for c in stash.iter().filter(|c| {
            c.issued_at >= warm_t && c.qos_requested == QosClass::HIGH
        }) {
            tot += 1;
            if c.qos_run == QosClass::HIGH {
                adm += 1;
            }
        }
        if tot == 0 {
            0.0
        } else {
            adm as f64 / tot as f64
        }
    };
    FloorAblation {
        with_floor_share: run(0.01, 87),
        without_floor_share: run(0.0, 88),
    }
}

/// Print the floor ablation.
pub fn print_ablation_floor(r: &FloorAblation) {
    let rows = vec![vec![
        format!("{:.1}%", r.with_floor_share * 100.0),
        format!("{:.1}%", r.without_floor_share * 100.0),
    ]];
    print_table(
        "Ablation: admit-probability floor (in-profile traffic admitted after overload clears)",
        &["floor = 0.01 (Alg 1)", "floor = 0"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_server_honours_guarantee() {
        let r = quota(Scale::quick());
        let t0_plain = r.without_quota[0].admitted_gbps;
        let t0_quota = r.with_quota[0].admitted_gbps;
        assert!(
            t0_quota >= 8.0,
            "guaranteed tenant should get ~10 Gbps, got {t0_quota:.1}"
        );
        assert!(
            t0_quota > t0_plain,
            "quota should help the guaranteed tenant: {t0_plain:.1} -> {t0_quota:.1}"
        );
        // Other tenants still admit something (they share the remainder).
        assert!(r.with_quota[1].admitted_gbps > 0.5);
        assert!(r.with_quota[2].admitted_gbps > 0.5);
    }

    #[test]
    fn md_size_scaling_limits_over_admission() {
        let r = ablation_md_size(Scale::quick());
        // Without the scaling, a miss by a 16-MTU RPC costs the same as a
        // miss by a 1-MTU RPC, so the controller under-penalizes misses and
        // over-admits — visibly for both size populations.
        assert!(
            r.without_scaling[0] > r.with_scaling[0] + 0.1,
            "32KB population should be over-admitted without scaling: \
             with {:?} without {:?}",
            r.with_scaling,
            r.without_scaling
        );
        assert!(
            r.without_scaling[1] > r.with_scaling[1] + 0.1,
            "64KB population should be over-admitted without scaling: \
             with {:?} without {:?}",
            r.with_scaling,
            r.without_scaling
        );
    }

    #[test]
    fn window_removal_breaks_tail_slo() {
        let r = ablation_window(Scale::quick());
        let with = r.with_window_us.unwrap();
        let without = r.without_window_us.unwrap();
        assert!(
            without > with,
            "removing the window should worsen the tail: {with} vs {without}"
        );
        assert!(
            without > r.slo_us * 1.5,
            "without the window the SLO should be violated: {without}"
        );
    }

    #[test]
    fn downgrade_preserves_goodput_over_drop() {
        let r = ablation_drop(Scale::quick());
        assert!(
            r.downgrade_goodput_gbps > r.drop_goodput_gbps * 1.1,
            "downgrading should deliver more total work: {:.1} vs {:.1}",
            r.downgrade_goodput_gbps,
            r.drop_goodput_gbps
        );
    }

    #[test]
    fn floor_enables_recovery() {
        let r = ablation_floor(Scale::quick());
        assert!(
            r.with_floor_share > 0.3,
            "with the floor the in-profile trickle recovers: {:.2}",
            r.with_floor_share
        );
        assert!(
            r.with_floor_share > r.without_floor_share + 0.2,
            "floor=0 should visibly starve: {:.2} vs {:.2}",
            r.with_floor_share,
            r.without_floor_share
        );
        assert!(
            r.without_floor_share < 0.1,
            "with p pinned at zero nothing should be admitted: {:.2}",
            r.without_floor_share
        );
    }
}

// ---------------------------------------------------------------------------
// Adaptive applications: consuming the downgrade hint.
// ---------------------------------------------------------------------------

/// Result of the adaptive-application extension.
pub struct AdaptiveResult {
    /// Steady-state downgrade fraction without adaptation.
    pub static_downgrade_frac: f64,
    /// Steady-state downgrade fraction with apps reacting to hints.
    pub adaptive_downgrade_frac: f64,
    /// Admitted QoSh goodput (Gbps) in both runs (adaptation must not cost
    /// admitted volume): (static, adaptive).
    pub admitted_gbps: [f64; 2],
}

/// Algorithm 1 explicitly notifies applications of downgrades "as a hint to
/// adjust their RPC priorities". This experiment closes that loop: every
/// 5 ms each app lowers (or raises) its PC marking share toward the
/// fraction the network actually admits. Adapted apps see almost no
/// downgrades — they only mark what will be admitted — while the admitted
/// QoSh volume stays the same, removing the race-to-the-top incentive.
pub fn adaptive_apps(scale: Scale) -> AdaptiveResult {
    let n = 5;
    let build = |seed: u64| {
        let mut setup = MacroSetup::star_3qos(n);
        setup.engine = aequitas_netsim::EngineConfig::default_2qos();
        setup.mapping = QosMapping::two_level();
        setup.policy = PolicyChoice::Aequitas(aequitas::AequitasConfig::two_qos(
            SloTarget::absolute(SimDuration::from_us(15), 8, 99.9),
        ));
        setup.duration = scale.pick(SimDuration::from_ms(160), SimDuration::from_ms(800));
        setup.warmup = scale.pick(SimDuration::from_ms(100), SimDuration::from_ms(500));
        setup.seed = seed;
        for h in 0..n - 1 {
            setup.workloads[h] = Some(WorkloadSpec {
                arrival: ArrivalProcess::Uniform { load: 0.5 },
                pattern: TrafficPattern::ManyToOne { dst: n - 1 },
                classes: vec![
                    PrioritySpec {
                        priority: Priority::PerformanceCritical,
                        byte_share: 0.8,
                        sizes: SizeDist::Fixed(32_768),
                    },
                    PrioritySpec {
                        priority: Priority::BestEffort,
                        byte_share: 0.2,
                        sizes: SizeDist::Fixed(32_768),
                    },
                ],
                stop: None,
            });
        }
        setup
    };

    // Downgrade *rates* must be read from the issue-time counters: during
    // overload, downgraded RPCs languish in the scavenger backlog and are
    // invisible in the completion stream (survivor bias).
    struct RunOut {
        downgrade_frac: f64,
        admitted_gbps: f64,
    }
    let run_one = |seed: u64, adaptive: bool| -> RunOut {
        let setup = build(seed);
        let warm_t = SimTime::ZERO + setup.warmup;
        let measure_secs = setup
            .duration
            .saturating_sub(setup.warmup)
            .as_secs_f64();
        let mut at_warm: Option<Vec<(u64, u64)>> = None;
        let mut at_end: Vec<(u64, u64)> = vec![(0, 0); n - 1];
        let mut admitted_bytes = 0u64;
        let sync = SimDuration::from_ms(5);
        let r = run_macro_controlled(setup, sync, |eng, now| {
            // Track counters and harvest admitted-goodput completions.
            let mut counters = Vec::new();
            for h in 0..n - 1 {
                let host = &mut eng.agents_mut()[h];
                counters.push(host.stack().admission_counters().unwrap_or((0, 0)));
                let recent = host.take_completions();
                let mut pc = 0u64;
                let mut down = 0u64;
                for c in &recent {
                    if c.completed_at >= warm_t && c.qos_run == QosClass::HIGH {
                        admitted_bytes += c.size_bytes;
                    }
                    if c.qos_requested == QosClass::HIGH {
                        pc += 1;
                        if c.downgraded {
                            down += 1;
                        }
                    }
                }
                if adaptive && pc >= 10 {
                    let host = &mut eng.agents_mut()[h];
                    let downgrade_frac = down as f64 / pc as f64;
                    // The app re-marks its least-critical traffic down a
                    // class in proportion to the downgrades it was told
                    // about, and creeps back up while clean.
                    let cur = host.byte_share(0);
                    let next = if downgrade_frac > 0.02 {
                        (cur * (1.0 - 0.5 * downgrade_frac)).max(0.05)
                    } else {
                        (cur * 1.02).min(0.8)
                    };
                    host.set_byte_share(0, next);
                    host.set_byte_share(1, 1.0 - next);
                }
            }
            if now >= warm_t && at_warm.is_none() {
                at_warm = Some(counters.clone());
            }
            at_end = counters;
        });
        for c in r
            .completions
            .iter()
            .chain(r.warmup_completions.iter())
        {
            if c.completed_at >= warm_t && c.qos_run == QosClass::HIGH {
                admitted_bytes += c.size_bytes;
            }
        }
        let warm_counters = at_warm.unwrap_or_else(|| vec![(0, 0); n - 1]);
        let mut issued = 0u64;
        let mut downgraded = 0u64;
        for h in 0..n - 1 {
            issued += at_end[h].0 - warm_counters[h].0;
            downgraded += at_end[h].1 - warm_counters[h].1;
        }
        RunOut {
            downgrade_frac: downgraded as f64 / issued.max(1) as f64,
            admitted_gbps: admitted_bytes as f64 * 8.0 / measure_secs / 1e9,
        }
    };

    let stat = run_one(91, false);
    let adap = run_one(92, true);
    AdaptiveResult {
        static_downgrade_frac: stat.downgrade_frac,
        adaptive_downgrade_frac: adap.downgrade_frac,
        admitted_gbps: [stat.admitted_gbps, adap.admitted_gbps],
    }
}

/// Print the adaptive-application extension.
pub fn print_adaptive(r: &AdaptiveResult) {
    let rows = vec![
        vec![
            "static over-marking".into(),
            format!("{:.1}%", r.static_downgrade_frac * 100.0),
            f1(r.admitted_gbps[0]),
        ],
        vec![
            "adaptive (uses hints)".into(),
            format!("{:.1}%", r.adaptive_downgrade_frac * 100.0),
            f1(r.admitted_gbps[1]),
        ],
    ];
    print_table(
        "Extension: applications consuming the downgrade hint",
        &["application", "PC downgrade rate", "admitted QoSh Gbps"],
        &rows,
    );
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    #[test]
    fn hints_eliminate_downgrades_without_losing_admission() {
        let r = adaptive_apps(Scale::quick());
        assert!(
            r.static_downgrade_frac > 0.2,
            "static apps should see heavy downgrading: {:.2}",
            r.static_downgrade_frac
        );
        assert!(
            r.adaptive_downgrade_frac < r.static_downgrade_frac / 2.0,
            "adaptation should slash downgrades: {:.2} -> {:.2}",
            r.static_downgrade_frac,
            r.adaptive_downgrade_frac
        );
        // Admitted volume is preserved within 35%.
        let (a, b) = (r.admitted_gbps[0], r.admitted_gbps[1]);
        assert!(b > a * 0.65, "admitted volume lost: {a:.1} -> {b:.1}");
    }
}

// ---------------------------------------------------------------------------
// Core-fabric overload: the "no explicit signaling" structural claim.
// ---------------------------------------------------------------------------

/// Result of the oversubscribed-core experiment.
pub struct CoreOverloadResult {
    /// QoSh 99.9p RNL (µs), without Aequitas.
    pub without_us: Option<f64>,
    /// QoSh 99.9p RNL (µs), with Aequitas.
    pub with_us: Option<f64>,
    /// The SLO (µs).
    pub slo_us: f64,
}

/// §2.2.2/§3.1: overloads "can occur anywhere in the network", and Aequitas
/// handles them "without extra signaling to determine the location of
/// oversubscription points". Here the bottleneck is the *spine*, not any
/// edge link: a 2:1-oversubscribed leaf-spine carries all-to-all cross-rack
/// traffic; host NICs and ToR downlinks never saturate. The same end-host
/// RNL loop, knowing nothing about the topology, still restores the QoSh
/// SLO.
pub fn core_overload(scale: Scale) -> CoreOverloadResult {
    use aequitas_netsim::{LinkSpec, Topology};
    use aequitas_sim_core::BitRate;

    let racks = 4;
    let per_rack = 4;
    let n = racks * per_rack;
    let slo_us = 40.0;

    let run = |policy: PolicyChoice, seed: u64| {
        let edge = LinkSpec::default_100g();
        // Spine uplinks at half rate: aggregate core capacity is 2:1
        // oversubscribed versus the edge.
        let uplink = LinkSpec {
            rate: BitRate::from_gbps(50),
            propagation: edge.propagation,
        };
        let mut setup = MacroSetup::star_3qos(n);
        setup.topo = Topology::leaf_spine(racks, per_rack, 2, edge, uplink);
        setup.policy = policy;
        setup.duration = scale.pick(SimDuration::from_ms(60), SimDuration::from_ms(200));
        setup.warmup = scale.pick(SimDuration::from_ms(35), SimDuration::from_ms(120));
        setup.seed = seed;
        for h in 0..n {
            // Cross-rack-only destinations would need a custom pattern;
            // all-to-all suffices because 3/4 of destinations are remote,
            // so the core is the binding constraint at this load.
            setup.workloads[h] = Some(WorkloadSpec {
                arrival: ArrivalProcess::Poisson { load: 0.55 },
                pattern: TrafficPattern::AllToAll,
                classes: vec![
                    PrioritySpec {
                        priority: Priority::PerformanceCritical,
                        byte_share: 0.5,
                        sizes: SizeDist::Fixed(32_768),
                    },
                    PrioritySpec {
                        priority: Priority::BestEffort,
                        byte_share: 0.5,
                        sizes: SizeDist::Fixed(32_768),
                    },
                ],
                stop: None,
            });
        }
        let r = run_macro(setup);
        p999_rnl_us(&r.completions, QosClass::HIGH)
    };

    let slo = aequitas::AequitasConfig::three_qos(
        SloTarget::absolute(SimDuration::from_us_f64(slo_us), 8, 99.9),
        SloTarget::absolute(SimDuration::from_us_f64(slo_us * 1.5), 8, 99.9),
    );
    CoreOverloadResult {
        without_us: run(PolicyChoice::Static, 95),
        with_us: run(PolicyChoice::Aequitas(slo), 96),
        slo_us,
    }
}

/// Print the core-overload experiment.
pub fn print_core_overload(r: &CoreOverloadResult) {
    let rows = vec![vec![
        f1(r.slo_us),
        crate::report::opt(r.without_us, 1),
        crate::report::opt(r.with_us, 1),
    ]];
    print_table(
        "Extension: spine (core) overload — QoSh 99.9p RNL (us), no topology knowledge",
        &["SLO", "w/o Aequitas", "w/ Aequitas"],
        &rows,
    );
}

#[cfg(test)]
mod core_overload_tests {
    use super::*;

    #[test]
    fn slo_restored_without_knowing_where_the_overload_is() {
        let r = core_overload(Scale::quick());
        let without = r.without_us.unwrap();
        let with = r.with_us.unwrap();
        assert!(
            without > r.slo_us * 2.0,
            "the oversubscribed core should blow the SLO: {without}"
        );
        assert!(
            with < without / 2.0,
            "admission control should contain the core overload: {without} -> {with}"
        );
        assert!(
            with < r.slo_us * 2.0,
            "QoSh tail {with} should land near the {} us SLO",
            r.slo_us
        );
    }
}
