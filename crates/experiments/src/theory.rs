//! Figs. 8, 9, 10 and the §5.2 guaranteed-share bound.
//!
//! * Fig. 8 — closed-form worst-case delay for 2 QoS classes (4:1, μ=0.8,
//!   ρ=1.2).
//! * Fig. 9 — fluid-model worst-case delay for 3 QoS classes under weights
//!   8:4:1 and 50:4:1 (μ=0.8, ρ=1.4), QoS_m:QoS_l fixed at 2:1.
//! * Fig. 10 — packet-level simulator validation against the Fig. 8 theory:
//!   senders replay the Fig. 7 burst pattern through a WFQ switch with CC
//!   disabled and unbounded buffers, and the measured worst-case queuing
//!   delay is compared point-by-point with the closed form.

use crate::harness::Scale;
use crate::report::{f3, print_table};
use aequitas_analysis::{delay_h, delay_l, fluid_delays, guaranteed_share, FluidSpec, TwoQosParams};
use aequitas_netsim::{
    Engine, EngineConfig, FlowKey, HostAgent, HostCtx, HostId, LinkSpec, Packet, PacketKind,
    QueueKind, SchedulerKind, Topology,
};
use aequitas_sim_core::{SimDuration, SimTime};
use aequitas_telemetry::{Telemetry, TraceEvent};

/// One point of a theory curve.
#[derive(Debug, Clone, Copy)]
pub struct DelayPoint {
    /// QoSh-share (fraction).
    pub x: f64,
    /// Normalized worst-case delay per class.
    pub delays: [f64; 3],
    /// Number of classes populated in `delays`.
    pub classes: usize,
}

/// Fig. 8 result: the closed-form 2-QoS curves.
pub struct Fig8Result {
    /// Model parameters.
    pub params: TwoQosParams,
    /// Curve points.
    pub points: Vec<DelayPoint>,
}

/// Compute Fig. 8.
pub fn fig08() -> Fig8Result {
    let params = TwoQosParams::fig8();
    let points = (1..100)
        .map(|i| {
            let x = i as f64 / 100.0;
            DelayPoint {
                x,
                delays: [delay_h(params, x), delay_l(params, x), 0.0],
                classes: 2,
            }
        })
        .collect();
    Fig8Result { params, points }
}

/// Print Fig. 8.
pub fn print_fig08(r: &Fig8Result) {
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .step_by(5)
        .map(|p| {
            vec![
                format!("{:.0}%", p.x * 100.0),
                f3(p.delays[0]),
                f3(p.delays[1]),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig 8: theoretical worst-case delay, 2 QoS (weights {}:1, mu={}, rho={})",
            r.params.phi, r.params.mu, r.params.rho
        ),
        &["QoSh-share", "Delay_h", "Delay_l"],
        &rows,
    );
}

/// Fig. 9 result: 3-QoS fluid curves for two weight settings.
pub struct Fig9Result {
    /// (weights, curve) pairs.
    pub curves: Vec<(Vec<f64>, Vec<DelayPoint>)>,
}

/// Compute Fig. 9.
pub fn fig09() -> Fig9Result {
    let mu = 0.8;
    let rho = 1.4;
    let mut curves = Vec::new();
    for weights in [vec![8.0, 4.0, 1.0], vec![50.0, 4.0, 1.0]] {
        let mut pts = Vec::new();
        for i in 1..100 {
            let x = i as f64 / 100.0;
            // QoSm:QoSl share ratio fixed at 2:1 (as in the paper).
            let shares = vec![x, (1.0 - x) * 2.0 / 3.0, (1.0 - x) / 3.0];
            let d = fluid_delays(&FluidSpec {
                weights: weights.clone(),
                shares,
                mu,
                rho,
            });
            pts.push(DelayPoint {
                x,
                delays: [d[0], d[1], d[2]],
                classes: 3,
            });
        }
        curves.push((weights, pts));
    }
    Fig9Result { curves }
}

/// Print Fig. 9 with the admissible (inversion-free) region boundary.
pub fn print_fig09(r: &Fig9Result) {
    for (weights, pts) in &r.curves {
        let rows: Vec<Vec<String>> = pts
            .iter()
            .step_by(5)
            .map(|p| {
                vec![
                    format!("{:.0}%", p.x * 100.0),
                    f3(p.delays[0]),
                    f3(p.delays[1]),
                    f3(p.delays[2]),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig 9: simulated WFQ worst-case delay, 3 QoS, weights {:?} (mu=0.8, rho=1.4)",
                weights
            ),
            &["QoSh-share", "QoSh", "QoSm", "QoSl"],
            &rows,
        );
        let boundary = pts
            .iter()
            .find(|p| p.delays[0] > p.delays[1] + 1e-9 || p.delays[1] > p.delays[2] + 1e-9)
            .map(|p| p.x);
        println!(
            "admissible region (no priority inversion) extends to QoSh-share ~{}",
            boundary.map_or("100%".into(), |b| format!("{:.0}%", b * 100.0))
        );
    }
}

// ---------------------------------------------------------------------------
// Fig. 10: packet-level validation.
// ---------------------------------------------------------------------------

/// A sender that replays the Fig. 7 arrival pattern directly as raw packets
/// (no transport, no CC), splitting bytes across classes deterministically.
struct BurstBlaster {
    dst: Option<HostId>,
    shares: Vec<f64>,
    /// Gap between packet emissions during the burst phase.
    emit_gap: SimDuration,
    burst_len: SimDuration,
    period: SimDuration,
    horizon: SimTime,
    sent_bytes: Vec<f64>,
    next_pkt: u64,
    /// Receiver side: worst queuing delay per class, in ps.
    max_delay_ps: Vec<u64>,
    /// Fixed path delay to subtract (prop + switch serialization + prop).
    base_path_ps: u64,
}

const EMIT: u64 = 7;
const PKT_BYTES: u32 = 4096 + 64;

impl BurstBlaster {
    fn sender(
        dst: HostId,
        shares: Vec<f64>,
        per_sender_rate: f64, // fraction of line rate during burst
        mu_over_rho: f64,
        period: SimDuration,
        horizon: SimTime,
    ) -> Self {
        // Emit gap so that this sender's burst-phase rate is
        // per_sender_rate * 100 Gbps.
        let wire = LinkSpec::default_100g().rate.serialize_time(PKT_BYTES as u64);
        BurstBlaster {
            dst: Some(dst),
            sent_bytes: vec![0.0; shares.len()],
            shares,
            emit_gap: wire.mul_f64(1.0 / per_sender_rate),
            burst_len: period.mul_f64(mu_over_rho),
            period,
            horizon,
            next_pkt: 0,
            max_delay_ps: Vec::new(),
            base_path_ps: 0,
        }
    }

    fn receiver(classes: usize) -> Self {
        let link = LinkSpec::default_100g();
        let base = (link.propagation * 2 + link.rate.serialize_time(PKT_BYTES as u64)).as_ps();
        BurstBlaster {
            dst: None,
            shares: vec![],
            emit_gap: SimDuration::ZERO,
            burst_len: SimDuration::ZERO,
            period: SimDuration::from_us(1),
            horizon: SimTime::ZERO,
            sent_bytes: vec![],
            next_pkt: 0,
            max_delay_ps: vec![0; classes],
            base_path_ps: base,
        }
    }

    fn emit(&mut self, ctx: &mut HostCtx) {
        let now = ctx.now();
        if now >= self.horizon {
            return;
        }
        // Deterministic class pick: the class most behind its byte share.
        let total: f64 = self.sent_bytes.iter().sum::<f64>() + 1.0;
        let class = (0..self.shares.len())
            .max_by(|&a, &b| {
                let da = self.shares[a] * total - self.sent_bytes[a];
                let db = self.shares[b] * total - self.sent_bytes[b];
                da.partial_cmp(&db).unwrap()
            })
            .unwrap();
        self.sent_bytes[class] += PKT_BYTES as f64;
        let id = self.next_pkt;
        self.next_pkt += 1;
        ctx.send(Packet {
            id,
            flow: FlowKey {
                src: ctx.host(),
                dst: self.dst.unwrap(),
                class: class as u8,
            },
            size_bytes: PKT_BYTES,
            kind: PacketKind::Data {
                msg_id: id,
                seq: 0,
                is_last: true,
            },
            sent_at: now,
            rank: 0,
        });
        // Next emission: stay inside the burst phase of the period.
        let mut next = now + self.emit_gap;
        let period_start = next.align_down(self.period);
        if next.since(period_start) >= self.burst_len.saturating_sub(SimDuration::from_ps(1)) {
            next = period_start + self.period;
        }
        if next < self.horizon {
            ctx.set_timer(next, EMIT);
        }
    }
}

impl HostAgent for BurstBlaster {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        if self.dst.is_some() {
            ctx.set_timer(SimTime::ZERO, EMIT);
        }
    }
    fn on_packet(&mut self, ctx: &mut HostCtx, pkt: Packet) {
        let one_way = ctx.now().as_ps().saturating_sub(pkt.sent_at.as_ps());
        let queued = one_way.saturating_sub(self.base_path_ps);
        let c = pkt.class().min(self.max_delay_ps.len().saturating_sub(1));
        if !self.max_delay_ps.is_empty() {
            self.max_delay_ps[c] = self.max_delay_ps[c].max(queued);
        }
    }
    fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
        if token == EMIT {
            self.emit(ctx);
        }
    }
}

/// One Fig. 10 point: share, simulated, and theoretical delays.
#[derive(Debug, Clone, Copy)]
pub struct ValidationPoint {
    /// QoSh-share.
    pub x: f64,
    /// Simulated normalized worst-case delay (h, l).
    pub sim: [f64; 2],
    /// Closed-form prediction (h, l).
    pub theory: [f64; 2],
}

/// Fig. 10 result.
pub struct Fig10Result {
    /// Curve points.
    pub points: Vec<ValidationPoint>,
    /// Max |sim − theory| across points for (h, l).
    pub max_err: [f64; 2],
}

/// Run one Fig. 10 validation point at QoSh-share `x`, optionally traced.
///
/// An enabled `telemetry` handle is wired through the engine and stamped
/// with a `run_info` event describing the setup (aggregate μ=0.8, ρ=1.2,
/// 100 µs period, WFQ 4:1), which makes the trace self-contained for
/// `aequitas-replay audit` — the delay-bound checks resolve their
/// parameters from the trace alone. The replay round-trip tests run this
/// exact scenario and compare the replayed worst-case queuing delays
/// against `ValidationPoint::sim`.
pub fn fig10_point(x: f64, scale: Scale, telemetry: &Telemetry) -> ValidationPoint {
    let params = TwoQosParams::fig8();
    let period = SimDuration::from_us(100);
    let periods = scale.pick(20u64, 100u64);
    let horizon = SimTime::ZERO + period * periods;
    let n_senders = 2;
    let per_sender = params.rho / n_senders as f64;

    let topo = Topology::star(n_senders + 1, LinkSpec::default_100g());
    let config = EngineConfig {
        switch_scheduler: SchedulerKind::Wfq(vec![params.phi, 1.0]),
        host_scheduler: SchedulerKind::Fifo(2),
        switch_buffer_bytes: None, // paper: "buffer size set to a large value"
        host_buffer_bytes: None,
        classes: 2,
        loss_probability: 0.0,
        loss_seed: 0,
        event_queue: QueueKind::Calendar,
        faults: None,
    };
    let mut agents: Vec<BurstBlaster> = (0..n_senders)
        .map(|_| {
            BurstBlaster::sender(
                HostId(n_senders),
                vec![x, 1.0 - x],
                per_sender,
                params.mu / params.rho,
                period,
                horizon,
            )
        })
        .collect();
    agents.push(BurstBlaster::receiver(2));
    let mut eng = Engine::new(topo, agents, config);
    if telemetry.is_enabled() {
        telemetry.emit(
            SimTime::ZERO,
            TraceEvent::RunInfo {
                experiment: "fig10".to_string(),
                hosts: (n_senders + 1) as u32,
                classes: 2,
                weights: vec![params.phi, 1.0],
                slos_per_mtu_ps: Vec::new(),
                slo_percentile: 0.0,
                warmup_ps: 0,
                duration_ps: horizon.as_ps(),
                senders: n_senders as u32,
                mu: params.mu,
                rho: params.rho,
                period_ps: period.as_ps(),
            },
        );
        eng.set_telemetry(telemetry.clone());
    }
    eng.run_until(horizon + SimDuration::from_ms(1));
    let rx = &eng.agents()[n_senders];
    let norm = period.as_ps() as f64;
    let sim = [
        rx.max_delay_ps[0] as f64 / norm,
        rx.max_delay_ps[1] as f64 / norm,
    ];
    ValidationPoint {
        x,
        sim,
        theory: [delay_h(params, x), delay_l(params, x)],
    }
}

/// Run the Fig. 10 validation.
pub fn fig10(scale: Scale) -> Fig10Result {
    let telemetry = aequitas_telemetry::global();
    let mut points = Vec::new();
    for i in (5..=95).step_by(5) {
        let x = i as f64 / 100.0;
        points.push(fig10_point(x, scale, &telemetry));
    }
    let mut max_err = [0.0f64; 2];
    for p in &points {
        for (k, err) in max_err.iter_mut().enumerate() {
            *err = err.max((p.sim[k] - p.theory[k]).abs());
        }
    }
    Fig10Result { points, max_err }
}

/// Print Fig. 10.
pub fn print_fig10(r: &Fig10Result) {
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.x * 100.0),
                f3(p.sim[0]),
                f3(p.theory[0]),
                f3(p.sim[1]),
                f3(p.theory[1]),
            ]
        })
        .collect();
    print_table(
        "Fig 10: simulator vs theory, 2 QoS (weights 4:1, mu=0.8, rho=1.2)",
        &["QoSh-share", "sim_h", "theory_h", "sim_l", "theory_l"],
        &rows,
    );
    println!(
        "max |sim - theory|: QoSh {:.4}, QoSl {:.4}",
        r.max_err[0], r.max_err[1]
    );
}

/// The §5.2 guaranteed-share table for the standard configurations.
pub struct GuaranteeRow {
    /// WFQ weights.
    pub weights: Vec<f64>,
    /// Class index.
    pub class: usize,
    /// Burst load.
    pub rho: f64,
    /// Guaranteed admitted rate (fraction of line rate).
    pub share: f64,
}

/// Compute the guaranteed-share table.
pub fn guaranteed_table() -> Vec<GuaranteeRow> {
    let mu = 0.8;
    let mut rows = Vec::new();
    for weights in [vec![4.0, 1.0], vec![8.0, 4.0, 1.0]] {
        for rho in [1.2, 1.4, 2.0] {
            for class in 0..weights.len() - 1 {
                rows.push(GuaranteeRow {
                    weights: weights.clone(),
                    class,
                    rho,
                    share: guaranteed_share(1.0, &weights, class, mu, rho),
                });
            }
        }
    }
    rows
}

/// Print the guaranteed-share table.
pub fn print_guaranteed(rows: &[GuaranteeRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.weights),
                format!("QoS{}", r.class),
                format!("{:.1}", r.rho),
                format!("{:.1}%", r.share * 100.0),
            ]
        })
        .collect();
    print_table(
        "Sec 5.2: guaranteed admitted share r*(phi_i/sum phi)*(mu/rho), mu=0.8",
        &["weights", "class", "rho", "guaranteed share"],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig08_has_inversion_crossover() {
        let r = fig08();
        // Below phi/(phi+1) no inversion; above, inversion.
        let pre = r.points.iter().find(|p| (p.x - 0.5).abs() < 1e-9).unwrap();
        assert!(pre.delays[0] <= pre.delays[1]);
        let post = r.points.iter().find(|p| (p.x - 0.9).abs() < 1e-9).unwrap();
        assert!(post.delays[0] > post.delays[1]);
    }

    #[test]
    fn fig09_weight_50_extends_admissible_region() {
        let r = fig09();
        let boundary = |pts: &Vec<DelayPoint>| {
            pts.iter()
                .find(|p| p.delays[0] > p.delays[1] + 1e-9 || p.delays[1] > p.delays[2] + 1e-9)
                .map(|p| p.x)
                .unwrap_or(1.0)
        };
        let b8 = boundary(&r.curves[0].1);
        let b50 = boundary(&r.curves[1].1);
        assert!(b50 > b8, "b50 {b50} <= b8 {b8}");
    }

    #[test]
    fn fig10_simulation_tracks_theory() {
        let r = fig10(Scale::quick());
        // The paper reports close tracking with QoSl slightly above theory
        // (packet vs fluid); accept a modest envelope.
        assert!(
            r.max_err[0] < 0.08,
            "QoSh max error {} too large",
            r.max_err[0]
        );
        assert!(
            r.max_err[1] < 0.12,
            "QoSl max error {} too large",
            r.max_err[1]
        );
        // The priority-inversion crossover must appear in simulation too.
        let post = r.points.iter().find(|p| p.x >= 0.9).unwrap();
        assert!(post.sim[0] > post.sim[1]);
    }

    #[test]
    fn guaranteed_table_shrinks_with_rho() {
        let rows = guaranteed_table();
        let g12 = rows
            .iter()
            .find(|r| r.weights.len() == 2 && r.rho == 1.2 && r.class == 0)
            .unwrap();
        let g20 = rows
            .iter()
            .find(|r| r.weights.len() == 2 && r.rho == 2.0 && r.class == 0)
            .unwrap();
        assert!(g12.share > g20.share);
    }
}
