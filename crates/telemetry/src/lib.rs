//! Structured simulation tracing, a metrics registry, and a per-run flight
//! recorder for the Aequitas simulator.
//!
//! The crate revolves around one cheap-to-clone handle, [`Telemetry`]. Every
//! instrumented layer (netsim ports, qdisc schedulers, the transport, the
//! RPC stack, the admission controller) holds a clone and calls
//! [`Telemetry::emit`] / [`Telemetry::with_metrics`] at its lifecycle
//! points. A disabled handle is a `None` — each call is a single branch and
//! no allocation, so instrumentation stays in the hot paths permanently and
//! costs nothing unless a run opts in (verified by `crates/bench`).
//!
//! Three consumers are built in:
//!
//! * [`trace::JsonlWriter`] streams typed events as JSONL for offline
//!   analysis (`aequitas-sim run <exp> --trace out.jsonl`),
//! * [`trace::FlightRecorder`] keeps the last N events in a ring buffer so
//!   failing tests can dump the moments before the problem,
//! * [`metrics::MetricsRegistry`] aggregates counters, gauges, and
//!   [`hist::LogLinearHistogram`]s keyed by `(metric, labels)` and samples
//!   them into time-series on a simulated-time cadence
//!   (`--metrics out.csv`).

#![warn(missing_docs)]

pub mod hist;
pub mod metrics;
pub mod trace;

pub use hist::LogLinearHistogram;
pub use metrics::{labels, MetricId, MetricsRegistry};
pub use trace::{
    FlightRecorder, JsonlWriter, NodeKind, NullSink, TraceEvent, TraceSink,
    TRACE_SCHEMA_FINGERPRINT, TRACE_SCHEMA_VERSION,
};

use aequitas_sim_core::{SimDuration, SimTime};
use std::sync::{Arc, Mutex, OnceLock};

/// Tunables for an enabled telemetry handle.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Simulated-time cadence at which the metrics registry is snapshotted
    /// into time-series.
    pub sample_every: SimDuration,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_every: SimDuration::from_us(10),
        }
    }
}

struct TraceState {
    sink: Box<dyn TraceSink>,
    seq: u64,
    /// Largest simulated timestamp seen so far; stamps events (warns) that
    /// arrive without their own clock.
    last_t_ps: u64,
    /// Serialization buffer handed to the sink on every event, so steady-
    /// state emission allocates nothing.
    scratch: String,
}

struct Inner {
    trace: Mutex<TraceState>,
    metrics: Mutex<MetricsRegistry>,
    sample_every: SimDuration,
    next_sample: Mutex<u64>,
}

/// A shared telemetry handle; clones refer to the same sink and registry.
///
/// The handle is `Send + Sync` so the parallel sweep harness can move it
/// across worker threads. A disabled handle (the default) short-circuits
/// every call on a single `Option` check.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The no-op handle: every call is a single branch, nothing is recorded.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle feeding `sink`. The first line of every enabled
    /// trace is a `trace_header` event (seq 0) carrying
    /// [`trace::TRACE_SCHEMA_VERSION`], so offline tooling can reject
    /// streams it does not understand.
    pub fn with_sink(sink: impl TraceSink + 'static, config: TelemetryConfig) -> Self {
        let tel = Telemetry {
            inner: Some(Arc::new(Inner {
                trace: Mutex::new(TraceState {
                    sink: Box::new(sink),
                    seq: 0,
                    last_t_ps: 0,
                    scratch: String::with_capacity(256),
                }),
                metrics: Mutex::new(MetricsRegistry::new()),
                sample_every: config.sample_every,
                next_sample: Mutex::new(0),
            })),
        };
        tel.emit(
            SimTime::ZERO,
            TraceEvent::TraceHeader {
                schema_version: trace::TRACE_SCHEMA_VERSION,
            },
        );
        tel
    }

    /// An enabled handle streaming JSONL to `path` (created/truncated).
    pub fn to_file(
        path: impl AsRef<std::path::Path>,
        config: TelemetryConfig,
    ) -> std::io::Result<Self> {
        Ok(Telemetry::with_sink(JsonlWriter::create(path)?, config))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one trace event stamped with simulated time `now`. The event is
    /// handed to the sink as a struct together with a reused serialization
    /// buffer — steady-state emission performs no allocation.
    #[inline]
    pub fn emit(&self, now: SimTime, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            let st = &mut *inner.trace.lock().unwrap();
            let t_ps = now.as_ps();
            st.last_t_ps = st.last_t_ps.max(t_ps);
            let seq = st.seq;
            st.seq += 1;
            st.sink.record_event(seq, t_ps, &event, &mut st.scratch);
        }
    }

    /// Emit a [`TraceEvent::Warn`] stamped with the most recent simulated
    /// timestamp this handle has seen.
    pub fn warn(&self, component: &str, message: impl Into<String>) {
        if let Some(inner) = &self.inner {
            let st = &mut *inner.trace.lock().unwrap();
            let (seq, t_ps) = (st.seq, st.last_t_ps);
            st.seq += 1;
            let event = TraceEvent::Warn {
                component: component.to_string(),
                message: message.into(),
            };
            st.sink.record_event(seq, t_ps, &event, &mut st.scratch);
        }
    }

    /// Run `f` against the metrics registry; a no-op when disabled.
    #[inline]
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|inner| f(&mut inner.metrics.lock().unwrap()))
    }

    /// Whether the sampling cadence says a snapshot is due at `now`.
    /// Callers that own gauges should refresh them before calling
    /// [`Telemetry::sample`].
    pub fn sample_due(&self, now: SimTime) -> bool {
        match &self.inner {
            Some(inner) => now.as_ps() >= *inner.next_sample.lock().unwrap(),
            None => false,
        }
    }

    /// Snapshot the registry into time-series at `now` and advance the
    /// cadence clock.
    pub fn sample(&self, now: SimTime) {
        if let Some(inner) = &self.inner {
            inner.metrics.lock().unwrap().sample(now);
            *inner.next_sample.lock().unwrap() = (now + inner.sample_every).as_ps();
            let mut st = inner.trace.lock().unwrap();
            st.last_t_ps = st.last_t_ps.max(now.as_ps());
        }
    }

    /// The configured sampling cadence, if enabled.
    pub fn sample_every(&self) -> Option<SimDuration> {
        self.inner.as_ref().map(|i| i.sample_every)
    }

    /// Flush the trace sink's buffering to its backing store.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.trace.lock().unwrap().sink.flush();
        }
    }

    /// The filesystem path of the trace sink, when the sink writes to one
    /// (i.e. a [`JsonlWriter`]). Used by the harness self-audit to locate
    /// the finished trace.
    pub fn trace_path(&self) -> Option<std::path::PathBuf> {
        self.inner
            .as_ref()
            .and_then(|i| i.trace.lock().unwrap().sink.path().map(|p| p.to_path_buf()))
    }

    /// Write all sampled metric series as CSV (`t_us,metric,labels,value`).
    pub fn write_metrics_csv(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        match &self.inner {
            Some(inner) => inner.metrics.lock().unwrap().write_series_csv(w),
            None => Ok(()),
        }
    }

    /// Write all sampled metric series to a CSV file at `path`.
    pub fn write_metrics_csv_path(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_metrics_csv(&mut w)
    }
}

fn global_slot() -> &'static Mutex<Option<Telemetry>> {
    static GLOBAL: OnceLock<Mutex<Option<Telemetry>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// Install `tel` as the process-global handle. Entry points that cannot
/// thread a handle through (the CLI's experiment table, baselines'
/// diagnostics) pick it up via [`global`].
pub fn install_global(tel: Telemetry) {
    *global_slot().lock().unwrap() = Some(tel);
}

/// Remove the process-global handle.
pub fn clear_global() {
    *global_slot().lock().unwrap() = None;
}

/// The process-global handle, or a disabled one when none is installed.
pub fn global() -> Telemetry {
    global_slot()
        .lock()
        .unwrap()
        .clone()
        .unwrap_or_else(Telemetry::disabled)
}

/// Shared warn helper: records through the global telemetry handle when one
/// is installed, otherwise falls back to stderr so diagnostics are never
/// silently lost.
pub fn warn(component: &str, message: impl Into<String>) {
    let tel = global();
    if tel.is_enabled() {
        tel.warn(component, message);
    } else {
        eprintln!("[{component}] {}", message.into());
    }
}

/// Trace-only note: recorded when a global handle is installed, dropped
/// otherwise. For chatty debug events that should never hit stderr. The
/// message closure is only evaluated when a handle is installed.
pub fn note(component: &str, message: impl FnOnce() -> String) {
    let tel = global();
    if tel.is_enabled() {
        tel.warn(component, message());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.emit(
            SimTime::from_us(1),
            TraceEvent::Warn {
                component: "t".into(),
                message: "m".into(),
            },
        );
        assert_eq!(tel.with_metrics(|m| m.num_series()), None);
        assert!(!tel.sample_due(SimTime::from_us(100)));
        tel.sample(SimTime::from_us(100));
        tel.flush();
    }

    #[test]
    fn emit_assigns_monotone_seq() {
        let fr = FlightRecorder::new(16);
        let tel = Telemetry::with_sink(fr.clone(), TelemetryConfig::default());
        for i in 0..3 {
            tel.emit(
                SimTime::from_us(i),
                TraceEvent::Warn {
                    component: "t".into(),
                    message: format!("m{i}"),
                },
            );
        }
        let lines = fr.dump();
        // Line 0 is the schema header, then the three warns.
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"type\":\"trace_header\""), "{}", lines[0]);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("{{\"seq\":{i},")), "{line}");
        }
    }

    #[test]
    fn sampling_cadence_advances() {
        let tel = Telemetry::with_sink(
            NullSink,
            TelemetryConfig {
                sample_every: SimDuration::from_us(10),
            },
        );
        assert!(tel.sample_due(SimTime::ZERO));
        tel.with_metrics(|m| m.gauge_set("g", String::new(), 1.0));
        tel.sample(SimTime::ZERO);
        assert!(!tel.sample_due(SimTime::from_us(9)));
        assert!(tel.sample_due(SimTime::from_us(10)));
        tel.sample(SimTime::from_us(10));
        assert_eq!(
            tel.with_metrics(|m| m.series("g", "").unwrap().len()),
            Some(2)
        );
    }

    #[test]
    fn warn_uses_last_seen_timestamp() {
        let fr = FlightRecorder::new(4);
        let tel = Telemetry::with_sink(fr.clone(), TelemetryConfig::default());
        tel.emit(
            SimTime::from_us(5),
            TraceEvent::Warn {
                component: "a".into(),
                message: "x".into(),
            },
        );
        tel.warn("b", "y");
        let lines = fr.dump();
        assert!(lines[2].contains("\"t_ps\":5000000"), "{}", lines[2]);
    }

    #[test]
    fn global_roundtrip() {
        clear_global();
        assert!(!global().is_enabled());
        let fr = FlightRecorder::new(4);
        install_global(Telemetry::with_sink(fr.clone(), TelemetryConfig::default()));
        assert!(global().is_enabled());
        note("test", || "hello".to_string());
        // Header line + the note.
        assert_eq!(fr.len(), 2);
        clear_global();
        assert!(!global().is_enabled());
    }
}
