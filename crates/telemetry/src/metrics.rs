//! The metrics registry: counters, gauges, and log-linear histograms keyed
//! by `(metric, labels)`, sampled on a simulated-time cadence into
//! time-series.
//!
//! Metric names are dotted lowercase (`switch.port.backlog_bytes`); labels
//! are a canonical `k=v,k=v` string built with [`labels`]. The hot path is
//! handle-based: callers intern a `(metric, labels)` pair once (at wiring
//! time or on first use) into a [`MetricId`] and update through it — a
//! bounds-checked `Vec` index, no string hashing or allocation per event.
//! Key strings survive only in the registration index (a `BTreeMap`, so
//! iteration — and therefore every CSV export — stays deterministic) and in
//! the string-keyed convenience API, which interns on every call and is
//! meant for tests and cold paths. [`MetricsRegistry::sample`] snapshots the
//! current value of every counter and gauge (and derived percentiles of
//! every histogram) into per-key time-series for plotting.

use crate::hist::LogLinearHistogram;
use aequitas_sim_core::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Build a canonical label string from `(key, value)` pairs:
/// `labels(&[("sw", "0"), ("port", "2")]) == "sw=0,port=2"`.
pub fn labels(pairs: &[(&str, &str)]) -> String {
    let mut s = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}={v}");
    }
    s
}

type Key = (String, String);

/// Dense handle to one `(metric, labels)` slot, produced by the `*_id`
/// interning methods. Resolving the strings happens once; every subsequent
/// update through the handle is a `Vec` index. Handles are only meaningful
/// for the registry that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(u32);

#[derive(Debug, Clone)]
enum Slot {
    Counter(u64),
    Gauge(f64),
    Hist(LogLinearHistogram),
}

/// Histogram percentiles snapshotted into series on every sample tick.
const HIST_PERCENTILES: [(f64, &str); 3] = [(50.0, "p50"), (99.0, "p99"), (99.9, "p999")];

/// A registry of named metrics with periodic time-series snapshots.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Dense slot storage; [`MetricId`] indexes this directly.
    slots: Vec<Slot>,
    /// Registration/export index. Sorted iteration keeps sampling and CSV
    /// export deterministic and byte-identical to the string-keyed layout
    /// this replaced.
    index: BTreeMap<Key, u32>,
    series: BTreeMap<Key, Vec<(u64, f64)>>,
    samples_taken: u64,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Intern `(name, labels)` and return its dense handle, creating the
    /// slot with `init` if the key is new. Slot *type* is fixed by whoever
    /// interns first; mismatched updates through any API are debug-asserted
    /// and ignored, exactly as the string-keyed API always behaved.
    fn intern(&mut self, name: impl Into<String>, labels: String, init: impl FnOnce() -> Slot) -> MetricId {
        let key = (name.into(), labels);
        if let Some(&id) = self.index.get(&key) {
            return MetricId(id);
        }
        let id = u32::try_from(self.slots.len()).expect("metric slot count fits u32");
        self.slots.push(init());
        self.index.insert(key, id);
        MetricId(id)
    }

    /// Intern a counter metric, creating it at zero if needed.
    pub fn counter_id(&mut self, name: impl Into<String>, labels: String) -> MetricId {
        self.intern(name, labels, || Slot::Counter(0))
    }

    /// Intern a gauge metric, creating it at zero if needed.
    pub fn gauge_id(&mut self, name: impl Into<String>, labels: String) -> MetricId {
        self.intern(name, labels, || Slot::Gauge(0.0))
    }

    /// Intern a histogram metric, creating it empty if needed.
    pub fn hist_id(&mut self, name: impl Into<String>, labels: String) -> MetricId {
        self.intern(name, labels, || Slot::Hist(LogLinearHistogram::new()))
    }

    /// Add `delta` to the counter behind `id`.
    #[inline]
    pub fn counter_add_id(&mut self, id: MetricId, delta: u64) {
        match &mut self.slots[id.0 as usize] {
            Slot::Counter(c) => *c += delta,
            other => debug_assert!(false, "metric type mismatch: {other:?}"),
        }
    }

    /// Set the gauge behind `id` to `value`.
    #[inline]
    pub fn gauge_set_id(&mut self, id: MetricId, value: f64) {
        match &mut self.slots[id.0 as usize] {
            Slot::Gauge(g) => *g = value,
            other => debug_assert!(false, "metric type mismatch: {other:?}"),
        }
    }

    /// Record `value` into the histogram behind `id`.
    #[inline]
    pub fn hist_record_id(&mut self, id: MetricId, value: u64) {
        match &mut self.slots[id.0 as usize] {
            Slot::Hist(h) => h.record(value),
            other => debug_assert!(false, "metric type mismatch: {other:?}"),
        }
    }

    /// Add `delta` to a counter, creating it at zero first if needed.
    ///
    /// Interns on every call — cold paths and tests only; hot paths hold a
    /// [`MetricId`] from [`MetricsRegistry::counter_id`].
    pub fn counter_add(&mut self, name: impl Into<String>, labels: String, delta: u64) {
        let id = self.counter_id(name, labels);
        self.counter_add_id(id, delta);
    }

    /// Set a gauge to `value`. Interns on every call (see
    /// [`MetricsRegistry::counter_add`]).
    pub fn gauge_set(&mut self, name: impl Into<String>, labels: String, value: f64) {
        let id = self.gauge_id(name, labels);
        self.gauge_set_id(id, value);
    }

    /// Record `value` into a histogram metric. Interns on every call (see
    /// [`MetricsRegistry::counter_add`]).
    pub fn hist_record(&mut self, name: impl Into<String>, labels: String, value: u64) {
        let id = self.hist_id(name, labels);
        self.hist_record_id(id, value);
    }

    fn slot(&self, name: &str, labels: &str) -> Option<&Slot> {
        let id = *self.index.get(&(name.to_string(), labels.to_string()))?;
        Some(&self.slots[id as usize])
    }

    /// Current value of a counter, if it exists.
    pub fn counter(&self, name: &str, labels: &str) -> Option<u64> {
        match self.slot(name, labels)? {
            Slot::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Current value of a gauge, if it exists.
    pub fn gauge(&self, name: &str, labels: &str) -> Option<f64> {
        match self.slot(name, labels)? {
            Slot::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// Percentile `p` of a histogram metric, if it exists and is non-empty.
    pub fn percentile(&self, name: &str, labels: &str, p: f64) -> Option<u64> {
        match self.slot(name, labels)? {
            Slot::Hist(h) => h.percentile(p),
            _ => None,
        }
    }

    /// Read access to a histogram metric.
    pub fn histogram(&self, name: &str, labels: &str) -> Option<&LogLinearHistogram> {
        match self.slot(name, labels)? {
            Slot::Hist(h) => Some(h),
            _ => None,
        }
    }

    /// Snapshot every counter/gauge value (and histogram percentiles, under
    /// `<name>.<pN>` keys) into the time-series at simulated time `now`.
    pub fn sample(&mut self, now: SimTime) {
        let t = now.as_ps();
        self.samples_taken += 1;
        // Walk the sorted index so series creation order (and therefore CSV
        // export) is identical to the old string-keyed registry.
        let MetricsRegistry { slots, index, series, .. } = self;
        for ((name, labels), &id) in index.iter() {
            match &slots[id as usize] {
                Slot::Counter(c) => {
                    series
                        .entry((name.clone(), labels.clone()))
                        .or_default()
                        .push((t, *c as f64));
                }
                Slot::Gauge(g) => {
                    series
                        .entry((name.clone(), labels.clone()))
                        .or_default()
                        .push((t, *g));
                }
                Slot::Hist(h) => {
                    for (p, tag) in HIST_PERCENTILES {
                        if let Some(v) = h.percentile(p) {
                            series
                                .entry((format!("{name}.{tag}"), labels.clone()))
                                .or_default()
                                .push((t, v as f64));
                        }
                    }
                }
            }
        }
    }

    /// Number of sample ticks taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// The sampled series for one key, as `(t_ps, value)` pairs.
    pub fn series(&self, name: &str, labels: &str) -> Option<&[(u64, f64)]> {
        self.series
            .get(&(name.to_string(), labels.to_string()))
            .map(|v| v.as_slice())
    }

    /// Number of distinct `(metric, labels)` series captured.
    pub fn num_series(&self) -> usize {
        self.series.len()
    }

    /// Write every sampled series as CSV: `t_us,metric,labels,value`, rows
    /// ordered by metric key then time. A multi-pair labels string contains
    /// commas, so the labels field is double-quoted whenever it is non-empty
    /// to keep every row at exactly four CSV fields. Plot with
    /// `scripts/plot_csv.sh` after filtering one metric.
    pub fn write_series_csv(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(w, "t_us,metric,labels,value")?;
        for ((name, labels), points) in &self.series {
            let quoted = if labels.is_empty() {
                String::new()
            } else {
                format!("\"{labels}\"")
            };
            for &(t_ps, v) in points {
                writeln!(w, "{:.3},{name},{quoted},{v}", t_ps as f64 / 1e6)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_canonical_form() {
        assert_eq!(labels(&[]), "");
        assert_eq!(labels(&[("sw", "0")]), "sw=0");
        assert_eq!(labels(&[("sw", "0"), ("port", "2")]), "sw=0,port=2");
    }

    #[test]
    fn counters_accumulate_and_sample() {
        let mut r = MetricsRegistry::new();
        r.counter_add("pkts", labels(&[("class", "0")]), 3);
        r.counter_add("pkts", labels(&[("class", "0")]), 4);
        assert_eq!(r.counter("pkts", "class=0"), Some(7));
        r.sample(SimTime::from_us(1));
        r.counter_add("pkts", labels(&[("class", "0")]), 1);
        r.sample(SimTime::from_us(2));
        let s = r.series("pkts", "class=0").unwrap();
        assert_eq!(s, &[(1_000_000, 7.0), (2_000_000, 8.0)]);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("depth", String::new(), 5.0);
        r.gauge_set("depth", String::new(), 2.5);
        assert_eq!(r.gauge("depth", ""), Some(2.5));
    }

    #[test]
    fn histograms_sample_percentiles() {
        let mut r = MetricsRegistry::new();
        for v in 1..=1000u64 {
            r.hist_record("rnl", labels(&[("qos", "0")]), v);
        }
        let p99 = r.percentile("rnl", "qos=0", 99.0).unwrap();
        assert!((985..=1000).contains(&p99), "{p99}");
        r.sample(SimTime::from_us(10));
        assert!(r.series("rnl.p99", "qos=0").is_some());
        assert!(r.series("rnl.p50", "qos=0").is_some());
    }

    #[test]
    fn handle_api_matches_string_api() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        // Register out of sorted order: export order must still come from
        // the sorted index, not slot-creation order.
        let c = a.counter_id("pkts", labels(&[("class", "1")]));
        let g = a.gauge_id("depth", String::new());
        let h = a.hist_id("rnl", labels(&[("qos", "0")]));
        a.counter_add_id(c, 5);
        a.gauge_set_id(g, 2.5);
        b.counter_add("pkts", labels(&[("class", "1")]), 5);
        b.gauge_set("depth", String::new(), 2.5);
        for v in 1..=100u64 {
            a.hist_record_id(h, v);
            b.hist_record("rnl", labels(&[("qos", "0")]), v);
        }
        a.sample(SimTime::from_us(3));
        b.sample(SimTime::from_us(3));
        let (mut csv_a, mut csv_b) = (Vec::new(), Vec::new());
        a.write_series_csv(&mut csv_a).unwrap();
        b.write_series_csv(&mut csv_b).unwrap();
        assert_eq!(csv_a, csv_b);
        assert_eq!(a.counter("pkts", "class=1"), Some(5));
        // Re-interning the same key returns the same handle.
        assert_eq!(a.counter_id("pkts", labels(&[("class", "1")])), c);
    }

    #[test]
    fn csv_export_is_deterministic_and_parses() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("b", String::new(), 1.0);
        r.counter_add("a", labels(&[("x", "1")]), 2);
        r.sample(SimTime::from_us(5));
        let mut out = Vec::new();
        r.write_series_csv(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "t_us,metric,labels,value");
        // BTreeMap ordering: "a" before "b". Non-empty labels are quoted
        // (multi-pair labels embed commas).
        assert_eq!(lines[1], "5.000,a,\"x=1\",2");
        assert_eq!(lines[2], "5.000,b,,1");
    }
}
