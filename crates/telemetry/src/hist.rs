//! Log-linear histograms with bounded relative error.
//!
//! The classic HDR-histogram bucketing scheme: small values (below
//! `sub_count`) get one bucket each (exact), and every octave above that is
//! split into `sub_count / 2` linear sub-buckets, so the relative
//! quantization error is bounded by `2 / sub_count` across the full `u64`
//! range while memory stays logarithmic in the range actually observed.
//! This is the recording structure behind every latency metric in the
//! registry — it supports tens of millions of `record` calls per second and
//! recovers any percentile after the fact.

/// A log-linear histogram over `u64` values.
#[derive(Debug, Clone)]
pub struct LogLinearHistogram {
    /// Sub-buckets per octave (power of two).
    sub_count: u64,
    /// log2(sub_count).
    sub_bits: u32,
    /// Bucket counts, grown lazily as larger values arrive.
    buckets: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        LogLinearHistogram::new()
    }
}

impl LogLinearHistogram {
    /// Default precision: 128 sub-buckets per octave, i.e. ≤ 1.6% relative
    /// quantization error on recovered percentiles.
    pub fn new() -> Self {
        LogLinearHistogram::with_sub_count(128)
    }

    /// Create a histogram with `sub_count` sub-buckets per octave.
    /// `sub_count` must be a power of two ≥ 2.
    pub fn with_sub_count(sub_count: u64) -> Self {
        assert!(
            sub_count.is_power_of_two() && sub_count >= 2,
            "sub_count must be a power of two >= 2: {sub_count}"
        );
        LogLinearHistogram {
            sub_count,
            sub_bits: sub_count.trailing_zeros(),
            buckets: Vec::new(),
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Bucket index for `v`.
    #[inline]
    fn index(&self, v: u64) -> usize {
        if v < self.sub_count {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros(); // >= sub_bits
        let octave = (msb - self.sub_bits + 1) as u64;
        // Shifting by `octave` lands v's top bits in [sub_count/2, sub_count).
        let pos = v >> octave;
        (self.sub_count + (octave - 1) * (self.sub_count / 2) + (pos - self.sub_count / 2)) as usize
    }

    /// Inclusive upper edge of bucket `idx` (the largest value mapping to it).
    fn bucket_hi(&self, idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < self.sub_count {
            return idx;
        }
        let rel = idx - self.sub_count;
        let octave = rel / (self.sub_count / 2) + 1;
        let pos = rel % (self.sub_count / 2) + self.sub_count / 2;
        // 128-bit intermediate: the topmost bucket's edge is u64::MAX + 1.
        ((((pos + 1) as u128) << octave) - 1).min(u64::MAX as u128) as u64
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128 * n as u128;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (exact), or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (exact), or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded values (exact).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The value at percentile `p` (0–100): the upper edge of the bucket
    /// containing the `ceil(p/100 · count)`-th smallest observation, clamped
    /// to the exact observed min/max. Relative error ≤ `2 / sub_count`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bucket_hi(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram (same `sub_count`) into this one.
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        assert_eq!(self.sub_count, other.sub_count, "sub_count mismatch");
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogLinearHistogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(99));
        // Below sub_count every value has its own bucket: percentiles exact.
        assert_eq!(h.percentile(1.0), Some(0));
        assert_eq!(h.percentile(50.0), Some(49));
        assert_eq!(h.percentile(100.0), Some(99));
    }

    #[test]
    fn index_and_edge_roundtrip() {
        let h = LogLinearHistogram::with_sub_count(32);
        for v in (0..4096u64)
            .chain([1 << 20, (1 << 20) + 12345, u64::MAX / 2, u64::MAX])
        {
            let idx = h.index(v);
            let hi = h.bucket_hi(idx);
            assert!(hi >= v, "upper edge {hi} below value {v}");
            // The upper edge maps back to the same bucket.
            assert_eq!(h.index(hi), idx, "edge {hi} leaves bucket of {v}");
        }
    }

    #[test]
    fn percentile_recovery_bounded_error() {
        // A wide log-spread distribution: the recovered percentile must be
        // within the structural error bound of the true order statistic.
        let mut h = LogLinearHistogram::new();
        let mut values: Vec<u64> = (0..10_000u64)
            .map(|i| {
                // Deterministic pseudo-random spread over ~6 decades.
                let x = (i.wrapping_mul(2654435761)) % 1_000_000;
                x * x / 1000 + x + 1
            })
            .collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let rank = ((p / 100.0 * values.len() as f64).ceil() as usize).max(1);
            let truth = values[rank - 1] as f64;
            let got = h.percentile(p).unwrap() as f64;
            let rel = (got - truth).abs() / truth.max(1.0);
            assert!(rel <= 2.0 / 128.0 + 1e-9, "p{p}: got {got}, true {truth}, rel {rel}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogLinearHistogram::new();
        let mut b = LogLinearHistogram::new();
        let mut all = LogLinearHistogram::new();
        for i in 0..1000u64 {
            let v = i * 977 + 13;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for p in [1.0, 25.0, 50.0, 75.0, 99.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = LogLinearHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
    }

    proptest! {
        /// Every recorded value maps to a bucket whose upper edge is >= the
        /// value and within the relative error bound.
        #[test]
        fn prop_bucket_error_bounded(v in 1u64..u64::MAX / 2) {
            let h = LogLinearHistogram::with_sub_count(64);
            let hi = h.bucket_hi(h.index(v));
            prop_assert!(hi >= v);
            let rel = (hi - v) as f64 / v as f64;
            prop_assert!(rel <= 2.0 / 64.0 + 1e-12, "v={v} hi={hi} rel={rel}");
        }

        /// Percentiles are monotone in p.
        #[test]
        fn prop_percentiles_monotone(vals in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = LogLinearHistogram::new();
            for &v in &vals {
                h.record(v);
            }
            let mut last = 0u64;
            for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
                let q = h.percentile(p).unwrap();
                prop_assert!(q >= last, "p{p}: {q} < {last}");
                last = q;
            }
        }
    }
}
