//! Typed lifecycle events and the sinks that consume them.
//!
//! Every instrumented layer emits [`TraceEvent`]s through a shared
//! [`Telemetry`](crate::Telemetry) handle; the handle serializes them to
//! JSONL (one object per line, stable field order, `t_ps` simulated
//! timestamp plus a monotone `seq`) and forwards the line to a
//! [`TraceSink`]. Two sinks ship with the crate: [`JsonlWriter`] streams to
//! a file for offline analysis, and [`FlightRecorder`] keeps the last N
//! lines in a ring buffer so a failing test or aborted run can dump the
//! events leading up to the problem.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Version of the JSONL trace schema. Every enabled telemetry handle writes
/// a `trace_header` line (seq 0) carrying this number, and `aequitas-replay`
/// refuses traces whose version it does not understand. Bump it whenever a
/// [`TraceEvent`] variant or field is added, removed, renamed, or its
/// serialized form changes — lint rule AQ013 cross-checks the enum layout
/// against [`TRACE_SCHEMA_FINGERPRINT`] so silent drift fails `lint.sh`.
///
/// History: v1 = the headerless PR 2 format; v2 added the `trace_header` and
/// `run_info` lines.
pub const TRACE_SCHEMA_VERSION: u32 = 2;

/// FNV-1a-64 fingerprint of the [`TraceEvent`] variant and field names, in
/// declaration order. Maintained by lint rule AQ013: when the enum changes,
/// the lint reports the newly computed value — bump
/// [`TRACE_SCHEMA_VERSION`] and paste the new fingerprint here. Fields whose
/// declaration line carries a `schema:` justification comment are excluded
/// (the escape hatch for schema-neutral refactors).
pub const TRACE_SCHEMA_FINGERPRINT: u64 = 0xdbe8_0412_4d2f_87e3;

/// Which kind of node a packet event happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A host NIC egress port.
    Host,
    /// A switch egress port.
    Switch,
}

impl NodeKind {
    fn label(self) -> &'static str {
        match self {
            NodeKind::Host => "host",
            NodeKind::Switch => "switch",
        }
    }
}

/// A structured lifecycle event. Field units are encoded in the names
/// (`*_ps` = picoseconds of simulated time, `*_bytes` = bytes).
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// Stream header, always the first line (seq 0) of a trace. Carries the
    /// schema version so offline tooling can fail loudly on drift.
    TraceHeader {
        /// The [`TRACE_SCHEMA_VERSION`] the producing build was compiled
        /// with.
        schema_version: u32,
    },
    /// Experiment parameters, emitted once per engine build by the
    /// experiment harness so a trace is self-describing: the replay auditor
    /// reads bounds inputs (WFQ weights, burst-period parameters) and SLO
    /// targets from here instead of requiring them on the command line.
    /// Unknown numeric parameters are recorded as 0 and the corresponding
    /// audit checks are skipped.
    RunInfo {
        /// Experiment name (harness setup name or figure id).
        experiment: String,
        /// Number of hosts in the topology.
        hosts: u32,
        /// Number of QoS classes.
        classes: u32,
        /// WFQ weights per class, highest QoS first (empty when the
        /// scheduler is not WFQ).
        weights: Vec<f64>,
        /// Per-class RNL-per-MTU SLO targets in picoseconds (0 = no SLO for
        /// that class).
        slos_per_mtu_ps: Vec<u64>,
        /// Percentile at which the SLOs are evaluated (e.g. 99.9).
        slo_percentile: f64,
        /// Warmup cutoff: completions issued before this are excluded from
        /// audited statistics.
        warmup_ps: u64,
        /// Scheduled run duration.
        duration_ps: u64,
        /// Number of hosts with an active workload (traffic sources).
        senders: u32,
        /// Aggregate mean offered load at the shared bottleneck as a
        /// fraction of line rate — the paper's μ (0 when unknown).
        mu: f64,
        /// Aggregate burst-phase arrival rate as a fraction of line rate —
        /// the paper's ρ (0 when unknown or the arrival process is not
        /// burst/on-off).
        rho: f64,
        /// Burst period of the on/off arrival process in picoseconds (0
        /// when not burst/on-off; bound audits need this to normalize
        /// delays).
        period_ps: u64,
    },
    /// A packet was accepted into an egress-port queue.
    PktEnqueue {
        /// Node kind the port belongs to.
        node: NodeKind,
        /// Node index (host id or switch id).
        node_id: usize,
        /// Egress port index (always 0 for host NICs).
        port: usize,
        /// QoS class of the packet.
        class: usize,
        /// Packet size on the wire.
        bytes: u32,
        /// Queued packets of this class after the enqueue.
        depth_pkts: usize,
        /// Total queued bytes at the port after the enqueue.
        backlog_bytes: u64,
    },
    /// A packet was selected for transmission.
    PktDequeue {
        /// Node kind the port belongs to.
        node: NodeKind,
        /// Node index.
        node_id: usize,
        /// Egress port index.
        port: usize,
        /// QoS class of the packet.
        class: usize,
        /// Packet size on the wire.
        bytes: u32,
        /// Total queued bytes remaining at the port.
        backlog_bytes: u64,
    },
    /// A packet was rejected at enqueue (tail drop).
    PktDrop {
        /// Node kind the port belongs to.
        node: NodeKind,
        /// Node index.
        node_id: usize,
        /// Egress port index.
        port: usize,
        /// QoS class of the packet.
        class: usize,
        /// Packet size on the wire.
        bytes: u32,
        /// Total queued bytes at the port when the drop happened.
        backlog_bytes: u64,
    },
    /// An RPC passed through admission control and entered the transport.
    RpcIssue {
        /// Issuing host.
        host: usize,
        /// Destination host.
        dst: usize,
        /// QoS the application requested.
        qos_req: u8,
        /// QoS the RPC actually runs on.
        qos_run: u8,
        /// Whether admission control downgraded it.
        downgraded: bool,
        /// Payload size.
        size_bytes: u64,
        /// Admit probability of the (dst, qos_req) channel at issue time.
        p_admit: f64,
    },
    /// An RPC completed (last byte acknowledged).
    RpcComplete {
        /// Issuing host.
        host: usize,
        /// Destination host.
        dst: usize,
        /// QoS the RPC ran on.
        qos_run: u8,
        /// Whether it had been downgraded.
        downgraded: bool,
        /// Payload size.
        size_bytes: u64,
        /// RPC network latency in picoseconds.
        rnl_ps: u64,
        /// RNL divided by the RPC's size in MTUs.
        rnl_per_mtu_ps: u64,
    },
    /// The congestion window changed after an RTT sample.
    CwndUpdate {
        /// Sending host.
        host: usize,
        /// Destination host.
        dst: usize,
        /// QoS class of the connection.
        class: u8,
        /// Congestion window after the update, in packets.
        cwnd: f64,
        /// The RTT sample that drove the update.
        rtt_ps: u64,
        /// The Swift target delay the sample was compared against.
        target_ps: u64,
        /// Whether the sample exceeded the target (decrease pressure).
        over_target: bool,
    },
    /// A segment retransmission after RTO expiry.
    Retransmit {
        /// Sending host.
        host: usize,
        /// Destination host.
        dst: usize,
        /// QoS class of the connection.
        class: u8,
        /// Message the segment belongs to.
        msg_id: u64,
        /// Segment index within the message.
        seq: u32,
    },
    /// Algorithm 1 changed an admit probability (AIMD step).
    AdmitProb {
        /// Host owning the controller (the channel's source).
        host: usize,
        /// Destination host of the channel.
        dst: usize,
        /// QoS level of the channel.
        qos: u8,
        /// Admit probability after the step.
        p: f64,
        /// Signed change applied by this step.
        delta: f64,
    },
    /// Fault injection took a link down; transmissions are deferred.
    FaultLinkDown {
        /// Node kind owning the link's transmit port.
        node: NodeKind,
        /// Node index.
        node_id: usize,
        /// Egress port index.
        port: usize,
        /// When the link is scheduled to come back up (picoseconds).
        until_ps: u64,
    },
    /// A faulted link came back up; deferred transmissions resume.
    FaultLinkUp {
        /// Node kind owning the link's transmit port.
        node: NodeKind,
        /// Node index.
        node_id: usize,
        /// Egress port index.
        port: usize,
    },
    /// Fault injection destroyed a packet in transit (loss or corruption).
    FaultPktDrop {
        /// Node kind the packet was transmitted from.
        node: NodeKind,
        /// Node index.
        node_id: usize,
        /// Egress port index.
        port: usize,
        /// QoS class of the packet.
        class: usize,
        /// Packet size on the wire.
        bytes: u32,
        /// True when the frame was corrupted rather than cleanly lost.
        corrupt: bool,
    },
    /// The quota server became unreachable or reachable again for a host.
    FaultQuotaOutage {
        /// Host observing the outage.
        host: usize,
        /// True at outage start, false at recovery.
        down: bool,
    },
    /// A diagnostic message from any layer.
    Warn {
        /// Emitting component (crate or module name).
        component: String,
        /// Human-readable message.
        message: String,
    },
}

impl TraceEvent {
    /// The event's `type` tag as it appears in the JSONL output.
    pub fn type_tag(&self) -> &'static str {
        match self {
            TraceEvent::TraceHeader { .. } => "trace_header",
            TraceEvent::RunInfo { .. } => "run_info",
            TraceEvent::PktEnqueue { .. } => "pkt_enqueue",
            TraceEvent::PktDequeue { .. } => "pkt_dequeue",
            TraceEvent::PktDrop { .. } => "pkt_drop",
            TraceEvent::RpcIssue { .. } => "rpc_issue",
            TraceEvent::RpcComplete { .. } => "rpc_complete",
            TraceEvent::CwndUpdate { .. } => "cwnd_update",
            TraceEvent::Retransmit { .. } => "retransmit",
            TraceEvent::AdmitProb { .. } => "admit_prob",
            TraceEvent::FaultLinkDown { .. } => "fault_link_down",
            TraceEvent::FaultLinkUp { .. } => "fault_link_up",
            TraceEvent::FaultPktDrop { .. } => "fault_pkt_drop",
            TraceEvent::FaultQuotaOutage { .. } => "fault_quota_outage",
            TraceEvent::Warn { .. } => "warn",
        }
    }

    /// Serialize as one JSON object (no trailing newline). Convenience
    /// wrapper over [`TraceEvent::write_json`] that allocates a fresh
    /// string; hot paths reuse a scratch buffer instead.
    pub fn to_json(&self, seq: u64, t_ps: u64) -> String {
        let mut s = String::with_capacity(160);
        self.write_json(&mut s, seq, t_ps);
        s
    }

    /// Serialize as one JSON object (no trailing newline) appended to `s`.
    /// `seq` and `t_ps` lead every record so downstream tools can sort/merge
    /// streams. Byte-identical to what [`TraceEvent::to_json`] returns.
    pub fn write_json(&self, s: &mut String, seq: u64, t_ps: u64) {
        let _ = write!(s, "{{\"seq\":{seq},\"t_ps\":{t_ps},\"type\":\"{}\"", self.type_tag());
        match self {
            TraceEvent::TraceHeader { schema_version } => {
                let _ = write!(
                    s,
                    ",\"format\":\"aequitas-trace\",\"schema_version\":{schema_version}"
                );
            }
            TraceEvent::RunInfo {
                experiment,
                hosts,
                classes,
                weights,
                slos_per_mtu_ps,
                slo_percentile,
                warmup_ps,
                duration_ps,
                senders,
                mu,
                rho,
                period_ps,
            } => {
                let _ = write!(
                    s,
                    ",\"experiment\":\"{}\",\"hosts\":{hosts},\"classes\":{classes},\"weights\":[",
                    escape_json(experiment)
                );
                for (i, w) in weights.iter().enumerate() {
                    let _ = write!(s, "{}{w}", if i > 0 { "," } else { "" });
                }
                s.push_str("],\"slos_per_mtu_ps\":[");
                for (i, v) in slos_per_mtu_ps.iter().enumerate() {
                    let _ = write!(s, "{}{v}", if i > 0 { "," } else { "" });
                }
                let _ = write!(
                    s,
                    "],\"slo_percentile\":{slo_percentile},\"warmup_ps\":{warmup_ps},\
                     \"duration_ps\":{duration_ps},\"senders\":{senders},\"mu\":{mu},\
                     \"rho\":{rho},\"period_ps\":{period_ps}"
                );
            }
            TraceEvent::PktEnqueue {
                node,
                node_id,
                port,
                class,
                bytes,
                depth_pkts,
                backlog_bytes,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":\"{}{}\",\"port\":{port},\"class\":{class},\"bytes\":{bytes},\
                     \"depth_pkts\":{depth_pkts},\"backlog_bytes\":{backlog_bytes}",
                    node.label(),
                    node_id
                );
            }
            TraceEvent::PktDequeue {
                node,
                node_id,
                port,
                class,
                bytes,
                backlog_bytes,
            }
            | TraceEvent::PktDrop {
                node,
                node_id,
                port,
                class,
                bytes,
                backlog_bytes,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":\"{}{}\",\"port\":{port},\"class\":{class},\"bytes\":{bytes},\
                     \"backlog_bytes\":{backlog_bytes}",
                    node.label(),
                    node_id
                );
            }
            TraceEvent::RpcIssue {
                host,
                dst,
                qos_req,
                qos_run,
                downgraded,
                size_bytes,
                p_admit,
            } => {
                let _ = write!(
                    s,
                    ",\"host\":{host},\"dst\":{dst},\"qos_req\":{qos_req},\"qos_run\":{qos_run},\
                     \"downgraded\":{downgraded},\"size_bytes\":{size_bytes},\"p_admit\":{p_admit:.6}"
                );
            }
            TraceEvent::RpcComplete {
                host,
                dst,
                qos_run,
                downgraded,
                size_bytes,
                rnl_ps,
                rnl_per_mtu_ps,
            } => {
                let _ = write!(
                    s,
                    ",\"host\":{host},\"dst\":{dst},\"qos_run\":{qos_run},\"downgraded\":{downgraded},\
                     \"size_bytes\":{size_bytes},\"rnl_ps\":{rnl_ps},\"rnl_per_mtu_ps\":{rnl_per_mtu_ps}"
                );
            }
            TraceEvent::CwndUpdate {
                host,
                dst,
                class,
                cwnd,
                rtt_ps,
                target_ps,
                over_target,
            } => {
                let _ = write!(
                    s,
                    ",\"host\":{host},\"dst\":{dst},\"class\":{class},\"cwnd\":{cwnd:.4},\
                     \"rtt_ps\":{rtt_ps},\"target_ps\":{target_ps},\"over_target\":{over_target}"
                );
            }
            TraceEvent::Retransmit {
                host,
                dst,
                class,
                msg_id,
                seq,
            } => {
                let _ = write!(
                    s,
                    ",\"host\":{host},\"dst\":{dst},\"class\":{class},\"msg_id\":{msg_id},\"seq\":{seq}"
                );
            }
            TraceEvent::AdmitProb {
                host,
                dst,
                qos,
                p,
                delta,
            } => {
                let _ = write!(
                    s,
                    ",\"host\":{host},\"dst\":{dst},\"qos\":{qos},\"p\":{p:.6},\"delta\":{delta:.6}"
                );
            }
            TraceEvent::FaultLinkDown {
                node,
                node_id,
                port,
                until_ps,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":\"{}{}\",\"port\":{port},\"until_ps\":{until_ps}",
                    node.label(),
                    node_id
                );
            }
            TraceEvent::FaultLinkUp { node, node_id, port } => {
                let _ = write!(
                    s,
                    ",\"node\":\"{}{}\",\"port\":{port}",
                    node.label(),
                    node_id
                );
            }
            TraceEvent::FaultPktDrop {
                node,
                node_id,
                port,
                class,
                bytes,
                corrupt,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":\"{}{}\",\"port\":{port},\"class\":{class},\"bytes\":{bytes},\
                     \"corrupt\":{corrupt}",
                    node.label(),
                    node_id
                );
            }
            TraceEvent::FaultQuotaOutage { host, down } => {
                let _ = write!(s, ",\"host\":{host},\"down\":{down}");
            }
            TraceEvent::Warn { component, message } => {
                let _ = write!(
                    s,
                    ",\"component\":\"{}\",\"message\":\"{}\"",
                    escape_json(component),
                    escape_json(message)
                );
            }
        }
        s.push('}');
    }
}

/// Escape a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Consumes serialized trace lines. Implementations must be `Send` so a
/// telemetry handle can be shared across sweep worker threads.
pub trait TraceSink: Send {
    /// Record one serialized JSONL line (no trailing newline).
    fn record_line(&mut self, line: &str);
    /// Record one structured event. The default serializes into `scratch`
    /// (a caller-owned buffer reused across events — no per-event
    /// allocation) and forwards the line; sinks that can store the event
    /// more compactly (e.g. [`FlightRecorder`]) override this and skip
    /// serialization entirely.
    fn record_event(&mut self, seq: u64, t_ps: u64, event: &TraceEvent, scratch: &mut String) {
        scratch.clear();
        event.write_json(scratch, seq, t_ps);
        self.record_line(scratch);
    }
    /// Flush any buffering to the backing store.
    fn flush(&mut self) {}
    /// The filesystem path this sink writes to, when it has one. Lets the
    /// experiment harness hand a finished trace to the replay auditor
    /// without re-plumbing the CLI's `--trace` argument.
    fn path(&self) -> Option<&Path> {
        None
    }
}

/// A sink that discards everything (useful to exercise the enabled path
/// without IO, e.g. in determinism tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record_line(&mut self, _line: &str) {}
}

/// Streams trace lines to a JSONL file through a buffered writer.
pub struct JsonlWriter {
    w: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
}

impl JsonlWriter {
    /// Create (truncate) `path` and return a writer sink.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let f = std::fs::File::create(&path)?;
        Ok(JsonlWriter {
            w: std::io::BufWriter::new(f),
            path,
        })
    }

    /// The path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TraceSink for JsonlWriter {
    fn record_line(&mut self, line: &str) {
        let _ = writeln!(self.w, "{line}");
    }
    fn flush(&mut self) {
        let _ = self.w.flush();
    }
    fn path(&self) -> Option<&Path> {
        Some(&self.path)
    }
}

/// One retained flight-recorder record: either an already-serialized line
/// (from [`TraceSink::record_line`]) or a compact structured event that is
/// serialized lazily at dump time — recording costs no JSON formatting and,
/// for every variant but `Warn`, no allocation.
#[derive(Debug)]
enum FlightEntry {
    Line(String),
    Event(u64, u64, TraceEvent),
}

impl FlightEntry {
    fn render(&self) -> String {
        match self {
            FlightEntry::Line(l) => l.clone(),
            FlightEntry::Event(seq, t_ps, ev) => ev.to_json(*seq, *t_ps),
        }
    }
}

#[derive(Debug, Default)]
struct FlightBuf {
    lines: VecDeque<FlightEntry>,
    capacity: usize,
    dropped: u64,
}

impl FlightBuf {
    fn push(&mut self, entry: FlightEntry) {
        if self.lines.len() == self.capacity {
            self.lines.pop_front();
            self.dropped += 1;
        }
        self.lines.push_back(entry);
    }
}

/// A ring buffer holding the most recent trace lines ("flight recorder").
///
/// Cheap to clone — clones share the same buffer, so a test can keep one
/// clone for inspection while the telemetry handle owns the other.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Arc<Mutex<FlightBuf>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        FlightRecorder {
            buf: Arc::new(Mutex::new(FlightBuf {
                lines: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
            })),
        }
    }

    /// Snapshot of the retained lines, oldest first. Structured entries are
    /// serialized here, not at record time.
    pub fn dump(&self) -> Vec<String> {
        let buf = self.buf.lock().unwrap();
        buf.lines.iter().map(FlightEntry::render).collect()
    }

    /// Lines currently retained.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().lines.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().unwrap().dropped
    }
}

impl TraceSink for FlightRecorder {
    fn record_line(&mut self, line: &str) {
        self.buf
            .lock()
            .unwrap()
            .push(FlightEntry::Line(line.to_string()));
    }

    fn record_event(&mut self, seq: u64, t_ps: u64, event: &TraceEvent, _scratch: &mut String) {
        self.buf
            .lock()
            .unwrap()
            .push(FlightEntry::Event(seq, t_ps, event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_stable_prefix() {
        let ev = TraceEvent::PktDrop {
            node: NodeKind::Switch,
            node_id: 3,
            port: 2,
            class: 1,
            bytes: 4160,
            backlog_bytes: 99,
        };
        let j = ev.to_json(7, 1234);
        assert!(j.starts_with("{\"seq\":7,\"t_ps\":1234,\"type\":\"pkt_drop\""), "{j}");
        assert!(j.ends_with('}'));
        assert!(j.contains("\"node\":\"switch3\""));
    }

    #[test]
    fn header_and_run_info_serialize() {
        let j = TraceEvent::TraceHeader {
            schema_version: TRACE_SCHEMA_VERSION,
        }
        .to_json(0, 0);
        assert_eq!(
            j,
            format!(
                "{{\"seq\":0,\"t_ps\":0,\"type\":\"trace_header\",\
                 \"format\":\"aequitas-trace\",\"schema_version\":{TRACE_SCHEMA_VERSION}}}"
            )
        );
        let j = TraceEvent::RunInfo {
            experiment: "fig10".into(),
            hosts: 3,
            classes: 2,
            weights: vec![4.0, 1.0],
            slos_per_mtu_ps: vec![1875, 0],
            slo_percentile: 99.9,
            warmup_ps: 5,
            duration_ps: 10,
            senders: 2,
            mu: 0.8,
            rho: 1.2,
            period_ps: 100_000_000,
        }
        .to_json(1, 0);
        assert!(j.contains("\"type\":\"run_info\""), "{j}");
        assert!(j.contains("\"weights\":[4,1]"), "{j}");
        assert!(j.contains("\"slos_per_mtu_ps\":[1875,0]"), "{j}");
        assert!(j.contains("\"mu\":0.8,\"rho\":1.2,\"period_ps\":100000000"), "{j}");
    }

    #[test]
    fn fault_events_serialize() {
        let j = TraceEvent::FaultLinkDown {
            node: NodeKind::Switch,
            node_id: 0,
            port: 2,
            until_ps: 42,
        }
        .to_json(1, 10);
        assert!(j.contains("\"type\":\"fault_link_down\"") && j.contains("\"until_ps\":42"), "{j}");
        let j = TraceEvent::FaultPktDrop {
            node: NodeKind::Host,
            node_id: 1,
            port: 0,
            class: 0,
            bytes: 4160,
            corrupt: true,
        }
        .to_json(2, 20);
        assert!(j.contains("\"corrupt\":true"), "{j}");
        let j = TraceEvent::FaultQuotaOutage { host: 3, down: false }.to_json(3, 30);
        assert!(j.contains("\"host\":3,\"down\":false"), "{j}");
    }

    #[test]
    fn warn_messages_are_escaped() {
        let ev = TraceEvent::Warn {
            component: "x".into(),
            message: "line\n\"quoted\"\\".into(),
        };
        let j = ev.to_json(0, 0);
        assert!(j.contains("line\\n\\\"quoted\\\"\\\\"), "{j}");
    }

    #[test]
    fn flight_recorder_keeps_last_n() {
        let mut fr = FlightRecorder::new(3);
        let reader = fr.clone();
        for i in 0..5 {
            fr.record_line(&format!("l{i}"));
        }
        assert_eq!(reader.dump(), vec!["l2", "l3", "l4"]);
        assert_eq!(reader.dropped(), 2);
    }

    #[test]
    fn write_json_reusing_scratch_matches_to_json() {
        let events = [
            TraceEvent::PktDequeue {
                node: NodeKind::Host,
                node_id: 4,
                port: 0,
                class: 2,
                bytes: 4160,
                backlog_bytes: 123,
            },
            TraceEvent::AdmitProb {
                host: 1,
                dst: 2,
                qos: 0,
                p: 0.75,
                delta: -0.125,
            },
            TraceEvent::Warn {
                component: "t".into(),
                message: "a\"b".into(),
            },
        ];
        let mut scratch = String::new();
        for (i, ev) in events.iter().enumerate() {
            let seq = i as u64 + 1;
            scratch.clear();
            ev.write_json(&mut scratch, seq, 99);
            assert_eq!(scratch, ev.to_json(seq, 99));
        }
    }

    #[test]
    fn flight_recorder_lazy_events_render_like_lines() {
        let mut fr = FlightRecorder::new(2);
        let reader = fr.clone();
        let ev = TraceEvent::FaultLinkUp {
            node: NodeKind::Switch,
            node_id: 1,
            port: 3,
        };
        let mut scratch = String::new();
        fr.record_event(5, 1000, &ev, &mut scratch);
        // The compact path must not have touched the scratch buffer's
        // contract (default impl uses it; the recorder stores structs).
        fr.record_line("raw");
        assert_eq!(reader.dump(), vec![ev.to_json(5, 1000), "raw".to_string()]);
    }
}
