//! Shared workload generation for the baseline agents.

use aequitas_sim_core::{BitRate, SimRng, SimTime};
use aequitas_workloads::{ArrivalProcess, ArrivalState, Priority, SizeDist, TrafficPattern};

/// One next RPC to issue.
#[derive(Debug, Clone, Copy)]
pub struct NextRpc {
    /// Issue instant.
    pub at: SimTime,
    /// Destination host index.
    pub dst: usize,
    /// Priority class.
    pub priority: Priority,
    /// QoS class under the bijective mapping (0=PC, 1=NC, 2=BE).
    pub qos: u8,
    /// Payload bytes.
    pub size_bytes: u64,
}

/// Generates the (time, dst, priority, size) stream for one sending host —
/// the same semantics as `aequitas_rpc::WorkloadSpec` (byte-share mix) so
/// baseline runs see identical offered load.
pub struct WorkloadGen {
    arrivals: ArrivalState,
    pattern: TrafficPattern,
    classes: Vec<(Priority, SizeDist)>,
    count_weights: Vec<f64>,
    rng: SimRng,
    src: usize,
    n_hosts: usize,
    stop: Option<SimTime>,
}

impl WorkloadGen {
    /// Build a generator. `classes` carries `(priority, byte_share, sizes)`.
    #[allow(clippy::too_many_arguments)] // plain config-carrier constructor
    pub fn new(
        arrival: ArrivalProcess,
        pattern: TrafficPattern,
        classes: Vec<(Priority, f64, SizeDist)>,
        src: usize,
        n_hosts: usize,
        line_rate: BitRate,
        stop: Option<SimTime>,
        seed: u64,
    ) -> Self {
        assert!(!classes.is_empty());
        let count_weights: Vec<f64> = classes
            .iter()
            .map(|(_, share, sizes)| share / sizes.mean_bytes())
            .collect();
        let share_total: f64 = classes.iter().map(|(_, s, _)| s).sum();
        let weight_total: f64 = count_weights.iter().sum();
        let mean_bytes = share_total / weight_total;
        WorkloadGen {
            arrivals: ArrivalState::new(arrival, line_rate, mean_bytes),
            pattern,
            classes: classes.into_iter().map(|(p, _, d)| (p, d)).collect(),
            count_weights,
            rng: SimRng::new(seed ^ 0xB05E_11AE),
            src,
            n_hosts,
            stop,
        }
    }

    /// Whether this host sends at all.
    pub fn is_sender(&self) -> bool {
        self.pattern.is_sender(self.src)
    }

    /// Produce the next RPC, or `None` once past the stop time.
    pub fn next_rpc(&mut self) -> Option<NextRpc> {
        if !self.is_sender() {
            return None;
        }
        loop {
            let at = self.arrivals.next_arrival(&mut self.rng);
            if let Some(stop) = self.stop {
                if at >= stop {
                    return None;
                }
            }
            let idx = self.rng.weighted_index(&self.count_weights);
            let (priority, sizes) = &self.classes[idx];
            let size_bytes = sizes.sample(&mut self.rng).max(1);
            let Some(dst) = self.pattern.pick_dst(self.src, self.n_hosts, &mut self.rng) else {
                continue;
            };
            let qos = match priority {
                Priority::PerformanceCritical => 0,
                Priority::NonCritical => 1,
                Priority::BestEffort => 2,
            };
            return Some(NextRpc {
                at,
                dst,
                priority: *priority,
                qos,
                size_bytes,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequitas_sim_core::SimDuration;

    #[test]
    fn generates_monotone_stream_with_mix() {
        let mut g = WorkloadGen::new(
            ArrivalProcess::Poisson { load: 0.5 },
            TrafficPattern::ManyToOne { dst: 1 },
            vec![
                (Priority::PerformanceCritical, 0.5, SizeDist::Fixed(8192)),
                (Priority::BestEffort, 0.5, SizeDist::Fixed(32768)),
            ],
            0,
            2,
            BitRate::from_gbps(100),
            Some(SimTime::from_ms(5)),
            1,
        );
        let mut prev = SimTime::ZERO;
        let mut pc = 0;
        let mut be = 0;
        while let Some(rpc) = g.next_rpc() {
            assert!(rpc.at >= prev);
            assert_eq!(rpc.dst, 1);
            prev = rpc.at;
            match rpc.priority {
                Priority::PerformanceCritical => {
                    pc += 1;
                    assert_eq!(rpc.qos, 0);
                }
                Priority::BestEffort => {
                    be += 1;
                    assert_eq!(rpc.qos, 2);
                }
                _ => unreachable!(),
            }
        }
        assert!(pc > 0 && be > 0);
        // Equal byte shares with 4x size ratio -> ~4x more PC RPCs by count.
        let ratio = pc as f64 / be as f64;
        assert!((2.5..6.0).contains(&ratio), "count ratio {ratio}");
        assert!(prev < SimTime::from_ms(5));
    }

    #[test]
    fn receiver_yields_nothing() {
        let mut g = WorkloadGen::new(
            ArrivalProcess::Poisson { load: 0.5 },
            TrafficPattern::ManyToOne { dst: 0 },
            vec![(Priority::NonCritical, 1.0, SizeDist::Fixed(1000))],
            0,
            2,
            BitRate::from_gbps(100),
            None,
            2,
        );
        assert!(g.next_rpc().is_none());
        assert!(!g.is_sender());
    }

    #[test]
    fn stop_bounds_stream() {
        let mut g = WorkloadGen::new(
            ArrivalProcess::Uniform { load: 1.0 },
            TrafficPattern::ManyToOne { dst: 1 },
            vec![(Priority::NonCritical, 1.0, SizeDist::Fixed(32768))],
            0,
            2,
            BitRate::from_gbps(100),
            Some(SimTime::from_us(100)),
            3,
        );
        let mut n = 0;
        while g.next_rpc().is_some() {
            n += 1;
        }
        // 100us / 2.62us per RPC ~= 38.
        assert!((30..=45).contains(&n), "n = {n}");
        let _ = SimDuration::ZERO;
    }
}
