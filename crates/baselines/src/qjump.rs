//! QJump (Grosvenor et al., NSDI 2015).
//!
//! Decision logic reproduced: each priority level is **rate-limited at the
//! host** to a share of the line rate chosen so that, network-wide, a level's
//! aggregate can never exceed capacity (higher levels get lower throughput
//! caps but bounded latency); the fabric runs strict priority. QJump is
//! packet-level and SLO-unaware: it cannot adapt the admitted mix when an
//! application offers more than its throttle, which is what the paper's
//! comparison (Fig. 22) exercises.

use crate::reliable::{ack_packet, OutMsg};
use crate::workgen::WorkloadGen;
use crate::BaselineCompletion;
use aequitas_netsim::{
    EngineConfig, HostAgent, HostCtx, HostId, Packet, PacketKind, QueueKind, SchedulerKind,
};
use aequitas_sim_core::{BitRate, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

const ARRIVAL_TIMER: u64 = 1;
const RETX_TIMER: u64 = 2;
const PACE_TIMER_BASE: u64 = 16;

/// Fabric configuration for QJump: strict priority queues.
pub fn engine_config() -> EngineConfig {
    EngineConfig {
        switch_scheduler: SchedulerKind::Spq(3),
        host_scheduler: SchedulerKind::Spq(3),
        switch_buffer_bytes: Some(2 << 20),
        host_buffer_bytes: Some(2 << 20),
        classes: 3,
    loss_probability: 0.0,
        loss_seed: 0,
        event_queue: QueueKind::Calendar,
        faults: None,
    }
}

/// [`engine_config`] with a chaos fault plan attached, so QJump runs under
/// the same seeded fault schedules as Aequitas in containment experiments.
pub fn engine_config_with_faults(
    faults: Option<std::sync::Arc<aequitas_netsim::faults::FaultPlan>>,
) -> EngineConfig {
    EngineConfig { faults, ..engine_config() }
}

/// Per-class throughput factors (fraction of line rate each class's host
/// sender may use). The highest class gets the strongest throttle — QJump's
/// latency-vs-throughput epoch tradeoff; the lowest is unthrottled.
pub const DEFAULT_RATE_FACTORS: [f64; 3] = [0.30, 0.50, 1.0];

struct ClassQueue {
    /// FIFO of (msg_id) with unsent segments.
    queue: VecDeque<u64>,
    /// Token-bucket state: time the next packet may leave.
    next_allowed: SimTime,
    rate: BitRate,
    paced: bool,
}

/// A QJump host.
pub struct QjumpHost {
    host: HostId,
    gen: Option<WorkloadGen>,
    pending_arrival: Option<(SimTime, crate::workgen::NextRpc)>,
    msgs: HashMap<u64, OutMsg>,
    classes: Vec<ClassQueue>,
    rto: SimDuration,
    mtu: u64,
    next_msg_id: u64,
    next_packet_id: u64,
    completions: Vec<BaselineCompletion>,
    retx_armed: bool,
}

impl QjumpHost {
    /// Create a host with the default per-class throttles.
    pub fn new(host: HostId, gen: Option<WorkloadGen>, line_rate: BitRate) -> Self {
        let classes = DEFAULT_RATE_FACTORS
            .iter()
            .map(|&f| ClassQueue {
                queue: VecDeque::new(),
                next_allowed: SimTime::ZERO,
                rate: line_rate.mul_f64(f),
                paced: false,
            })
            .collect();
        QjumpHost {
            host,
            gen,
            pending_arrival: None,
            msgs: HashMap::new(), // det: retx scan collects then sort_unstable; otherwise keyed
            classes,
            rto: SimDuration::from_us(500),
            mtu: 4096,
            next_msg_id: (host.0 as u64) << 32,
            next_packet_id: (host.0 as u64) << 40,
            completions: Vec::new(),
            retx_armed: false,
        }
    }

    /// Completions collected so far.
    pub fn completions(&self) -> &[BaselineCompletion] {
        &self.completions
    }

    fn schedule_arrival(&mut self, ctx: &mut HostCtx) {
        if self.pending_arrival.is_some() {
            return;
        }
        if let Some(gen) = self.gen.as_mut() {
            if let Some(rpc) = gen.next_rpc() {
                let at = rpc.at.max(ctx.now());
                self.pending_arrival = Some((at, rpc));
                ctx.set_timer(at, ARRIVAL_TIMER);
            }
        }
    }

    fn fire_arrival(&mut self, ctx: &mut HostCtx) {
        if let Some((at, rpc)) = self.pending_arrival {
            if at <= ctx.now() {
                self.pending_arrival = None;
                let id = self.next_msg_id;
                self.next_msg_id += 1;
                self.msgs.insert(
                    id,
                    OutMsg::new(
                        id,
                        HostId(rpc.dst),
                        rpc.qos,
                        rpc.priority,
                        rpc.size_bytes,
                        self.mtu,
                        ctx.now(),
                        None,
                    ),
                );
                self.classes[rpc.qos as usize].queue.push_back(id);
                self.schedule_arrival(ctx);
            }
        }
        for c in 0..self.classes.len() {
            self.pump_class(ctx, c);
        }
        self.arm_retx(ctx);
    }

    /// Send the next segment of class `c` if the rate limiter allows.
    fn pump_class(&mut self, ctx: &mut HostCtx, c: usize) {
        loop {
            let now = ctx.now();
            // Drop finished/fully-sent heads.
            while let Some(&head) = self.classes[c].queue.front() {
                match self.msgs.get(&head) {
                    Some(m) if !m.fully_sent() => break,
                    _ => {
                        self.classes[c].queue.pop_front();
                    }
                }
            }
            let Some(&head) = self.classes[c].queue.front() else {
                return;
            };
            if now < self.classes[c].next_allowed {
                if !self.classes[c].paced {
                    self.classes[c].paced = true;
                    ctx.set_timer(self.classes[c].next_allowed, PACE_TIMER_BASE + c as u64);
                }
                return;
            }
            let pkt_id = self.next_packet_id;
            self.next_packet_id += 1;
            let msg = self.msgs.get_mut(&head).expect("head exists");
            let seq = msg.next_seg;
            let pkt = msg.data_packet(pkt_id, seq, 0, now, self.host);
            msg.mark_sent(seq, now);
            let wire = pkt.size_bytes as u64;
            ctx.send(pkt);
            // Advance the token clock by this packet's time at the class rate.
            let gap = self.classes[c].rate.serialize_time(wire);
            self.classes[c].next_allowed = now + gap;
        }
    }

    fn arm_retx(&mut self, ctx: &mut HostCtx) {
        if !self.retx_armed && !self.msgs.is_empty() {
            self.retx_armed = true;
            ctx.set_timer(ctx.now() + self.rto / 2, RETX_TIMER);
        }
    }
}

impl HostAgent for QjumpHost {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        self.schedule_arrival(ctx);
    }

    fn on_packet(&mut self, ctx: &mut HostCtx, pkt: Packet) {
        match pkt.kind {
            PacketKind::Data { .. } => {
                let id = self.next_packet_id;
                self.next_packet_id += 1;
                ctx.send(ack_packet(self.host, &pkt, id, ctx.now()));
            }
            PacketKind::Ack { msg_id, seq, .. } => {
                if let Some(msg) = self.msgs.get_mut(&msg_id) {
                    msg.on_ack(seq);
                    if msg.done() {
                        let done = self.msgs.remove(&msg_id).expect("msg exists");
                        self.completions.push(done.completion(ctx.now(), false));
                    }
                }
            }
            PacketKind::Ctrl { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
        match token {
            ARRIVAL_TIMER => self.fire_arrival(ctx),
            RETX_TIMER => {
                self.retx_armed = false;
                let now = ctx.now();
                let mut resend: Vec<(usize, u64, u32)> = Vec::new();
                // det: iteration only fills `resend`, which is sorted
                // before any side effect.
                for (&id, msg) in &self.msgs {
                    for seq in msg.expired(now, self.rto) {
                        resend.push((msg.qos as usize, id, seq));
                    }
                }
                resend.sort_unstable();
                for (c, id, seq) in resend {
                    // Retransmissions respect the class rate limit too:
                    // requeue at the front by sending directly when allowed.
                    if now >= self.classes[c].next_allowed {
                        let pkt_id = self.next_packet_id;
                        self.next_packet_id += 1;
                        let msg = self.msgs.get_mut(&id).expect("msg exists");
                        let pkt = msg.data_packet(pkt_id, seq, 0, now, self.host);
                        msg.mark_sent(seq, now);
                        let wire = pkt.size_bytes as u64;
                        ctx.send(pkt);
                        let gap = self.classes[c].rate.serialize_time(wire);
                        self.classes[c].next_allowed = now + gap;
                    }
                }
                self.arm_retx(ctx);
            }
            t if t >= PACE_TIMER_BASE => {
                let c = (t - PACE_TIMER_BASE) as usize;
                if c < self.classes.len() {
                    self.classes[c].paced = false;
                    self.pump_class(ctx, c);
                }
                self.arm_retx(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequitas_netsim::{Engine, LinkSpec, Topology};
    use aequitas_workloads::{ArrivalProcess, Priority, SizeDist, TrafficPattern};

    fn rate() -> BitRate {
        BitRate::from_gbps(100)
    }

    fn gen(src: usize, n: usize, load: f64, prio: Priority, stop_ms: u64, seed: u64) -> WorkloadGen {
        WorkloadGen::new(
            ArrivalProcess::Poisson { load },
            TrafficPattern::ManyToOne { dst: n - 1 },
            vec![(prio, 1.0, SizeDist::Fixed(32_768))],
            src,
            n,
            rate(),
            Some(SimTime::from_ms(stop_ms)),
            seed,
        )
    }

    #[test]
    fn rate_limit_caps_high_class_throughput() {
        // A single sender offering 0.9 load of PC traffic: QJump throttles
        // class 0 to 30% of line rate, so completions accrue at ~30 Gbps.
        let topo = Topology::star(2, LinkSpec::default_100g());
        let agents = vec![
            QjumpHost::new(
                HostId(0),
                Some(gen(0, 2, 0.9, Priority::PerformanceCritical, 10, 1)),
                rate(),
            ),
            QjumpHost::new(HostId(1), None, rate()),
        ];
        let mut eng = Engine::new(topo, agents, engine_config());
        eng.run_until(SimTime::from_ms(10));
        let bytes: u64 = eng.agents()[0]
            .completions()
            .iter()
            .map(|c| c.size_bytes)
            .sum();
        let gbps = bytes as f64 * 8.0 / 0.01 / 1e9;
        assert!(
            (20.0..36.0).contains(&gbps),
            "class-0 goodput {gbps} Gbps, expected ~30"
        );
    }

    #[test]
    fn low_class_unthrottled_when_alone() {
        let topo = Topology::star(2, LinkSpec::default_100g());
        let agents = vec![
            QjumpHost::new(
                HostId(0),
                Some(gen(0, 2, 0.8, Priority::BestEffort, 10, 2)),
                rate(),
            ),
            QjumpHost::new(HostId(1), None, rate()),
        ];
        let mut eng = Engine::new(topo, agents, engine_config());
        eng.run_until(SimTime::from_ms(12));
        let bytes: u64 = eng.agents()[0]
            .completions()
            .iter()
            .map(|c| c.size_bytes)
            .sum();
        let gbps = bytes as f64 * 8.0 / 0.012 / 1e9;
        assert!(gbps > 55.0, "BE goodput {gbps} Gbps, expected ~80x0.8");
    }

    #[test]
    fn throttled_class_has_low_latency_for_admitted_packets() {
        // Two hosts each sending PC at 15% load (half the 30% throttle, so
        // the token bucket itself runs at moderate utilization): the network
        // can never congest on class 0 and latencies stay near-serial.
        let topo = Topology::star(3, LinkSpec::default_100g());
        let agents = vec![
            QjumpHost::new(
                HostId(0),
                Some(gen(0, 3, 0.15, Priority::PerformanceCritical, 10, 3)),
                rate(),
            ),
            QjumpHost::new(
                HostId(1),
                Some(gen(1, 3, 0.15, Priority::PerformanceCritical, 10, 4)),
                rate(),
            ),
            QjumpHost::new(HostId(2), None, rate()),
        ];
        let mut eng = Engine::new(topo, agents, engine_config());
        eng.run_until(SimTime::from_ms(15));
        let mut lats: Vec<f64> = eng.agents()[0]
            .completions()
            .iter()
            .map(|c| c.latency().as_us_f64())
            .collect();
        assert!(lats.len() > 100);
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99 = lats[(lats.len() as f64 * 0.99) as usize];
        // 32 KB at 30 Gbps pacing ~= 8.7 us + RTT; allow generous slack.
        assert!(p99 < 60.0, "in-profile QJump p99 latency {p99} us");
    }
}
