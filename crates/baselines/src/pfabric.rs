//! pFabric: minimal near-optimal datacenter transport (Alizadeh et al.).
//!
//! Decision logic reproduced:
//!
//! * every data packet carries the message's **remaining size** as its
//!   scheduling rank;
//! * switches are tiny PIFOs — dequeue the smallest rank, evict the largest
//!   on overflow (use [`engine_config`]);
//! * hosts transmit aggressively: each active message keeps up to one BDP of
//!   packets outstanding, messages served in SRPT order (smallest remaining
//!   first), with timeout retransmission and no window adaptation.
//!
//! The known failure mode the paper exercises (Fig. 22): SLO-unaware SRPT
//! starves large RPCs regardless of their priority class.

use crate::reliable::{ack_packet, OutMsg};
use crate::workgen::WorkloadGen;
use crate::BaselineCompletion;
use aequitas_netsim::{
    EngineConfig, HostAgent, HostCtx, HostId, Packet, PacketKind, QueueKind, SchedulerKind,
};
use aequitas_sim_core::{SimDuration, SimTime};
use std::collections::HashMap;

const ARRIVAL_TIMER: u64 = 1;
const RETX_TIMER: u64 = 2;

/// Fabric/NIC configuration for pFabric: PIFO scheduling with very small
/// per-port buffers (the scheme's signature).
pub fn engine_config() -> EngineConfig {
    EngineConfig {
        switch_scheduler: SchedulerKind::Pifo,
        host_scheduler: SchedulerKind::Pifo,
        // ~2 BDP at 100 Gbps / ~4 us RTT: 128 KB.
        switch_buffer_bytes: Some(128 * 1024),
        host_buffer_bytes: Some(2 << 20),
        classes: 3,
    loss_probability: 0.0,
        loss_seed: 0,
        event_queue: QueueKind::Calendar,
        faults: None,
    }
}

/// [`engine_config`] with a chaos fault plan attached, so pFabric runs under
/// the same seeded fault schedules as Aequitas in containment experiments.
pub fn engine_config_with_faults(
    faults: Option<std::sync::Arc<aequitas_netsim::faults::FaultPlan>>,
) -> EngineConfig {
    EngineConfig { faults, ..engine_config() }
}

/// A pFabric host.
pub struct PfabricHost {
    host: HostId,
    gen: Option<WorkloadGen>,
    pending_arrival: Option<(SimTime, crate::workgen::NextRpc)>,
    msgs: HashMap<u64, OutMsg>,
    window: usize,
    rto: SimDuration,
    mtu: u64,
    next_msg_id: u64,
    next_packet_id: u64,
    completions: Vec<BaselineCompletion>,
    retx_armed: bool,
}

impl PfabricHost {
    /// Create a host; `gen: None` for pure receivers.
    pub fn new(host: HostId, gen: Option<WorkloadGen>) -> Self {
        PfabricHost {
            host,
            gen,
            pending_arrival: None,
            // det: iterations use min_by_key with id tiebreak or collect-and-sort
            msgs: HashMap::new(),
            window: 12, // ~1 BDP of MTU packets at 100 Gbps, 4 us RTT
            rto: SimDuration::from_us(300),
            mtu: 4096,
            next_msg_id: (host.0 as u64) << 32,
            next_packet_id: (host.0 as u64) << 40,
            completions: Vec::new(),
            retx_armed: false,
        }
    }

    /// Completions collected so far.
    pub fn completions(&self) -> &[BaselineCompletion] {
        &self.completions
    }

    fn schedule_arrival(&mut self, ctx: &mut HostCtx) {
        if self.pending_arrival.is_some() {
            return;
        }
        if let Some(gen) = self.gen.as_mut() {
            if let Some(rpc) = gen.next_rpc() {
                let at = rpc.at.max(ctx.now());
                self.pending_arrival = Some((at, rpc));
                ctx.set_timer(at, ARRIVAL_TIMER);
            }
        }
    }

    fn fire_arrival(&mut self, ctx: &mut HostCtx) {
        if let Some((at, rpc)) = self.pending_arrival {
            if at <= ctx.now() {
                self.pending_arrival = None;
                let id = self.next_msg_id;
                self.next_msg_id += 1;
                self.msgs.insert(
                    id,
                    OutMsg::new(
                        id,
                        HostId(rpc.dst),
                        rpc.qos,
                        rpc.priority,
                        rpc.size_bytes,
                        self.mtu,
                        ctx.now(),
                        None,
                    ),
                );
                self.schedule_arrival(ctx);
            }
        }
        self.pump(ctx);
        self.arm_retx(ctx);
    }

    /// SRPT across active messages: send new segments of the
    /// smallest-remaining message first, up to `window` outstanding packets
    /// per host.
    fn pump(&mut self, ctx: &mut HostCtx) {
        loop {
            // det: integer sum is order-independent.
            let inflight: usize = self.msgs.values().map(|m| m.inflight()).sum();
            if inflight >= self.window {
                return;
            }
            // Pick the unsent-segment message with the smallest remaining
            // bytes (ties by id for determinism).
            let Some((&id, _)) = self
                .msgs
                .iter() // det: min_by_key ties broken by id below
                .filter(|(_, m)| !m.fully_sent())
                .min_by_key(|(&id, m)| (m.remaining_bytes(), id))
            else {
                return;
            };
            let now = ctx.now();
            let pkt_id = self.next_packet_id;
            self.next_packet_id += 1;
            let msg = self.msgs.get_mut(&id).expect("chosen message exists");
            let seq = msg.next_seg;
            let rank = msg.remaining_bytes();
            let pkt = msg.data_packet(pkt_id, seq, rank, now, self.host);
            msg.mark_sent(seq, now);
            ctx.send(pkt);
        }
    }

    fn arm_retx(&mut self, ctx: &mut HostCtx) {
        // det: `any` over a pure predicate is order-independent.
        if !self.retx_armed && self.msgs.values().any(|m| m.inflight() > 0 || !m.fully_sent()) {
            self.retx_armed = true;
            ctx.set_timer(ctx.now() + self.rto / 2, RETX_TIMER);
        }
    }
}

impl HostAgent for PfabricHost {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        self.schedule_arrival(ctx);
    }

    fn on_packet(&mut self, ctx: &mut HostCtx, pkt: Packet) {
        match pkt.kind {
            PacketKind::Data { .. } => {
                let id = self.next_packet_id;
                self.next_packet_id += 1;
                ctx.send(ack_packet(self.host, &pkt, id, ctx.now()));
            }
            PacketKind::Ack { msg_id, seq, .. } => {
                if let Some(msg) = self.msgs.get_mut(&msg_id) {
                    msg.on_ack(seq);
                    if msg.done() {
                        let done = self.msgs.remove(&msg_id).expect("msg exists");
                        self.completions.push(done.completion(ctx.now(), false));
                    }
                }
                self.pump(ctx);
            }
            PacketKind::Ctrl { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
        match token {
            ARRIVAL_TIMER => self.fire_arrival(ctx),
            RETX_TIMER => {
                self.retx_armed = false;
                let now = ctx.now();
                let mut resend: Vec<(u64, u32)> = Vec::new();
                // det: iteration only fills `resend`, which is sorted
                // before any side effect.
                for (&id, msg) in &self.msgs {
                    for seq in msg.expired(now, self.rto) {
                        resend.push((id, seq));
                    }
                }
                resend.sort_unstable();
                for (id, seq) in resend {
                    let pkt_id = self.next_packet_id;
                    self.next_packet_id += 1;
                    let msg = self.msgs.get_mut(&id).expect("msg exists");
                    let rank = msg.remaining_bytes();
                    let pkt = msg.data_packet(pkt_id, seq, rank, now, self.host);
                    msg.mark_sent(seq, now);
                    ctx.send(pkt);
                }
                self.pump(ctx);
                self.arm_retx(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequitas_netsim::{Engine, LinkSpec, Topology};
    use aequitas_sim_core::BitRate;
    use aequitas_workloads::{ArrivalProcess, Priority, SizeDist, TrafficPattern};

    fn gen(src: usize, n: usize, load: f64, sizes: SizeDist, stop_ms: u64, seed: u64) -> WorkloadGen {
        WorkloadGen::new(
            ArrivalProcess::Poisson { load },
            TrafficPattern::ManyToOne { dst: n - 1 },
            vec![(Priority::PerformanceCritical, 1.0, sizes)],
            src,
            n,
            BitRate::from_gbps(100),
            Some(SimTime::from_ms(stop_ms)),
            seed,
        )
    }

    #[test]
    fn completes_all_under_moderate_load() {
        let topo = Topology::star(3, LinkSpec::default_100g());
        let agents = vec![
            PfabricHost::new(HostId(0), Some(gen(0, 3, 0.4, SizeDist::Fixed(32_768), 2, 1))),
            PfabricHost::new(HostId(1), Some(gen(1, 3, 0.4, SizeDist::Fixed(32_768), 2, 2))),
            PfabricHost::new(HostId(2), None),
        ];
        let mut eng = Engine::new(topo, agents, engine_config());
        eng.run_until(SimTime::from_ms(20));
        let done0 = eng.agents()[0].completions().len();
        let done1 = eng.agents()[1].completions().len();
        assert!(done0 > 50 && done1 > 50, "{done0} {done1}");
        // No stuck messages.
        assert!(eng.agents()[0].msgs.is_empty());
        assert!(eng.agents()[1].msgs.is_empty());
    }

    #[test]
    fn short_rpcs_beat_long_rpcs_under_overload() {
        // The SRPT signature: with the link overloaded by a mix of small and
        // large RPCs, small ones finish near-optimally while large ones
        // stretch far beyond their serialization time.
        let mix = SizeDist::Empirical(vec![(8_192, 0.5), (262_144, 0.5)]);
        let topo = Topology::star(3, LinkSpec::default_100g());
        let agents = vec![
            PfabricHost::new(HostId(0), Some(gen(0, 3, 0.7, mix.clone(), 5, 3))),
            PfabricHost::new(HostId(1), Some(gen(1, 3, 0.7, mix, 5, 4))),
            PfabricHost::new(HostId(2), None),
        ];
        let mut eng = Engine::new(topo, agents, engine_config());
        eng.run_until(SimTime::from_ms(40));
        let mut small = Vec::new();
        let mut large = Vec::new();
        for h in 0..2 {
            for c in eng.agents()[h].completions() {
                let lat = c.latency().as_us_f64();
                // Normalize by size to compare slowdowns.
                let ser = c.size_bytes as f64 * 8.0 / 100e9 * 1e6;
                if c.size_bytes <= 8_192 {
                    small.push(lat / ser);
                } else {
                    large.push(lat / ser);
                }
            }
        }
        assert!(small.len() > 20 && large.len() > 20);
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let ms = med(&mut small);
        let ml = med(&mut large);
        assert!(
            ms < ml,
            "small RPC slowdown {ms} should beat large RPC slowdown {ml}"
        );
    }

    #[test]
    fn survives_tiny_buffers_with_retransmission() {
        // Synchronized heavy burst into one port with 128 KB buffers: drops
        // are guaranteed; completions must still happen.
        let topo = Topology::star(4, LinkSpec::default_100g());
        let agents = vec![
            PfabricHost::new(HostId(0), Some(gen(0, 4, 0.9, SizeDist::Fixed(65_536), 2, 5))),
            PfabricHost::new(HostId(1), Some(gen(1, 4, 0.9, SizeDist::Fixed(65_536), 2, 6))),
            PfabricHost::new(HostId(2), Some(gen(2, 4, 0.9, SizeDist::Fixed(65_536), 2, 7))),
            PfabricHost::new(HostId(3), None),
        ];
        let mut eng = Engine::new(topo, agents, engine_config());
        eng.run_until(SimTime::from_ms(100));
        let total: usize = (0..3).map(|h| eng.agents()[h].completions().len()).sum();
        assert!(total > 100, "only {total} completions");
        for h in 0..3 {
            assert!(
                eng.agents()[h].msgs.is_empty(),
                "host {h} has stuck messages"
            );
        }
    }
}
